//! Deterministic fan-out of per-link work across OS threads.
//!
//! The analysis stages downstream of the [`crate::linktable::LinkTable`]
//! are embarrassingly parallel in the link dimension: transition merging,
//! failure reconstruction, failure matching, flap detection, and
//! false-positive classification all treat links independently. This
//! module provides the shared work-distribution primitive. `rayon` is the
//! usual tool for this shape; the workspace stays dependency-light, and a
//! chunked scoped-thread pool suffices because the unit of work (one
//! link's whole history) is large relative to scheduling overhead.
//!
//! **Determinism contract:** [`par_map`] returns results in input order
//! regardless of thread count or scheduling. Every caller groups work by
//! ascending [`crate::linktable::LinkIx`] and merges in that order, so an
//! [`crate::analysis::Analysis`] run with `threads = 1` and `threads = N`
//! produces byte-identical tables. `tests/determinism.rs` asserts this
//! end to end.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn default_chunk_size() -> usize {
    16
}

/// How per-link analysis work fans out across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Worker threads: `0` = one per available core, `1` = strictly
    /// serial (no threads spawned), `N` = exactly `N` workers.
    #[serde(default)]
    pub threads: usize,
    /// Work items (link groups) a worker claims at a time. Larger chunks
    /// amortize queue contention; smaller chunks balance skewed links —
    /// one flapping link can carry most of a scenario's events.
    #[serde(default = "default_chunk_size")]
    pub chunk_size: usize,
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        ParallelismConfig {
            threads: 0,
            chunk_size: default_chunk_size(),
        }
    }
}

impl ParallelismConfig {
    /// Strictly serial execution — the required fallback when
    /// `threads == 1`.
    pub const SERIAL: ParallelismConfig = ParallelismConfig {
        threads: 1,
        chunk_size: 16,
    };

    /// A config with an explicit worker count and the default chunk size.
    pub fn with_threads(threads: usize) -> Self {
        ParallelismConfig {
            threads,
            ..ParallelismConfig::default()
        }
    }

    /// The worker count this config resolves to on this machine.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Map `f` over `items`, fanning chunks across up to
/// `par.effective_threads()` scoped threads.
///
/// Results come back in input order. With one effective thread (or at
/// most one item) no thread is spawned and the exact serial loop runs
/// instead, so `ParallelismConfig::SERIAL` is a true serial fallback,
/// not a one-worker pool.
pub fn par_map<T, R, F>(items: &[T], par: &ParallelismConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = par.effective_threads();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = par.chunk_size.max(1);
    let workers = threads.min(n.div_ceil(chunk));
    let next = AtomicUsize::new(0);
    let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for (off, item) in items[start..end].iter().enumerate() {
                        local.push((start + off, f(item)));
                    }
                }
                if !local.is_empty() {
                    gathered
                        .lock()
                        .expect("a worker panicked while holding the gather lock")
                        .append(&mut local);
                }
            });
        }
    });
    let mut got = gathered
        .into_inner()
        .expect("a worker panicked while holding the gather lock");
    debug_assert_eq!(got.len(), n);
    got.sort_unstable_by_key(|&(i, _)| i);
    got.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize, par: &ParallelismConfig) -> Vec<usize> {
        let items: Vec<usize> = (0..n).collect();
        par_map(&items, par, |&x| x * x)
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let serial = squares(1000, &ParallelismConfig::SERIAL);
        for threads in [2, 3, 8] {
            for chunk_size in [1, 7, 64, 4096] {
                let cfg = ParallelismConfig {
                    threads,
                    chunk_size,
                };
                assert_eq!(
                    squares(1000, &cfg),
                    serial,
                    "threads={threads} chunk={chunk_size}"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let cfg = ParallelismConfig::with_threads(4);
        assert_eq!(par_map(&[] as &[u32], &cfg, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[5u32], &cfg, |&x| x + 1), vec![6]);
    }

    #[test]
    fn effective_threads_resolves() {
        assert!(ParallelismConfig::default().effective_threads() >= 1);
        assert_eq!(ParallelismConfig::SERIAL.effective_threads(), 1);
        assert_eq!(ParallelismConfig::with_threads(5).effective_threads(), 5);
    }

    #[test]
    fn zero_chunk_size_is_clamped() {
        let cfg = ParallelismConfig {
            threads: 2,
            chunk_size: 0,
        };
        assert_eq!(squares(10, &cfg), squares(10, &ParallelismConfig::SERIAL));
    }

    #[test]
    fn serde_defaults_fill_missing_fields() {
        let cfg: ParallelismConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(cfg, ParallelismConfig::default());
        let cfg: ParallelismConfig = serde_json::from_str(r#"{"threads":3}"#).unwrap();
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.chunk_size, 16);
    }
}
