//! CSV exporters for reconstructed traces.
//!
//! The paper's artifacts are tables and figures; downstream users of a
//! failure-analysis library usually want the underlying *traces* —
//! per-failure records, per-link summaries, and CDF series — in a shape
//! that R/pandas/gnuplot ingest directly. Everything here writes plain
//! RFC-4180-ish CSV (comma-separated, `"`-quoted where needed, one header
//! row) to any `io::Write`.

use crate::linktable::LinkTable;
use crate::observe::PipelineReport;
use crate::reconstruct::Failure;
use crate::stats::Ecdf;
use std::collections::HashMap;
use std::io::{self, Write};

/// Quote a CSV field if needed.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write one failure per row: canonical link name, class, start/end
/// (milliseconds since the scenario epoch), and duration in seconds.
pub fn failures_csv<W: Write>(mut w: W, failures: &[Failure], table: &LinkTable) -> io::Result<()> {
    writeln!(w, "link,class,start_ms,end_ms,duration_s")?;
    for f in failures {
        writeln!(
            w,
            "{},{},{},{},{:.3}",
            csv_field(&table.name(f.link).to_string()),
            table.class(f.link),
            f.start.as_millis(),
            f.end.as_millis(),
            f.duration().as_secs_f64(),
        )?;
    }
    Ok(())
}

/// Write one link per row: failure count, annualized failure rate,
/// total and annualized downtime.
pub fn per_link_csv<W: Write>(mut w: W, failures: &[Failure], table: &LinkTable) -> io::Result<()> {
    let mut count: HashMap<_, u64> = HashMap::new();
    let mut downtime_ms: HashMap<_, u64> = HashMap::new();
    for f in failures {
        *count.entry(f.link).or_default() += 1;
        *downtime_ms.entry(f.link).or_default() += f.duration().as_millis();
    }
    writeln!(
        w,
        "link,class,active_years,failures,failures_per_year,downtime_h,downtime_h_per_year"
    )?;
    for ix in table.iter() {
        let years = table.years(ix).max(1e-9);
        let n = count.get(&ix).copied().unwrap_or(0);
        let dt_h = downtime_ms.get(&ix).copied().unwrap_or(0) as f64 / 3_600_000.0;
        writeln!(
            w,
            "{},{},{:.4},{},{:.2},{:.3},{:.3}",
            csv_field(&table.name(ix).to_string()),
            table.class(ix),
            years,
            n,
            n as f64 / years,
            dt_h,
            dt_h / years,
        )?;
    }
    Ok(())
}

/// Write a pair of ECDFs evaluated at the union of their sample points —
/// the exact staircase, not a resampling. Columns: `x`, then one
/// cumulative-probability column per named series.
pub fn ecdf_csv<W: Write>(mut w: W, series: &[(&str, &Ecdf)]) -> io::Result<()> {
    write!(w, "x")?;
    for (name, _) in series {
        write!(w, ",{}", csv_field(name))?;
    }
    writeln!(w)?;
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|(_, e)| e.values.iter().copied())
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    for x in xs {
        write!(w, "{x}")?;
        for (_, e) in series {
            write!(w, ",{:.6}", e.at(x))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Write a [`PipelineReport`] as pretty-printed JSON — the shape the
/// `BENCH_*.json` datapoints use.
pub fn pipeline_report_json<W: Write>(w: W, report: &PipelineReport) -> io::Result<()> {
    serde_json::to_writer_pretty(w, report).map_err(io::Error::other)
}

/// Write a [`PipelineReport`]'s stages as CSV, one stage per row.
pub fn pipeline_report_csv<W: Write>(mut w: W, report: &PipelineReport) -> io::Result<()> {
    writeln!(w, "stage,items_in,items_out,wall_micros")?;
    for s in &report.stages {
        writeln!(
            w,
            "{},{},{},{}",
            csv_field(&s.stage),
            s.items_in,
            s.items_out,
            s.wall_micros
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linktable::LinkIx;
    use faultline_topology::generator::CenicParams;
    use faultline_topology::osi::SystemId;
    use faultline_topology::time::Timestamp;

    fn table() -> LinkTable {
        let topo = CenicParams::tiny(2).generate();
        let inventory = faultline_topology::config::mine_topology(&topo);
        let hostnames: HashMap<SystemId, String> = topo
            .routers()
            .iter()
            .map(|r| (r.system_id, r.hostname.clone()))
            .collect();
        LinkTable::new(&inventory, &hostnames, |_| {
            (Timestamp::EPOCH, Timestamp::from_secs(365 * 86_400))
        })
    }

    fn fail(link: u32, start: u64, end: u64) -> Failure {
        Failure {
            link: LinkIx(link),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    #[test]
    fn failures_csv_shape() {
        let t = table();
        let mut buf = Vec::new();
        failures_csv(&mut buf, &[fail(0, 10, 70), fail(1, 5, 6)], &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "link,class,start_ms,end_ms,duration_s");
        assert!(lines[1].contains(",10000,70000,60.000"));
        // Link names contain commas → must be quoted.
        assert!(lines[1].starts_with('"'));
    }

    #[test]
    fn per_link_csv_includes_zero_failure_links() {
        let t = table();
        let mut buf = Vec::new();
        per_link_csv(&mut buf, &[fail(0, 0, 3_600)], &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), t.len() + 1);
        // The failed link shows one failure of one hour.
        let row = text.lines().nth(1).unwrap();
        assert!(row.contains(",1,"), "row: {row}");
        // Zero rows exist too.
        assert!(text.lines().any(|l| l.contains(",0,0.00,")));
    }

    #[test]
    fn ecdf_csv_staircase() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![2.0, 3.0]);
        let mut buf = Vec::new();
        ecdf_csv(&mut buf, &[("syslog", &a), ("isis", &b)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x,syslog,isis");
        assert_eq!(lines.len(), 4); // header + {1, 2, 3}
        assert_eq!(lines[1], "1,0.500000,0.000000");
        assert_eq!(lines[2], "2,1.000000,0.500000");
        assert_eq!(lines[3], "3,1.000000,1.000000");
    }

    #[test]
    fn pipeline_report_writers() {
        let mut report = PipelineReport::new(2);
        report.record_stage(
            "resolve_syslog",
            100,
            90,
            std::time::Duration::from_micros(1234),
        );
        report.total_micros = 1234;

        let mut csv = Vec::new();
        pipeline_report_csv(&mut csv, &report).unwrap();
        let text = String::from_utf8(csv).unwrap();
        assert_eq!(
            text.lines().next().unwrap(),
            "stage,items_in,items_out,wall_micros"
        );
        assert!(text.lines().any(|l| l == "resolve_syslog,100,90,1234"));

        let mut json = Vec::new();
        pipeline_report_json(&mut json, &report).unwrap();
        let text = String::from_utf8(json).unwrap();
        let back: PipelineReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.stages.len(), 1);
        assert_eq!(back.stages[0].wall_micros, 1234);
        assert_eq!(back.threads, 2);
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
