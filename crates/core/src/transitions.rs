//! Converting raw observables into per-link state transitions.
//!
//! **Syslog side.** Each `ADJCHANGE` message names its reporting router
//! and local interface; [`resolve_syslog`] maps that through the mined
//! config inventory to a link. `%LINK`/`%LINEPROTO` messages resolve the
//! same way into the *physical media* family compared in Table 2.
//!
//! **IS-IS side.** The listener emits per-origin withdrawals and
//! re-advertisements. A link is "up as long as the adjacency or IP space
//! is listed in the appropriate LSP packets" (§3.4) — both endpoints'
//! advertisements are ANDed, so a link-level DOWN fires on the first
//! endpoint's withdrawal and an UP only once both ends re-advertise.
//! [`isis_link_transitions`] performs that merge, separately for IS
//! reachability (adjacency pairs; multi-link adjacencies unresolvable,
//! hence excluded and counted) and IP reachability (unique /31s).

use crate::kernel::MergeState;
use crate::linktable::{LinkIx, LinkTable};
use faultline_isis::listener::{
    ReachabilityKind, Transition, TransitionDirection, TransitionSubject,
};
use faultline_syslog::message::{AdjChangeDetail, LinkEventKind, SyslogMessage};
use faultline_topology::osi::SystemId;
use faultline_topology::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A link-level state transition (the unit both sources are reduced to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTransition {
    /// When it was observed.
    pub at: Timestamp,
    /// Which link.
    pub link: LinkIx,
    /// DOWN (withdrawn) or UP ((re-)advertised).
    pub direction: TransitionDirection,
}

/// Which syslog message family a resolved message belongs to (the two
/// row groups of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageFamily {
    /// `%CLNS-5-ADJCHANGE` / `%ROUTING-ISIS-4-ADJCHANGE`.
    IsisAdjacency,
    /// `%LINK-3-UPDOWN` (physical media).
    PhysicalMedia,
}

/// A syslog message resolved to a link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolvedMessage {
    /// Message-text timestamp.
    pub at: Timestamp,
    /// Resolved link.
    pub link: LinkIx,
    /// Up or Down.
    pub direction: TransitionDirection,
    /// Message family.
    pub family: MessageFamily,
    /// Reporting router's hostname (distinguishes the two ends for
    /// Table 3's None/One/Both accounting). A shared handle into the
    /// link table's interner — cloning is a refcount bump, and it
    /// serializes as a plain string exactly like the owned `String` it
    /// replaced.
    pub host: Arc<str>,
    /// ADJCHANGE reason text, when present.
    pub detail: Option<AdjChangeDetail>,
}

/// Counters from syslog resolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyslogResolveStats {
    /// ADJCHANGE messages resolved.
    pub isis_resolved: u64,
    /// `%LINK` messages resolved.
    pub physical_resolved: u64,
    /// `%LINEPROTO` messages (redundant with `%LINK`; parsed, counted,
    /// not used for matching).
    pub lineproto_skipped: u64,
    /// Messages whose `(host, interface)` is not in the mined inventory
    /// (configs missing from the archive — the paper must tolerate them).
    pub unresolved: u64,
}

/// Resolve a syslog archive against the link table.
pub fn resolve_syslog(
    messages: &[SyslogMessage],
    table: &LinkTable,
) -> (Vec<ResolvedMessage>, SyslogResolveStats) {
    let mut out = Vec::with_capacity(messages.len());
    let mut stats = SyslogResolveStats::default();
    for m in messages {
        let direction = if m.event.up {
            TransitionDirection::Up
        } else {
            TransitionDirection::Down
        };
        let (family, detail) = match &m.event.kind {
            LinkEventKind::IsisAdjacency { detail, .. } => {
                (MessageFamily::IsisAdjacency, Some(*detail))
            }
            LinkEventKind::Link => (MessageFamily::PhysicalMedia, None),
            LinkEventKind::LineProtocol => {
                stats.lineproto_skipped += 1;
                continue;
            }
        };
        match table.by_interface_sym(&m.event.host, &m.event.interface) {
            Some((link, host)) => {
                match family {
                    MessageFamily::IsisAdjacency => stats.isis_resolved += 1,
                    MessageFamily::PhysicalMedia => stats.physical_resolved += 1,
                }
                out.push(ResolvedMessage {
                    at: m.event.at,
                    link,
                    direction,
                    family,
                    host: table.symbols().shared(host),
                    detail,
                });
            }
            None => stats.unresolved += 1,
        }
    }
    out.sort_by_key(|a| (a.at, a.link));
    (out, stats)
}

/// Counters from the IS-IS link-level merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IsisMergeStats {
    /// Raw transitions consumed.
    pub raw: u64,
    /// Raw transitions that could not be resolved to a unique link because
    /// the router pair has a multi-link adjacency (IS reachability only).
    pub unresolvable_multilink: u64,
    /// Raw transitions naming routers/prefixes absent from the inventory.
    pub unknown: u64,
    /// Raw transitions inconsistent with tracked state (e.g. an UP for an
    /// endpoint already advertising — typically the echo of a change the
    /// listener slept through).
    pub inconsistent: u64,
    /// Link-level transitions emitted.
    pub emitted: u64,
}

/// Merge the listener's per-origin transitions of the given reachability
/// kind into link-level transitions.
///
/// Resolution to links is a couple of hash lookups per raw transition;
/// the stateful AND-merge — the expensive part on flapping links — runs
/// one `kernel::MergeState` machine per link (the same machine
/// the unified kernel's lanes run). Output is sorted by `(time, link)`.
pub fn isis_link_transitions(
    raw: &[Transition],
    table: &LinkTable,
    kind: ReachabilityKind,
) -> (Vec<LinkTransition>, IsisMergeStats) {
    let mut stats = IsisMergeStats::default();
    // Per-link event groups in raw-stream (time) order. BTreeMap keeps
    // the groups in ascending-link order for the deterministic merge.
    let mut groups: BTreeMap<LinkIx, Vec<(Timestamp, SystemId, TransitionDirection)>> =
        BTreeMap::new();
    for t in raw {
        if t.kind != kind {
            continue;
        }
        stats.raw += 1;
        let link = match (kind, &t.subject) {
            (ReachabilityKind::IsReach, TransitionSubject::Adjacency { neighbor }) => {
                let links = table.by_sysid_pair(t.source, *neighbor);
                match links.len() {
                    0 => {
                        stats.unknown += 1;
                        continue;
                    }
                    1 => links[0],
                    _ => {
                        stats.unresolvable_multilink += 1;
                        continue;
                    }
                }
            }
            (ReachabilityKind::IpReach, TransitionSubject::Prefix { .. }) => {
                match t.subject.as_subnet().and_then(|s| table.by_subnet(s)) {
                    Some(l) => l,
                    None => {
                        stats.unknown += 1;
                        continue;
                    }
                }
            }
            _ => {
                stats.unknown += 1;
                continue;
            }
        };
        groups
            .entry(link)
            .or_default()
            .push((t.at, t.source, t.direction));
    }

    let mut out = Vec::new();
    for (link, events) in groups {
        let (transitions, inconsistent) = merge_one_link(link, &events);
        stats.inconsistent += inconsistent;
        stats.emitted += transitions.len() as u64;
        out.extend(transitions);
    }
    out.sort_by_key(|t| (t.at, t.link));
    (out, stats)
}

/// The both-ends AND-merge for one link's per-origin events (in time
/// order): DOWN fires on the first endpoint's withdrawal, UP only once
/// both ends re-advertise. Returns the link-level transitions and the
/// count of state-inconsistent raw events.
fn merge_one_link(
    link: LinkIx,
    events: &[(Timestamp, SystemId, TransitionDirection)],
) -> (Vec<LinkTransition>, u64) {
    let mut merge = MergeState::default();
    let mut out = Vec::new();
    for &(at, source, direction) in events {
        if merge.step(source, direction) {
            out.push(LinkTransition {
                at,
                link,
                direction,
            });
        }
    }
    (out, merge.inconsistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linktable;
    use faultline_sim::scenario::{run, ScenarioParams};
    use std::collections::HashMap;

    fn scenario() -> (faultline_sim::ScenarioData, LinkTable) {
        let data = run(&ScenarioParams::tiny(3).lossless());
        let table = linktable::from_scenario(&data);
        (data, table)
    }

    #[test]
    fn syslog_resolution_covers_everything_in_lossless_run() {
        let (data, table) = scenario();
        let (resolved, stats) = resolve_syslog(&data.syslog, &table);
        assert_eq!(stats.unresolved, 0, "all interfaces mined");
        assert!(stats.isis_resolved > 0);
        assert!(!resolved.is_empty());
        // Sorted by time.
        for w in resolved.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn lineproto_messages_are_skipped_not_unresolved() {
        let (data, table) = scenario();
        let (_, stats) = resolve_syslog(&data.syslog, &table);
        // Physical failures emit both %LINK and %LINEPROTO; the latter are
        // counted separately.
        assert_eq!(stats.physical_resolved, stats.lineproto_skipped);
    }

    #[test]
    fn is_transitions_alternate_per_link() {
        let (data, table) = scenario();
        let (ts, stats) =
            isis_link_transitions(&data.transitions, &table, ReachabilityKind::IsReach);
        assert!(stats.emitted > 0);
        let mut state: HashMap<LinkIx, TransitionDirection> = HashMap::new();
        for t in &ts {
            let prev = state.insert(t.link, t.direction);
            if let Some(prev) = prev {
                assert_ne!(
                    prev,
                    t.direction,
                    "link-level transitions must alternate on {:?}",
                    table.name(t.link)
                );
            } else {
                assert_eq!(
                    t.direction,
                    TransitionDirection::Down,
                    "first event is DOWN"
                );
            }
        }
    }

    #[test]
    fn ip_transitions_alternate_per_link() {
        let (data, table) = scenario();
        let (ts, stats) =
            isis_link_transitions(&data.transitions, &table, ReachabilityKind::IpReach);
        assert!(stats.emitted > 0);
        assert_eq!(stats.unresolvable_multilink, 0, "/31s are always unique");
        let mut state: HashMap<LinkIx, TransitionDirection> = HashMap::new();
        for t in &ts {
            if let Some(prev) = state.insert(t.link, t.direction) {
                assert_ne!(prev, t.direction);
            }
        }
    }

    #[test]
    fn multilink_transitions_counted_when_present() {
        // Run a scenario whose topology has multi-link pairs and verify
        // that any IS transition on them is excluded, not misassigned.
        let (data, table) = scenario();
        let (_, stats) =
            isis_link_transitions(&data.transitions, &table, ReachabilityKind::IsReach);
        // Every raw transition is either emitted as a link event, merged
        // away (second-side withdrawal), or excluded for a counted reason.
        assert!(
            stats.raw
                >= stats.emitted
                    + stats.unresolvable_multilink
                    + stats.unknown
                    + stats.inconsistent
        );
        assert_eq!(stats.unknown, 0, "all routers are in the mined inventory");
    }

    #[test]
    fn down_then_up_counts_balance_roughly() {
        let (data, table) = scenario();
        let (ts, _) = isis_link_transitions(&data.transitions, &table, ReachabilityKind::IsReach);
        let downs = ts
            .iter()
            .filter(|t| t.direction == TransitionDirection::Down)
            .count();
        let ups = ts
            .iter()
            .filter(|t| t.direction == TransitionDirection::Up)
            .count();
        // Ups can lag downs by at most the number of links (open failures
        // at period end).
        assert!(downs >= ups);
        assert!(downs - ups <= table.len());
    }
}
