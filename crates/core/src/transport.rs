//! The serializable shard transport: how the cluster's dispatcher and
//! its shard workers talk.
//!
//! PR 7's cluster proved shard-equivalence with threads calling methods
//! on shared engines; nothing in that shape could ever cross a machine
//! boundary. This module turns the cluster into **actors exchanging
//! messages**: every interaction between the dispatcher and a worker is
//! one [`ShardMsg`], and workers hold *no* shared state — each owns its
//! own [`StreamAnalysis`] (or [`DurableStream`]) and speaks only
//! through a [`ShardTransport`]. The model follows the replica /
//! state-manager layering the ROADMAP cites: state moves between
//! processes only as serialized, versioned, integrity-hashed artifacts.
//!
//! Two transports ship:
//!
//! - [`InProcessTransport`] — workers are scoped threads behind bounded
//!   channels. Messages move by value (no serialization), so this is
//!   the default and costs nothing over the former hand-rolled cluster;
//!   `tests/cluster_equivalence.rs` proves its output byte-identical to
//!   batch across the shard grid.
//! - [`SubprocessTransport`] — workers are `faultline-shard-worker`
//!   processes driven over stdio pipes. Every message crosses as a
//!   length-prefixed, versioned frame carrying an FNV-1a payload hash
//!   (the checkpoint encoding discipline from [`crate::recovery`]), so
//!   a torn pipe or corrupt frame is a typed [`FrameError`], never a
//!   wrong message. Worker death is observed as EOF; the durable
//!   supervisor respawns the worker and recovers it through the
//!   existing checkpoint + journal ladder.
//!
//! # Wire format
//!
//! Each frame is an 18-byte header followed by a JSON payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "FLSM"
//!      4     2  wire version, u16 LE (this build: 1)
//!      6     4  payload length, u32 LE
//!     10     8  FNV-1a 64 hash of the payload, u64 LE
//!     18     n  serde_json payload: one ShardMsg
//! ```
//!
//! The protocol is strictly request/response with a fixed lifecycle:
//! a worker announces [`ShardMsg::Ready`] once its engine exists, then
//! consumes [`ShardMsg::Events`] until [`ShardMsg::Flush`], answering
//! with [`ShardMsg::Flushed`] and exiting. [`ShardMsg::ExportLanes`] /
//! [`ShardMsg::LaneMigrate`] implement live resharding (see
//! [`crate::cluster::run_reshard_cluster`]); any unrecoverable worker
//! condition travels as [`ShardMsg::Fatal`].

use crate::analysis::AnalysisConfig;
use crate::error::{FrameError, TransportError};
use crate::linktable::LinkIx;
use crate::observe::{PipelineReport, TransportCounters};
use crate::recovery::{self, DurabilityPolicy, DurableStream, RecoveryReport};
use crate::streaming::{LaneMigration, StreamAnalysis, StreamEvent, StreamOutput};
use faultline_sim::scenario::{run as run_scenario, ScenarioData, ScenarioParams};
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::thread;

/// The four bytes every shard-message frame starts with.
pub const FRAME_MAGIC: [u8; 4] = *b"FLSM";

/// The frame format version this build writes and reads.
pub const WIRE_VERSION: u16 = 1;

/// Sanity bound on a declared payload length. A header whose length
/// field exceeds this is treated as corrupt rather than honored — the
/// same defense the checkpoint loader applies to its own headers.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

/// Frame header size: magic + version + payload length + payload hash.
pub const FRAME_HEADER_LEN: usize = 4 + 2 + 4 + 8;

/// Bounded depth of the in-process dispatcher→worker channel, in
/// messages. Deep enough that the dispatcher essentially never parks
/// mid-feed at paper-scale chunk sizes — every park/unpark pair is a
/// scheduler round trip the ingest headline pays for, and measured
/// single-core runs showed depth 8 costing ~10% of throughput over a
/// depth the feed fits inside. Still bounded, so a genuinely slow
/// shard exerts backpressure instead of buffering without limit; the
/// worst-case in-flight footprint matches what the pre-transport
/// runtime materialized up front in `partition_events`.
const INPROC_CHANNEL_DEPTH: usize = 64;

/// One message between the cluster dispatcher and a shard worker —
/// the complete vocabulary of the shard protocol. Everything is
/// serde-serializable: the in-process transport moves values and the
/// subprocess transport frames JSON, but the protocol is identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ShardMsg {
    /// First frame to a subprocess worker: everything it needs to build
    /// its engine. (The in-process transport hands the spec to the
    /// worker thread directly; it never crosses as a message.)
    Hello(Box<WorkerSpec>),
    /// Worker → dispatcher: the engine exists and the worker is
    /// consuming. Also the acknowledgement of a [`ShardMsg::LaneMigrate`]
    /// import.
    Ready(ReadyMsg),
    /// A micro-batch of this shard's events, in stream order.
    Events(Vec<StreamEvent>),
    /// Detach these links' lanes and answer with [`ShardMsg::LaneMigrate`]
    /// (live resharding, outbound side).
    ExportLanes(Vec<LinkIx>),
    /// Attach these migrated lanes and answer with [`ShardMsg::Ready`]
    /// (live resharding, inbound side).
    LaneMigrate(LaneMigration),
    /// End of stream: flush the engine and answer with
    /// [`ShardMsg::Flushed`], then exit.
    Flush,
    /// Worker → dispatcher: the shard's flushed output and accounting.
    Flushed(Box<WorkerOutput>),
    /// Worker → dispatcher: an unrecoverable condition; the worker
    /// exits after sending this.
    Fatal {
        /// The worker's description of what failed.
        detail: String,
    },
}

impl ShardMsg {
    /// Short stable name of the message kind, for protocol diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ShardMsg::Hello(_) => "hello",
            ShardMsg::Ready(_) => "ready",
            ShardMsg::Events(_) => "events",
            ShardMsg::ExportLanes(_) => "export_lanes",
            ShardMsg::LaneMigrate(_) => "lane_migrate",
            ShardMsg::Flush => "flush",
            ShardMsg::Flushed(_) => "flushed",
            ShardMsg::Fatal { .. } => "fatal",
        }
    }
}

/// The payload of [`ShardMsg::Ready`]: where the worker's engine stands.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReadyMsg {
    /// Events the engine has already consumed. 0 for a fresh engine;
    /// after a durable recovery, the resume position — the dispatcher
    /// re-feeds this shard's substream from here.
    pub resumed_at_seq: u64,
    /// What the recovery ladder found and did, when the engine was
    /// rebuilt from durable state.
    pub recovery: Option<RecoveryReport>,
    /// Lanes attached by the [`ShardMsg::LaneMigrate`] this acknowledges
    /// (0 on lifecycle Readys).
    pub lanes_imported: u64,
}

/// A shard's flushed result: the merge-ready output plus the worker's
/// own accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerOutput {
    /// The shard's complete derived surface.
    pub output: StreamOutput,
    /// The shard engine's per-stage accounting.
    pub report: PipelineReport,
}

/// Everything a shard worker needs to build its engine — the one
/// message that makes a worker self-contained enough to live in another
/// process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// This worker's shard index.
    pub shard: u32,
    /// Total shards in the run (for diagnostics; routing already
    /// happened at the dispatcher).
    pub shards: u32,
    /// The analysis configuration every shard shares.
    pub config: AnalysisConfig,
    /// Where the worker's scenario (topology + side inputs) comes from.
    pub scenario: ScenarioSpec,
    /// When present, wrap the engine in [`DurableStream`] under this
    /// policy.
    pub durable: Option<DurableSpec>,
    /// Chaos hook: consume exactly this many events, then die without a
    /// word (no flush, no farewell frame) — the deterministic stand-in
    /// for `kill -9` that `tests/cluster_recovery.rs` pins
    /// `resumed_at_seq` against.
    pub abort_after_events: Option<u64>,
}

impl WorkerSpec {
    /// A fresh, non-durable worker spec for shard `shard` of `shards`.
    pub fn new(shard: u32, shards: u32, config: AnalysisConfig, scenario: ScenarioSpec) -> Self {
        WorkerSpec {
            shard,
            shards,
            config,
            scenario,
            durable: None,
            abort_after_events: None,
        }
    }
}

/// Where a worker's scenario data comes from. The analysis engines
/// borrow the scenario, so a worker in another process must be able to
/// *own* one; this enum is how the dispatcher says which way.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ScenarioSpec {
    /// The host process already holds the scenario and hands the worker
    /// a reference (in-process transport only; a subprocess worker
    /// rejects this with [`ShardMsg::Fatal`]).
    Attached,
    /// Regenerate the scenario from simulator parameters — cheap to
    /// ship, deterministic, and exactly what CI-scale subprocess runs
    /// use.
    Params(Box<ScenarioParams>),
    /// Ship the scenario itself (topology indexes are rebuilt on the
    /// far side, mirroring [`ScenarioData::load`]).
    Inline(Box<ScenarioData>),
}

/// Durability settings for one worker: where its checkpoint + journal
/// state lives and whether to recover it or start fresh.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurableSpec {
    /// The worker's durability directory (its own; never shared).
    pub dir: String,
    /// Checkpoint cadence, retention, fsync, and retry policy.
    pub policy: DurabilityPolicy,
    /// `false`: create a fresh durable stream (refusing existing
    /// state); `true`: rebuild from whatever `dir` holds through the
    /// recovery ladder.
    pub recover: bool,
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Encode one message as a frame onto `w`. Returns the total bytes
/// written (header + payload). The payload hash uses the same FNV-1a
/// the checkpoint format uses, so both layers share one integrity
/// discipline.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, msg: &ShardMsg) -> Result<u64, FrameError> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| FrameError::Malformed {
            detail: e.to_string(),
        })?
        .into_bytes();
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(FrameError::TooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    header[6..10].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[10..18].copy_from_slice(&recovery::fnv1a64(&payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    Ok((FRAME_HEADER_LEN + payload.len()) as u64)
}

/// Decode one frame from `r`. Returns the message and the total bytes
/// consumed. EOF at a frame boundary is [`FrameError::Closed`] (how a
/// worker's death is observed); EOF mid-frame is [`FrameError::Torn`];
/// every other kind of damage gets its own typed variant. Never
/// panics, whatever the bytes.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<(ShardMsg, u64), FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let got = read_fully(r, &mut header)?;
    if got == 0 {
        return Err(FrameError::Closed);
    }
    if got < FRAME_HEADER_LEN {
        return Err(FrameError::Torn {
            expected: FRAME_HEADER_LEN,
            got,
        });
    }
    let magic: [u8; 4] = header[..4].try_into().expect("4-byte slice");
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
    if version != WIRE_VERSION {
        return Err(FrameError::UnsupportedVersion {
            found: version,
            expected: WIRE_VERSION,
        });
    }
    let len = u32::from_le_bytes(header[6..10].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::TooLarge {
            len: u64::from(len),
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    let expected = u64::from_le_bytes(header[10..18].try_into().expect("8-byte slice"));
    let mut payload = vec![0u8; len as usize];
    let got = read_fully(r, &mut payload)?;
    if got < payload.len() {
        return Err(FrameError::Torn {
            expected: payload.len(),
            got,
        });
    }
    let found = recovery::fnv1a64(&payload);
    if found != expected {
        return Err(FrameError::HashMismatch { expected, found });
    }
    let msg = serde_json::from_slice(&payload).map_err(|e| FrameError::Malformed {
        detail: e.to_string(),
    })?;
    Ok((msg, (FRAME_HEADER_LEN + payload.len()) as u64))
}

/// Fill `buf` from `r`, tolerating short reads; returns how many bytes
/// actually arrived before EOF (so callers can distinguish a clean
/// boundary from a torn frame).
fn read_fully<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(filled)
}

// ---------------------------------------------------------------------------
// The transport abstraction
// ---------------------------------------------------------------------------

/// How the cluster dispatcher reaches its shard workers. Everything the
/// cluster runtime does — feeding events, flushing, supervising
/// recovery, live resharding — goes through these seven operations, so
/// a cluster driver is transport-agnostic by construction.
///
/// Worker indices are dense and stable: `0..workers()`, growing only
/// via [`ShardTransport::grow`]. After `start`/`respawn`/`grow`, the
/// first message received from the new worker is its
/// [`ShardMsg::Ready`].
pub trait ShardTransport {
    /// Number of workers currently addressed (dead ones keep their
    /// index until respawned).
    fn workers(&self) -> usize;
    /// Send one message to worker `worker`. Backpressure blocks;
    /// a dead worker surfaces as [`TransportError::WorkerGone`].
    fn send(&mut self, worker: usize, msg: ShardMsg) -> Result<(), TransportError>;
    /// Receive the next message from worker `worker` (blocking). EOF or
    /// hang-up surfaces as [`TransportError::WorkerGone`].
    fn recv(&mut self, worker: usize) -> Result<ShardMsg, TransportError>;
    /// Kill worker `worker` abruptly (SIGKILL for subprocesses,
    /// channel teardown in-process) — chaos injection, not shutdown.
    fn kill(&mut self, worker: usize) -> Result<(), TransportError>;
    /// Replace worker `worker` with a fresh one built from `spec`,
    /// keeping its index.
    fn respawn(&mut self, worker: usize, spec: WorkerSpec) -> Result<(), TransportError>;
    /// Add a new worker built from `spec`; returns its index
    /// (`workers() - 1` after the call).
    fn grow(&mut self, spec: WorkerSpec) -> Result<usize, TransportError>;
    /// Snapshot of the transport's accounting so far.
    fn counters(&self) -> TransportCounters;
    /// Mutable access to the accounting (the cluster driver stamps
    /// migration costs in here).
    fn counters_mut(&mut self) -> &mut TransportCounters;
}

// ---------------------------------------------------------------------------
// The worker loop (shared by both transports)
// ---------------------------------------------------------------------------

/// A worker's view of its connection: one receive + one send, both
/// fallible with [`FrameError`] (`Closed` doubles as "dispatcher hung
/// up" for the channel-backed port).
pub(crate) trait WorkerPort {
    /// Next command from the dispatcher (blocking).
    fn recv(&mut self) -> Result<ShardMsg, FrameError>;
    /// Answer the dispatcher.
    fn send(&mut self, msg: ShardMsg) -> Result<(), FrameError>;
    /// Hand a consumed [`ShardMsg::Events`] batch back to whoever
    /// allocated it. Purely an allocator hint, not protocol: the
    /// in-process port returns the batch to the dispatcher thread so
    /// every event clone is freed by the same thread (and arena) that
    /// allocated it, keeping the free off the worker's ingest path.
    /// The default drops locally, which is all a subprocess can do.
    fn recycle(&mut self, spent: Vec<StreamEvent>) {
        drop(spent);
    }
}

/// Channel-backed port: the in-process worker side.
struct ChannelPort {
    rx: Receiver<ShardMsg>,
    tx: Sender<ShardMsg>,
    recycle: Sender<Vec<StreamEvent>>,
}

impl WorkerPort for ChannelPort {
    fn recv(&mut self) -> Result<ShardMsg, FrameError> {
        self.rx.recv().map_err(|_| FrameError::Closed)
    }
    fn send(&mut self, msg: ShardMsg) -> Result<(), FrameError> {
        self.tx.send(msg).map_err(|_| FrameError::Closed)
    }
    fn recycle(&mut self, spent: Vec<StreamEvent>) {
        // A hung-up dispatcher just means we free locally after all.
        let _ = self.recycle.send(spent);
    }
}

/// Frame-backed port: the subprocess worker side (or any byte stream).
struct StreamPort<R: Read, W: Write> {
    reader: R,
    writer: W,
}

impl<R: Read, W: Write> WorkerPort for StreamPort<R, W> {
    fn recv(&mut self) -> Result<ShardMsg, FrameError> {
        read_frame(&mut self.reader).map(|(msg, _)| msg)
    }
    fn send(&mut self, msg: ShardMsg) -> Result<(), FrameError> {
        write_frame(&mut self.writer, &msg)?;
        self.writer.flush()?;
        Ok(())
    }
}

/// How a worker's lifecycle ended.
enum WorkerExit {
    /// The worker ran its protocol to completion (Flushed, Fatal, or
    /// the dispatcher hung up).
    Completed,
    /// The worker hit its `abort_after_events` chaos hook and died
    /// mid-stream without a farewell.
    Aborted,
}

fn send_fatal(port: &mut dyn WorkerPort, detail: String) -> WorkerExit {
    let _ = port.send(ShardMsg::Fatal { detail });
    WorkerExit::Completed
}

/// The shard worker's whole life, identical for both transports: build
/// the engine the spec describes, announce [`ShardMsg::Ready`], consume
/// commands until [`ShardMsg::Flush`] (or death), answer, exit.
fn run_worker(data: &ScenarioData, spec: WorkerSpec, port: &mut dyn WorkerPort) -> WorkerExit {
    // One stack local per worker lifetime; the durable engine is larger
    // than the fresh one, but boxing it would buy nothing here.
    #[allow(clippy::large_enum_variant)]
    enum Engine<'a> {
        Fresh(StreamAnalysis<'a>),
        Durable(DurableStream<'a>),
    }

    let abort_at = spec.abort_after_events;
    let mut ready = ReadyMsg::default();
    // The dispatcher validated configuration and input ordering once
    // before spawning anyone (`run_cluster*` call `validate_inputs`
    // first), so workers construct infallibly — re-validating here
    // would rescan the whole archive once per worker.
    let mut engine = match &spec.durable {
        None => Engine::Fresh(StreamAnalysis::new(data, spec.config.clone())),
        Some(d) => {
            let dir = Path::new(&d.dir);
            if d.recover {
                match DurableStream::recover(dir, data, spec.config.clone(), d.policy) {
                    Ok((stream, report)) => {
                        ready.resumed_at_seq = report.resumed_at_seq;
                        ready.recovery = Some(report);
                        Engine::Durable(stream)
                    }
                    Err(e) => return send_fatal(port, e.to_string()),
                }
            } else {
                match DurableStream::create(dir, data, spec.config.clone(), d.policy) {
                    Ok(stream) => Engine::Durable(stream),
                    Err(e) => return send_fatal(port, e.to_string()),
                }
            }
        }
    };
    if port.send(ShardMsg::Ready(ready)).is_err() {
        return WorkerExit::Completed;
    }

    // Events consumed by THIS worker instance — the abort hook counts a
    // single life, exactly like an in-process kill at event n.
    let mut consumed: u64 = 0;
    loop {
        let msg = match port.recv() {
            Ok(m) => m,
            // The dispatcher hung up without Flush: the run was
            // abandoned; nothing to flush, nothing to say.
            Err(_) => return WorkerExit::Completed,
        };
        match msg {
            ShardMsg::Events(batch) => {
                match &mut engine {
                    Engine::Fresh(e) => {
                        if abort_at.is_some() {
                            // Per-event feed so the abort lands exactly on
                            // its boundary (chunk-invisibility makes the
                            // output identical either way).
                            for event in &batch {
                                if Some(consumed) == abort_at {
                                    return WorkerExit::Aborted;
                                }
                                e.ingest(event);
                                consumed += 1;
                            }
                        } else {
                            consumed += batch.len() as u64;
                            e.ingest_batch(&batch);
                        }
                    }
                    Engine::Durable(stream) => {
                        for event in &batch {
                            if Some(consumed) == abort_at {
                                return WorkerExit::Aborted;
                            }
                            if let Err(e) = stream.ingest(event) {
                                return send_fatal(port, e.to_string());
                            }
                            consumed += 1;
                        }
                    }
                }
                port.recycle(batch);
            }
            ShardMsg::ExportLanes(links) => match &mut engine {
                Engine::Fresh(e) => {
                    let migration = e.export_lanes(&links);
                    if port.send(ShardMsg::LaneMigrate(migration)).is_err() {
                        return WorkerExit::Completed;
                    }
                }
                Engine::Durable(_) => {
                    return send_fatal(
                        port,
                        "durable workers do not support lane migration".to_string(),
                    )
                }
            },
            ShardMsg::LaneMigrate(migration) => match &mut engine {
                Engine::Fresh(e) => match e.import_lanes(migration) {
                    Ok(n) => {
                        let ack = ReadyMsg {
                            resumed_at_seq: e.events_ingested(),
                            recovery: None,
                            lanes_imported: n,
                        };
                        if port.send(ShardMsg::Ready(ack)).is_err() {
                            return WorkerExit::Completed;
                        }
                    }
                    Err(detail) => return send_fatal(port, detail),
                },
                Engine::Durable(_) => {
                    return send_fatal(
                        port,
                        "durable workers do not support lane migration".to_string(),
                    )
                }
            },
            ShardMsg::Flush => {
                let result = match engine {
                    Engine::Fresh(e) => e.flush(),
                    Engine::Durable(stream) => stream.finish(),
                };
                let _ = port.send(ShardMsg::Flushed(Box::new(WorkerOutput {
                    output: result.output,
                    report: result.report,
                })));
                return WorkerExit::Completed;
            }
            other => {
                return send_fatal(
                    port,
                    format!("unexpected {} message in worker", other.kind()),
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// The default transport: each worker is a scoped thread running
/// the worker loop behind a bounded command channel. Messages move by
/// value — no serialization, no copies beyond the protocol's own —
/// so the byte counters stay 0 and the ingest headline is unchanged
/// from the pre-transport cluster.
pub struct InProcessTransport<'scope, 'env> {
    scope: &'scope thread::Scope<'scope, 'env>,
    data: &'env ScenarioData,
    ports: Vec<InProcPort>,
    counters: TransportCounters,
}

struct InProcPort {
    /// `None` after [`ShardTransport::kill`]: dropping the sender is the
    /// in-process stand-in for SIGKILL.
    tx: Option<SyncSender<ShardMsg>>,
    rx: Receiver<ShardMsg>,
    /// Spent event batches coming home to the thread that cloned them;
    /// drained (and thus freed arena-locally) on every send.
    spent_rx: Receiver<Vec<StreamEvent>>,
}

fn spawn_inproc<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    data: &'env ScenarioData,
    spec: WorkerSpec,
) -> InProcPort {
    let (cmd_tx, cmd_rx) = sync_channel(INPROC_CHANNEL_DEPTH);
    // Unbounded on the answer side so a worker can always report
    // (Fatal, LaneMigrate) without deadlocking against a dispatcher
    // that is mid-send to it. The recycle lane is likewise unbounded:
    // it can never hold more batches than the bounded command channel
    // let in.
    let (rsp_tx, rsp_rx) = channel();
    let (spent_tx, spent_rx) = channel();
    scope.spawn(move || {
        let mut port = ChannelPort {
            rx: cmd_rx,
            tx: rsp_tx,
            recycle: spent_tx,
        };
        let _ = run_worker(data, spec, &mut port);
    });
    InProcPort {
        tx: Some(cmd_tx),
        rx: rsp_rx,
        spent_rx,
    }
}

impl<'scope, 'env> InProcessTransport<'scope, 'env> {
    /// Spawn one scoped worker thread per spec. Workers borrow the
    /// host's scenario (their specs normally say
    /// [`ScenarioSpec::Attached`]), which is why the transport lives
    /// inside a [`thread::scope`].
    pub fn start(
        scope: &'scope thread::Scope<'scope, 'env>,
        data: &'env ScenarioData,
        specs: Vec<WorkerSpec>,
    ) -> Self {
        let mut counters = TransportCounters::default();
        let ports = specs
            .into_iter()
            .map(|spec| {
                counters.workers_spawned += 1;
                spawn_inproc(scope, data, spec)
            })
            .collect();
        InProcessTransport {
            scope,
            data,
            ports,
            counters,
        }
    }

    fn port(&mut self, worker: usize) -> Result<&mut InProcPort, TransportError> {
        let n = self.ports.len();
        self.ports.get_mut(worker).ok_or(TransportError::Protocol {
            worker,
            detail: format!("worker index out of range (have {n})"),
        })
    }
}

impl ShardTransport for InProcessTransport<'_, '_> {
    fn workers(&self) -> usize {
        self.ports.len()
    }

    fn send(&mut self, worker: usize, msg: ShardMsg) -> Result<(), TransportError> {
        let port = self.port(worker)?;
        // Free every batch this worker has finished with before handing
        // it the next one — the clones come home to the arena that made
        // them instead of being freed cross-thread on the ingest path.
        while let Ok(spent) = port.spent_rx.try_recv() {
            drop(spent);
        }
        let Some(tx) = port.tx.as_ref() else {
            return Err(TransportError::WorkerGone {
                worker,
                detail: "worker was killed".to_string(),
            });
        };
        match tx.send(msg) {
            Ok(()) => {
                self.counters.frames_sent += 1;
                Ok(())
            }
            Err(_) => Err(TransportError::WorkerGone {
                worker,
                detail: "worker thread exited".to_string(),
            }),
        }
    }

    fn recv(&mut self, worker: usize) -> Result<ShardMsg, TransportError> {
        let port = self.port(worker)?;
        match port.rx.recv() {
            Ok(msg) => {
                self.counters.frames_received += 1;
                Ok(msg)
            }
            Err(_) => Err(TransportError::WorkerGone {
                worker,
                detail: "worker thread exited".to_string(),
            }),
        }
    }

    fn kill(&mut self, worker: usize) -> Result<(), TransportError> {
        let port = self.port(worker)?;
        if port.tx.take().is_some() {
            self.counters.workers_killed += 1;
        }
        Ok(())
    }

    fn respawn(&mut self, worker: usize, spec: WorkerSpec) -> Result<(), TransportError> {
        self.port(worker)?;
        self.ports[worker] = spawn_inproc(self.scope, self.data, spec);
        self.counters.workers_spawned += 1;
        self.counters.worker_restarts += 1;
        Ok(())
    }

    fn grow(&mut self, spec: WorkerSpec) -> Result<usize, TransportError> {
        self.ports.push(spawn_inproc(self.scope, self.data, spec));
        self.counters.workers_spawned += 1;
        Ok(self.ports.len() - 1)
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }

    fn counters_mut(&mut self) -> &mut TransportCounters {
        &mut self.counters
    }
}

// ---------------------------------------------------------------------------
// Subprocess transport
// ---------------------------------------------------------------------------

/// The cross-process transport: each worker is a `faultline-shard-worker`
/// child driven over stdio pipes, every message a hashed frame. Worker
/// death is EOF; [`ShardTransport::kill`] is a genuine SIGKILL.
pub struct SubprocessTransport {
    worker_bin: PathBuf,
    workers: Vec<SubWorker>,
    counters: TransportCounters,
}

struct SubWorker {
    child: Child,
    /// `None` once the worker is known dead (killed or EPIPE'd).
    stdin: Option<BufWriter<std::process::ChildStdin>>,
    stdout: BufReader<std::process::ChildStdout>,
}

impl SubWorker {
    fn reap(&mut self) {
        self.stdin = None;
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_subprocess(bin: &Path, spec: &WorkerSpec) -> Result<SubWorker, TransportError> {
    if matches!(spec.scenario, ScenarioSpec::Attached) {
        return Err(TransportError::Spawn {
            detail: "subprocess workers need a self-contained scenario \
                     (ScenarioSpec::Params or ScenarioSpec::Inline)"
                .to_string(),
        });
    }
    let mut child = Command::new(bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| TransportError::Spawn {
            detail: format!("{}: {e}", bin.display()),
        })?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    Ok(SubWorker {
        child,
        stdin: Some(BufWriter::new(stdin)),
        stdout: BufReader::new(stdout),
    })
}

impl SubprocessTransport {
    /// Spawn one worker process per spec and send each its
    /// [`ShardMsg::Hello`]. `worker_bin` is the `faultline-shard-worker`
    /// binary (see [`locate_worker_bin`] for the conventional search).
    pub fn start(
        worker_bin: impl Into<PathBuf>,
        specs: &[WorkerSpec],
    ) -> Result<Self, TransportError> {
        let worker_bin = worker_bin.into();
        let mut transport = SubprocessTransport {
            worker_bin,
            workers: Vec::with_capacity(specs.len()),
            counters: TransportCounters::default(),
        };
        for spec in specs {
            let worker = spawn_subprocess(&transport.worker_bin, spec)?;
            transport.workers.push(worker);
            transport.counters.workers_spawned += 1;
            let index = transport.workers.len() - 1;
            transport.send(index, ShardMsg::Hello(Box::new(spec.clone())))?;
        }
        Ok(transport)
    }

    fn worker(&mut self, worker: usize) -> Result<&mut SubWorker, TransportError> {
        let n = self.workers.len();
        self.workers
            .get_mut(worker)
            .ok_or(TransportError::Protocol {
                worker,
                detail: format!("worker index out of range (have {n})"),
            })
    }
}

impl ShardTransport for SubprocessTransport {
    fn workers(&self) -> usize {
        self.workers.len()
    }

    fn send(&mut self, worker: usize, msg: ShardMsg) -> Result<(), TransportError> {
        let w = self.worker(worker)?;
        let Some(stdin) = w.stdin.as_mut() else {
            return Err(TransportError::WorkerGone {
                worker,
                detail: "worker was killed".to_string(),
            });
        };
        let outcome = write_frame(stdin, &msg).and_then(|n| {
            stdin.flush()?;
            Ok(n)
        });
        match outcome {
            Ok(n) => {
                self.counters.frames_sent += 1;
                self.counters.bytes_sent += n;
                Ok(())
            }
            Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::BrokenPipe => {
                Err(TransportError::WorkerGone {
                    worker,
                    detail: "stdin pipe broken (worker died)".to_string(),
                })
            }
            Err(source) => Err(TransportError::Frame { worker, source }),
        }
    }

    fn recv(&mut self, worker: usize) -> Result<ShardMsg, TransportError> {
        let w = self.worker(worker)?;
        match read_frame(&mut w.stdout) {
            Ok((msg, n)) => {
                self.counters.frames_received += 1;
                self.counters.bytes_received += n;
                Ok(msg)
            }
            Err(FrameError::Closed) => Err(TransportError::WorkerGone {
                worker,
                detail: "stdout closed (worker died)".to_string(),
            }),
            Err(source) => Err(TransportError::Frame { worker, source }),
        }
    }

    fn kill(&mut self, worker: usize) -> Result<(), TransportError> {
        let w = self.worker(worker)?;
        // `Child::kill` is SIGKILL on unix: no signal handler, no
        // cleanup, exactly the crash the recovery ladder is built for.
        w.reap();
        self.counters.workers_killed += 1;
        Ok(())
    }

    fn respawn(&mut self, worker: usize, spec: WorkerSpec) -> Result<(), TransportError> {
        self.worker(worker)?.reap();
        let fresh = spawn_subprocess(&self.worker_bin, &spec)?;
        self.workers[worker] = fresh;
        self.counters.workers_spawned += 1;
        self.counters.worker_restarts += 1;
        self.send(worker, ShardMsg::Hello(Box::new(spec)))
    }

    fn grow(&mut self, spec: WorkerSpec) -> Result<usize, TransportError> {
        let fresh = spawn_subprocess(&self.worker_bin, &spec)?;
        self.workers.push(fresh);
        self.counters.workers_spawned += 1;
        let index = self.workers.len() - 1;
        self.send(index, ShardMsg::Hello(Box::new(spec)))?;
        Ok(index)
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }

    fn counters_mut(&mut self) -> &mut TransportCounters {
        &mut self.counters
    }
}

impl Drop for SubprocessTransport {
    fn drop(&mut self) {
        // Never leave orphan workers behind an errored dispatcher.
        for w in &mut self.workers {
            w.reap();
        }
    }
}

/// Find the `faultline-shard-worker` binary by convention:
/// the `FAULTLINE_SHARD_WORKER` environment variable, then a sibling of
/// the current executable, then the parent target directory (where
/// cargo puts workspace binaries relative to test executables).
pub fn locate_worker_bin() -> Option<PathBuf> {
    if let Some(p) = std::env::var_os("FAULTLINE_SHARD_WORKER") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let name = format!("faultline-shard-worker{}", std::env::consts::EXE_SUFFIX);
    let sibling = dir.join(&name);
    if sibling.is_file() {
        return Some(sibling);
    }
    let parent = dir.parent()?.join(&name);
    parent.is_file().then_some(parent)
}

/// The `faultline-shard-worker` entry point: read the
/// [`ShardMsg::Hello`] spec from stdin, materialize an owned scenario,
/// and run the worker loop over stdio frames until Flush or death.
/// Returns the process exit code.
pub fn serve_stdio() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut port = StreamPort {
        reader: stdin.lock(),
        writer: BufWriter::new(stdout.lock()),
    };
    let mut spec = match port.recv() {
        Ok(ShardMsg::Hello(spec)) => *spec,
        Ok(other) => {
            let _ = port.send(ShardMsg::Fatal {
                detail: format!("expected hello, got {}", other.kind()),
            });
            return 2;
        }
        Err(e) => {
            eprintln!("faultline-shard-worker: no hello frame: {e}");
            return 2;
        }
    };
    let scenario = std::mem::replace(&mut spec.scenario, ScenarioSpec::Attached);
    let data: ScenarioData = match scenario {
        ScenarioSpec::Attached => {
            let _ = port.send(ShardMsg::Fatal {
                detail: "subprocess worker cannot attach to the dispatcher's scenario".to_string(),
            });
            return 2;
        }
        ScenarioSpec::Params(params) => run_scenario(&params),
        ScenarioSpec::Inline(boxed) => {
            let mut data = *boxed;
            // Mirror ScenarioData::load: derived topology indexes do
            // not travel through serde.
            data.topology.reindex();
            data
        }
    };
    match run_worker(&data, spec, &mut port) {
        WorkerExit::Completed => 0,
        WorkerExit::Aborted => 9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_sim::scenario::ScenarioParams;

    fn sample_msgs() -> Vec<ShardMsg> {
        vec![
            ShardMsg::Flush,
            ShardMsg::Ready(ReadyMsg::default()),
            ShardMsg::Events(Vec::new()),
            ShardMsg::ExportLanes(vec![LinkIx(0), LinkIx(7)]),
            ShardMsg::Fatal {
                detail: "boom".to_string(),
            },
            ShardMsg::Hello(Box::new(WorkerSpec::new(
                1,
                4,
                AnalysisConfig::default(),
                ScenarioSpec::Params(Box::new(ScenarioParams::tiny(3))),
            ))),
        ]
    }

    #[test]
    fn frames_round_trip_and_count_bytes() {
        for msg in sample_msgs() {
            let mut buf = Vec::new();
            let written = write_frame(&mut buf, &msg).expect("encode");
            assert_eq!(written as usize, buf.len());
            let (back, consumed) = read_frame(&mut buf.as_slice()).expect("decode");
            assert_eq!(consumed, written);
            assert_eq!(back.kind(), msg.kind());
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(&msg).unwrap(),
                "payload must survive the frame exactly"
            );
        }
    }

    #[test]
    fn empty_stream_is_closed_and_prefixes_are_torn() {
        assert!(matches!(
            read_frame(&mut [].as_slice()),
            Err(FrameError::Closed)
        ));
        let mut buf = Vec::new();
        write_frame(&mut buf, &ShardMsg::Flush).unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Torn { .. }),
                "prefix {cut}/{} must be torn, got {err}",
                buf.len()
            );
        }
    }

    #[test]
    fn header_damage_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ShardMsg::Flush).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut bad_magic.as_slice()),
            Err(FrameError::BadMagic { .. })
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 0xEE;
        assert!(matches!(
            read_frame(&mut bad_version.as_slice()),
            Err(FrameError::UnsupportedVersion { found: 0xEE, .. })
        ));

        let mut bad_len = buf.clone();
        bad_len[9] = 0xFF; // declared length far beyond the bound
        assert!(matches!(
            read_frame(&mut bad_len.as_slice()),
            Err(FrameError::TooLarge { .. })
        ));

        let mut bad_payload = buf.clone();
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut bad_payload.as_slice()),
            Err(FrameError::HashMismatch { .. })
        ));
    }

    #[test]
    fn oversize_payload_is_refused_at_write_time() {
        // A declared-length check alone would let a huge payload
        // through the writer; make sure the writer bounds it too.
        let msg = ShardMsg::Fatal {
            detail: "x".repeat(64),
        };
        let mut buf = Vec::new();
        assert!(write_frame(&mut buf, &msg).is_ok());
    }
}
