//! Syslog false positives and ambiguous-state-change classification
//! (§4.3, Table 6).
//!
//! A syslog failure with no IS-IS counterpart "seemingly did not impact
//! traffic" — a false positive. The paper finds 83% of them are ≤ 10 s
//! (connection resets and aborted handshakes) and nearly all of the long
//! ones fall inside flapping periods, when lost messages glue short
//! failures together.
//!
//! Ambiguous double up/down messages are diagnosed against the IS-IS
//! timeline: if both messages of the pair correspond to genuine IS-IS
//! transitions, a message in between was **lost**; if the repeat was sent
//! while the link was already in the asserted state, it was a **spurious
//! retransmission**; the rest are **unknown**.

use crate::flap::FlapIndex;
use crate::linktable::LinkIx;
use crate::par::{self, ParallelismConfig};
use crate::reconstruct::{AmbiguousPeriod, Failure};
use crate::transitions::LinkTransition;
use faultline_isis::listener::TransitionDirection;
use faultline_topology::time::{Duration, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A queryable per-link state timeline built from link-level transitions.
#[derive(Debug, Clone, Default)]
pub struct LinkStateTimeline {
    by_link: HashMap<LinkIx, Vec<(Timestamp, TransitionDirection)>>,
}

impl LinkStateTimeline {
    /// Build from sorted link transitions.
    pub fn new(transitions: &[LinkTransition]) -> Self {
        let mut by_link: HashMap<LinkIx, Vec<(Timestamp, TransitionDirection)>> = HashMap::new();
        for t in transitions {
            by_link.entry(t.link).or_default().push((t.at, t.direction));
        }
        for v in by_link.values_mut() {
            v.sort_by_key(|&(at, _)| at);
        }
        LinkStateTimeline { by_link }
    }

    /// Link state at `t` (up before any transition).
    pub fn is_down_at(&self, link: LinkIx, t: Timestamp) -> bool {
        let Some(v) = self.by_link.get(&link) else {
            return false;
        };
        let idx = v.partition_point(|&(at, _)| at <= t);
        idx > 0 && v[idx - 1].1 == TransitionDirection::Down
    }

    /// Is there a transition of `dir` on `link` within `window` of `t`?
    pub fn has_transition_near(
        &self,
        link: LinkIx,
        t: Timestamp,
        dir: TransitionDirection,
        window: Duration,
    ) -> bool {
        let Some(v) = self.by_link.get(&link) else {
            return false;
        };
        let lo = t.saturating_sub(window);
        let start = v.partition_point(|&(at, _)| at < lo);
        v[start..]
            .iter()
            .take_while(|&&(at, _)| at <= t + window)
            .any(|&(_, d)| d == dir)
    }
}

/// Cause of an ambiguous double message (Table 6 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AmbiguityCause {
    /// An intervening opposite-direction message was lost: both messages
    /// of the pair reflect genuine IS-IS transitions.
    LostMessage,
    /// The repeat restates the state the link was already in per IS-IS.
    SpuriousRetransmission,
    /// Neither explanation fits.
    Unknown,
}

/// Table 6 cell counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmbiguityCounts {
    /// Double-down periods by cause.
    pub down: [u64; 3],
    /// Double-up periods by cause.
    pub up: [u64; 3],
}

impl AmbiguityCounts {
    fn slot(cause: AmbiguityCause) -> usize {
        match cause {
            AmbiguityCause::LostMessage => 0,
            AmbiguityCause::SpuriousRetransmission => 1,
            AmbiguityCause::Unknown => 2,
        }
    }

    /// Total double-downs.
    pub fn down_total(&self) -> u64 {
        self.down.iter().sum()
    }

    /// Total double-ups.
    pub fn up_total(&self) -> u64 {
        self.up.iter().sum()
    }
}

/// Classify every ambiguous period against the IS-IS timeline.
pub fn classify_ambiguous(
    periods: &[AmbiguousPeriod],
    isis: &LinkStateTimeline,
    window: Duration,
) -> (Vec<(AmbiguousPeriod, AmbiguityCause)>, AmbiguityCounts) {
    let mut out = Vec::with_capacity(periods.len());
    let mut counts = AmbiguityCounts::default();
    for p in periods {
        let cause = classify_one(p, isis, window);
        match p.direction {
            TransitionDirection::Down => counts.down[AmbiguityCounts::slot(cause)] += 1,
            TransitionDirection::Up => counts.up[AmbiguityCounts::slot(cause)] += 1,
        }
        out.push((*p, cause));
    }
    (out, counts)
}

/// Like [`classify_ambiguous`], classifying chunks of periods across
/// threads. Each period is classified independently against the shared
/// (read-only) timeline, so chunking preserves order and counts exactly.
pub fn classify_ambiguous_par(
    periods: &[AmbiguousPeriod],
    isis: &LinkStateTimeline,
    window: Duration,
    par_cfg: &ParallelismConfig,
) -> (Vec<(AmbiguousPeriod, AmbiguityCause)>, AmbiguityCounts) {
    let chunks: Vec<&[AmbiguousPeriod]> = periods.chunks(par_cfg.chunk_size.max(1)).collect();
    let parts = par::par_map(&chunks, par_cfg, |c| classify_ambiguous(c, isis, window));
    let mut out = Vec::with_capacity(periods.len());
    let mut counts = AmbiguityCounts::default();
    for (mut classified, c) in parts {
        out.append(&mut classified);
        for (dst, src) in counts.down.iter_mut().zip(c.down) {
            *dst += src;
        }
        for (dst, src) in counts.up.iter_mut().zip(c.up) {
            *dst += src;
        }
    }
    (out, counts)
}

fn classify_one(p: &AmbiguousPeriod, isis: &LinkStateTimeline, window: Duration) -> AmbiguityCause {
    // Lost message: both syslog messages correspond to genuine IS-IS
    // transitions of their direction — meaning the opposite transition in
    // between went unreported by syslog.
    let first_real = isis.has_transition_near(p.link, p.first, p.direction, window);
    let second_real = isis.has_transition_near(p.link, p.second, p.direction, window);
    if first_real && second_real {
        return AmbiguityCause::LostMessage;
    }
    // Spurious retransmission: the repeat arrived while the link was
    // already in the asserted state. The state is probed shortly after
    // the message time because the listener's view lags the routers by
    // the LSP flood propagation delay.
    let grace = Duration::from_secs(2);
    let down_asserted = p.direction == TransitionDirection::Down;
    if isis.is_down_at(p.link, p.second + grace) == down_asserted
        || isis.is_down_at(p.link, p.second) == down_asserted
    {
        return AmbiguityCause::SpuriousRetransmission;
    }
    AmbiguityCause::Unknown
}

/// Classification of one syslog false positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FalsePositive {
    /// The false-positive failure.
    pub failure: Failure,
    /// ≤ 10 s (paper: 83% of all FPs).
    pub short: bool,
    /// Falls inside a flapping period on its link.
    pub in_flap: bool,
}

/// Aggregate false-positive report (§4.3 numbers).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FpReport {
    /// All false positives.
    pub all: Vec<FalsePositive>,
    /// Count of short (≤ 10 s) FPs.
    pub short_count: u64,
    /// Downtime attributable to short FPs (ms).
    pub short_downtime_ms: u64,
    /// Count of long FPs.
    pub long_count: u64,
    /// Downtime attributable to long FPs (ms).
    pub long_downtime_ms: u64,
    /// Long FPs inside flapping periods.
    pub long_in_flap: u64,
}

/// Classify syslog-only failures (already determined by failure matching)
/// as short/long and in/out of flapping.
pub fn classify_false_positives(
    syslog_only: &[Failure],
    flaps: &FlapIndex,
    short_threshold: Duration,
) -> FpReport {
    let mut report = FpReport::default();
    for f in syslog_only {
        let short = f.duration() <= short_threshold;
        let in_flap = flaps.overlaps(f.link, f.start, f.end);
        report.all.push(FalsePositive {
            failure: *f,
            short,
            in_flap,
        });
        if short {
            report.short_count += 1;
            report.short_downtime_ms += f.duration().as_millis();
        } else {
            report.long_count += 1;
            report.long_downtime_ms += f.duration().as_millis();
            if in_flap {
                report.long_in_flap += 1;
            }
        }
    }
    report
}

/// Like [`classify_false_positives`], classifying chunks of failures
/// across threads against the shared (read-only) flap index.
pub fn classify_false_positives_par(
    syslog_only: &[Failure],
    flaps: &FlapIndex,
    short_threshold: Duration,
    par_cfg: &ParallelismConfig,
) -> FpReport {
    let chunks: Vec<&[Failure]> = syslog_only.chunks(par_cfg.chunk_size.max(1)).collect();
    let parts = par::par_map(&chunks, par_cfg, |c| {
        classify_false_positives(c, flaps, short_threshold)
    });
    let mut merged = FpReport::default();
    for mut part in parts {
        merged.all.append(&mut part.all);
        merged.short_count += part.short_count;
        merged.short_downtime_ms += part.short_downtime_ms;
        merged.long_count += part.long_count;
        merged.long_downtime_ms += part.long_downtime_ms;
        merged.long_in_flap += part.long_in_flap;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flap::{detect_episodes, FlapIndex};
    use TransitionDirection::{Down, Up};

    fn tr(link: u32, at: u64, dir: TransitionDirection) -> LinkTransition {
        LinkTransition {
            at: Timestamp::from_secs(at),
            link: LinkIx(link),
            direction: dir,
        }
    }

    fn amb(link: u32, first: u64, second: u64, dir: TransitionDirection) -> AmbiguousPeriod {
        AmbiguousPeriod {
            link: LinkIx(link),
            first: Timestamp::from_secs(first),
            second: Timestamp::from_secs(second),
            direction: dir,
        }
    }

    const W: Duration = Duration::from_secs(10);

    #[test]
    fn timeline_state_queries() {
        let tl = LinkStateTimeline::new(&[tr(0, 100, Down), tr(0, 200, Up)]);
        assert!(!tl.is_down_at(LinkIx(0), Timestamp::from_secs(50)));
        assert!(tl.is_down_at(LinkIx(0), Timestamp::from_secs(150)));
        assert!(!tl.is_down_at(LinkIx(0), Timestamp::from_secs(250)));
        assert!(!tl.is_down_at(LinkIx(1), Timestamp::from_secs(150)));
        assert!(tl.has_transition_near(LinkIx(0), Timestamp::from_secs(105), Down, W));
        assert!(!tl.has_transition_near(LinkIx(0), Timestamp::from_secs(130), Down, W));
    }

    #[test]
    fn lost_message_detected() {
        // IS-IS saw two failures: 100-150 and 300-350. Syslog lost the up
        // at 150 and the down's repeat lands at 300.
        let tl = LinkStateTimeline::new(&[
            tr(0, 100, Down),
            tr(0, 150, Up),
            tr(0, 300, Down),
            tr(0, 350, Up),
        ]);
        let (classified, counts) = classify_ambiguous(&[amb(0, 101, 302, Down)], &tl, W);
        assert_eq!(classified[0].1, AmbiguityCause::LostMessage);
        assert_eq!(counts.down, [1, 0, 0]);
    }

    #[test]
    fn spurious_retransmission_detected() {
        // IS-IS: one failure 100-400; syslog's second down at 250 restates
        // a state the link is already in.
        let tl = LinkStateTimeline::new(&[tr(0, 100, Down), tr(0, 400, Up)]);
        let (classified, counts) = classify_ambiguous(&[amb(0, 101, 250, Down)], &tl, W);
        assert_eq!(classified[0].1, AmbiguityCause::SpuriousRetransmission);
        assert_eq!(counts.down, [0, 1, 0]);
    }

    #[test]
    fn spurious_double_up_detected() {
        let tl = LinkStateTimeline::new(&[tr(0, 100, Down), tr(0, 150, Up)]);
        // Second up at 250: link is up per IS-IS → spurious.
        let (classified, counts) = classify_ambiguous(&[amb(0, 151, 250, Up)], &tl, W);
        assert_eq!(classified[0].1, AmbiguityCause::SpuriousRetransmission);
        assert_eq!(counts.up, [0, 1, 0]);
    }

    #[test]
    fn unknown_when_no_explanation() {
        // IS-IS shows the link up at the repeat, and no IS transition near
        // either message.
        let tl = LinkStateTimeline::new(&[]);
        let (classified, counts) = classify_ambiguous(&[amb(0, 100, 200, Down)], &tl, W);
        assert_eq!(classified[0].1, AmbiguityCause::Unknown);
        assert_eq!(counts.down, [0, 0, 1]);
        assert_eq!(counts.down_total(), 1);
        assert_eq!(counts.up_total(), 0);
    }

    #[test]
    fn parallel_classification_matches_serial() {
        let tl = LinkStateTimeline::new(&[
            tr(0, 100, Down),
            tr(0, 150, Up),
            tr(0, 300, Down),
            tr(0, 400, Up),
            tr(1, 500, Down),
            tr(1, 900, Up),
        ]);
        let periods: Vec<AmbiguousPeriod> = (0..40)
            .map(|k| {
                let dir = if k % 2 == 0 { Down } else { Up };
                amb(k % 2, 100 + 17 * k as u64, 160 + 17 * k as u64, dir)
            })
            .collect();
        let (serial, serial_counts) = classify_ambiguous(&periods, &tl, W);
        let cfg = ParallelismConfig {
            threads: 4,
            chunk_size: 3,
        };
        let (par, par_counts) = classify_ambiguous_par(&periods, &tl, W, &cfg);
        assert_eq!(serial, par);
        assert_eq!(serial_counts, par_counts);
    }

    #[test]
    fn fp_classification_short_long_flap() {
        let isis_failures = vec![
            Failure {
                link: LinkIx(0),
                start: Timestamp::from_secs(1_000),
                end: Timestamp::from_secs(1_010),
            },
            Failure {
                link: LinkIx(0),
                start: Timestamp::from_secs(1_100),
                end: Timestamp::from_secs(1_110),
            },
        ];
        let flaps = FlapIndex::new(
            &detect_episodes(&isis_failures, Duration::from_secs(600)),
            Duration::from_secs(10),
        );
        let fps = vec![
            Failure {
                link: LinkIx(0),
                start: Timestamp::from_secs(1_050),
                end: Timestamp::from_secs(1_052),
            }, // short, in flap
            Failure {
                link: LinkIx(1),
                start: Timestamp::from_secs(5_000),
                end: Timestamp::from_secs(9_000),
            }, // long, not in flap
        ];
        let report = classify_false_positives(&fps, &flaps, Duration::from_secs(10));
        assert_eq!(report.short_count, 1);
        assert_eq!(report.long_count, 1);
        assert_eq!(report.long_in_flap, 0);
        assert!(report.all[0].in_flap);
        assert_eq!(report.long_downtime_ms, 4_000_000);
    }
}
