//! Data sanitization (§4.2).
//!
//! Two steps precede every failure-level comparison in the paper:
//!
//! 1. **Listener-outage removal** — failures that overlap a period when
//!    the IS-IS listener was offline are removed from both datasets: the
//!    IS-IS view is blind there, so nothing can be compared.
//! 2. **Long-failure verification** — syslog failures exceeding 24 hours
//!    are checked against the operator's trouble tickets; unchronicled
//!    ones are spurious (typically a lost UP merging two failures across
//!    a quiet stretch) and are removed. In the paper this one step
//!    removes ~6,000 hours of phantom downtime, almost twice the
//!    network's real downtime.

use crate::linktable::LinkIx;
use crate::reconstruct::Failure;
use faultline_isis::listener::OfflineSpan;
use faultline_topology::time::{Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// What sanitization did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizeReport {
    /// Failures removed for overlapping a listener outage.
    pub removed_offline: u64,
    /// Downtime removed with them (ms).
    pub removed_offline_ms: u64,
    /// Long failures that were checked against tickets.
    pub long_checked: u64,
    /// Long failures removed as unverified.
    pub long_removed: u64,
    /// Downtime removed as unverified (ms).
    pub long_removed_ms: u64,
}

impl SanitizeReport {
    /// Downtime removed by the ticket check, hours.
    pub fn long_removed_hours(&self) -> f64 {
        self.long_removed_ms as f64 / 3_600_000.0
    }
}

/// Remove failures overlapping any listener offline span. The overlap
/// predicate is `kernel::overlaps_offline` — the same per-failure check
/// the unified kernel's lanes apply.
pub fn remove_offline_spanning(
    failures: Vec<Failure>,
    spans: &[OfflineSpan],
    report: &mut SanitizeReport,
) -> Vec<Failure> {
    if spans.is_empty() {
        return failures;
    }
    failures
        .into_iter()
        .filter(|f| {
            let overlapping = crate::kernel::overlaps_offline(f, spans);
            if overlapping {
                report.removed_offline += 1;
                report.removed_offline_ms += f.duration().as_millis();
            }
            !overlapping
        })
        .collect()
}

/// Verify failures longer than `threshold` with the `verify` oracle
/// (ticket lookup); drop unverified ones.
pub fn verify_long_failures(
    failures: Vec<Failure>,
    threshold: Duration,
    mut verify: impl FnMut(LinkIx, Timestamp, Timestamp) -> bool,
    report: &mut SanitizeReport,
) -> Vec<Failure> {
    failures
        .into_iter()
        .filter(|f| {
            if f.duration() <= threshold {
                return true;
            }
            report.long_checked += 1;
            if verify(f.link, f.start, f.end) {
                true
            } else {
                report.long_removed += 1;
                report.long_removed_ms += f.duration().as_millis();
                false
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail(link: u32, start: u64, end: u64) -> Failure {
        Failure {
            link: LinkIx(link),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    #[test]
    fn offline_overlap_removed() {
        let spans = [OfflineSpan {
            from: Timestamp::from_secs(100),
            to: Timestamp::from_secs(200),
        }];
        let mut report = SanitizeReport::default();
        let kept = remove_offline_spanning(
            vec![
                fail(0, 10, 50),   // before: kept
                fail(0, 90, 110),  // straddles start: removed
                fail(0, 120, 150), // inside: removed
                fail(0, 190, 400), // straddles end: removed
                fail(0, 300, 400), // after: kept
            ],
            &spans,
            &mut report,
        );
        assert_eq!(kept.len(), 2);
        assert_eq!(report.removed_offline, 3);
        assert_eq!(
            report.removed_offline_ms,
            Duration::from_secs(20 + 30 + 210).as_millis()
        );
    }

    #[test]
    fn no_spans_is_identity() {
        let mut report = SanitizeReport::default();
        let fs = vec![fail(0, 0, 10)];
        let kept = remove_offline_spanning(fs.clone(), &[], &mut report);
        assert_eq!(kept, fs);
        assert_eq!(report.removed_offline, 0);
    }

    #[test]
    fn long_failures_verified_against_oracle() {
        let day = 86_400;
        let mut report = SanitizeReport::default();
        let kept = verify_long_failures(
            vec![
                fail(0, 0, 100),     // short: untouched
                fail(1, 0, 2 * day), // long, verified
                fail(2, 0, 3 * day), // long, unverified: dropped
            ],
            Duration::from_hours(24),
            |link, _, _| link == LinkIx(1),
            &mut report,
        );
        assert_eq!(kept.len(), 2);
        assert_eq!(report.long_checked, 2);
        assert_eq!(report.long_removed, 1);
        assert_eq!(
            report.long_removed_ms,
            Duration::from_secs(3 * day).as_millis()
        );
    }

    #[test]
    fn threshold_is_exclusive() {
        let mut report = SanitizeReport::default();
        let kept = verify_long_failures(
            vec![fail(0, 0, 86_400)], // exactly 24h
            Duration::from_hours(24),
            |_, _, _| false,
            &mut report,
        );
        assert_eq!(kept.len(), 1, "exactly-threshold failures are not checked");
        assert_eq!(report.long_checked, 0);
    }
}
