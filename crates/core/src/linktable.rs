//! The common naming layer (§3.4).
//!
//! Syslog identifies a link end by `(hostname, interface)`; IS-IS LSPs
//! identify routers by system ID, adjacencies by system-ID pairs, and
//! links (uniquely, thanks to CENIC's /31 numbering) by prefix. Neither
//! can be compared directly, so the paper maps both onto the link names
//! recovered by mining router configuration files. [`LinkTable`] is that
//! mapping, built from a [`MinedInventory`] plus the listener's
//! hostname-TLV map.

use crate::intern::{FastMap, Sym, SymbolTable};
use faultline_topology::config::MinedInventory;
use faultline_topology::interface::InterfaceName;
use faultline_topology::link::{LinkClass, LinkName};
use faultline_topology::osi::SystemId;
use faultline_topology::subnet::Subnet31;
use faultline_topology::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense index of a link within a [`LinkTable`]. Distinct from the
/// topology's `LinkId`: the analysis only knows what mining recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkIx(pub u32);

/// The resolution layer joining both data sources.
///
/// Internally every hostname and interface name is interned into the
/// table's [`SymbolTable`]; all resolution maps are keyed on dense
/// [`Sym`] pairs hashed with the kernel's fast hasher, so a lookup never
/// allocates. Interning order is deterministic (link endpoints in
/// inventory order, then hostnames in system-ID order), which makes the
/// id assignment reproducible for a given scenario — the property the
/// streaming checkpoint/restore path relies on when it rebuilds the
/// table instead of persisting it.
#[derive(Debug, Clone, Default)]
pub struct LinkTable {
    names: Vec<LinkName>,
    classes: Vec<LinkClass>,
    /// Active window per link (provisioning history from the config
    /// archive), used to annualize per-link rates.
    windows: Vec<(Timestamp, Timestamp)>,
    /// Interner for every hostname and interface name the table knows.
    symbols: SymbolTable,
    by_iface: FastMap<(Sym, Sym), LinkIx>,
    by_subnet: FastMap<Subnet31, LinkIx>,
    by_hostpair: FastMap<(Sym, Sym), Vec<LinkIx>>,
    /// Canonical endpoint host pair per link — the interned key the
    /// cluster partitioner hashes ([`Self::shard_key`]).
    pair_keys: Vec<(Sym, Sym)>,
    host_of_sysid: FastMap<SystemId, Sym>,
    /// Precomputed [`Self::by_sysid_pair`] answers: one probe on the
    /// IS-reachability hot path instead of two sysid resolutions plus a
    /// host-pair probe.
    by_sysid: FastMap<(SystemId, SystemId), Vec<LinkIx>>,
    /// False for members of multi-link adjacencies.
    resolvable: Vec<bool>,
}

impl LinkTable {
    /// Build from a mined inventory, a system-ID → hostname map (from
    /// Dynamic Hostname TLVs), and per-link active windows.
    ///
    /// A link's class is inferred from its hostnames: an endpoint whose
    /// hostname starts with `cust` is customer-premises equipment, making
    /// the link a CPE link; otherwise it is a Core link.
    pub fn new(
        inventory: &MinedInventory,
        hostnames: &HashMap<SystemId, String>,
        windows: impl Fn(&LinkName) -> (Timestamp, Timestamp),
    ) -> Self {
        let mut t = LinkTable::default();
        for (i, l) in inventory.links.iter().enumerate() {
            let ix = LinkIx(i as u32);
            t.names.push(l.name.clone());
            let is_cpe = l.a.0.starts_with("cust") || l.b.0.starts_with("cust");
            t.classes.push(if is_cpe {
                LinkClass::Cpe
            } else {
                LinkClass::Core
            });
            t.windows.push(windows(&l.name));
            let host_a = t.symbols.intern(&l.a.0);
            let iface_a = t.symbols.intern(l.a.1.as_str());
            let host_b = t.symbols.intern(&l.b.0);
            let iface_b = t.symbols.intern(l.b.1.as_str());
            t.by_iface.insert((host_a, iface_a), ix);
            t.by_iface.insert((host_b, iface_b), ix);
            t.by_subnet.insert(l.subnet, ix);
            let pair = Self::pair_key(host_a, host_b);
            t.pair_keys.push(pair);
            t.by_hostpair.entry(pair).or_default().push(ix);
        }
        // Hostname TLVs in system-ID order: `hostnames` is a `HashMap`,
        // whose iteration order must never leak into id assignment.
        let mut tlv: Vec<(SystemId, &String)> = hostnames.iter().map(|(k, v)| (*k, v)).collect();
        tlv.sort_by_key(|&(id, _)| id);
        for (id, host) in tlv {
            let sym = t.symbols.intern(host);
            t.host_of_sysid.insert(id, sym);
        }
        t.resolvable = vec![true; t.names.len()];
        for members in t.by_hostpair.values() {
            if members.len() > 1 {
                for &m in members {
                    t.resolvable[m.0 as usize] = false;
                }
            }
        }
        // Flatten sysid-pair resolution into one probe. A hostname sym
        // can be claimed by several system IDs (duplicate TLVs under
        // chaos), so invert to a multimap before crossing the pairs.
        let mut sysids_of_sym: FastMap<Sym, Vec<SystemId>> = FastMap::default();
        for (&id, &sym) in &t.host_of_sysid {
            sysids_of_sym.entry(sym).or_default().push(id);
        }
        for (&(ha, hb), links) in &t.by_hostpair {
            let (Some(sas), Some(sbs)) = (sysids_of_sym.get(&ha), sysids_of_sym.get(&hb)) else {
                continue;
            };
            for &sa in sas {
                for &sb in sbs {
                    let key = if sa <= sb { (sa, sb) } else { (sb, sa) };
                    t.by_sysid.insert(key, links.clone());
                }
            }
        }
        t
    }

    /// Canonical unordered-pair key: the smaller id first. Allocation-free
    /// (the pre-interning version built two fresh `String`s per call) and
    /// partition-equivalent to ordering by hostname, since every insert
    /// and lookup canonicalizes the same way.
    fn pair_key(a: Sym, b: Sym) -> (Sym, Sym) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if mining recovered nothing.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Canonical name of a link.
    pub fn name(&self, ix: LinkIx) -> &LinkName {
        &self.names[ix.0 as usize]
    }

    /// Core or CPE.
    pub fn class(&self, ix: LinkIx) -> LinkClass {
        self.classes[ix.0 as usize]
    }

    /// Active window of a link.
    pub fn window(&self, ix: LinkIx) -> (Timestamp, Timestamp) {
        self.windows[ix.0 as usize]
    }

    /// Active years of a link (annualization denominator, Table 5).
    pub fn years(&self, ix: LinkIx) -> f64 {
        let (from, to) = self.windows[ix.0 as usize];
        (to - from).as_years_f64()
    }

    /// Resolve a syslog-side key. Allocation-free: both strings are
    /// looked up in the interner and the map is keyed on the resulting
    /// id pair.
    pub fn by_interface(&self, host: &str, iface: &InterfaceName) -> Option<LinkIx> {
        self.by_interface_sym(host, iface).map(|(ix, _)| ix)
    }

    /// Resolve a syslog-side key, also returning the interned host
    /// symbol so callers can keep a shared handle to the hostname
    /// (via [`SymbolTable::shared`]) without cloning it.
    pub fn by_interface_sym(&self, host: &str, iface: &InterfaceName) -> Option<(LinkIx, Sym)> {
        let h = self.symbols.lookup(host)?;
        let i = self.symbols.lookup(iface.as_str())?;
        self.by_iface.get(&(h, i)).map(|&ix| (ix, h))
    }

    /// Resolve an IP-reachability-side key.
    pub fn by_subnet(&self, subnet: Subnet31) -> Option<LinkIx> {
        self.by_subnet.get(&subnet).copied()
    }

    /// Resolve an IS-reachability-side key: the links between two routers
    /// identified by system ID. More than one entry is a *multi-link
    /// adjacency* — unresolvable from IS reachability alone (§3.4).
    pub fn by_sysid_pair(&self, a: SystemId, b: SystemId) -> &[LinkIx] {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.by_sysid.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Hostname for a system ID (learned from hostname TLVs).
    pub fn hostname(&self, sysid: SystemId) -> Option<&str> {
        self.host_of_sysid
            .get(&sysid)
            .map(|&s| self.symbols.resolve(s))
    }

    /// The table's interner over every hostname and interface name it
    /// knows. Lets callers resolve or share [`Sym`]s handed out by
    /// [`LinkTable::by_interface_sym`].
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// All link indices.
    pub fn iter(&self) -> impl Iterator<Item = LinkIx> + '_ {
        (0..self.names.len() as u32).map(LinkIx)
    }

    /// Links whose state IS reachability can resolve (i.e. not part of a
    /// multi-link adjacency). The paper omits multi-link members, ~20% of
    /// physical links.
    pub fn is_resolvable(&self, ix: LinkIx) -> bool {
        self.resolvable[ix.0 as usize]
    }

    /// Number of multi-link router pairs.
    pub fn multi_link_pairs(&self) -> usize {
        self.by_hostpair.values().filter(|v| v.len() > 1).count()
    }

    /// The interned `(Sym, Sym)` key the cluster partitioner hashes for
    /// a link: the canonical (smaller-id-first) pair of its endpoint
    /// hostnames. Every member of a multi-link adjacency shares the same
    /// key, so parallel links — and the IS-reachability events that can
    /// only be resolved to the *pair* — always land on the same shard.
    /// Interning is deterministic per scenario, so the key (and therefore
    /// the shard assignment) is stable across processes.
    pub fn shard_key(&self, ix: LinkIx) -> (Sym, Sym) {
        self.pair_keys[ix.0 as usize]
    }
}

/// Build the standard `LinkTable` for a simulated scenario: render the
/// config archive from the topology, mine it, and attach the listener's
/// hostname map and the per-link windows.
///
/// # Examples
///
/// ```
/// use faultline_core::linktable::from_scenario;
/// use faultline_sim::scenario::{run, ScenarioParams};
///
/// let data = run(&ScenarioParams::tiny(3));
/// let table = from_scenario(&data);
/// assert_eq!(table.len(), data.topology.links().len());
///
/// // Every topology link resolves through its unique /31 subnet to the
/// // same canonical name the config archive records.
/// let link = &data.topology.links()[0];
/// let ix = table.by_subnet(link.subnet).expect("mined");
/// assert_eq!(table.name(ix), &data.topology.link_name(link.id));
/// ```
pub fn from_scenario(data: &faultline_sim::ScenarioData) -> LinkTable {
    let inventory = faultline_topology::config::mine_topology(&data.topology);
    // Windows are keyed by canonical name; build the lookup from the
    // topology's own names.
    let mut window_of: HashMap<String, (Timestamp, Timestamp)> = HashMap::new();
    for (i, w) in data.link_windows.iter().enumerate() {
        let name = data
            .topology
            .link_name(faultline_topology::link::LinkId(i as u32));
        window_of.insert(name.to_string(), (w.from, w.to));
    }
    let period_end = Timestamp::from_millis((data.period_days * 86_400_000.0) as u64);
    LinkTable::new(&inventory, &data.hostnames, |name| {
        window_of
            .get(&name.to_string())
            .copied()
            .unwrap_or((Timestamp::EPOCH, period_end))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_sim::scenario::{run, ScenarioParams};
    use faultline_topology::config::mine_topology;
    use faultline_topology::generator::CenicParams;

    fn table_for(seed: u64) -> (faultline_topology::Topology, LinkTable) {
        let topo = CenicParams::tiny(seed).generate();
        let inventory = mine_topology(&topo);
        let hostnames: HashMap<SystemId, String> = topo
            .routers()
            .iter()
            .map(|r| (r.system_id, r.hostname.clone()))
            .collect();
        let table = LinkTable::new(&inventory, &hostnames, |_| {
            (Timestamp::EPOCH, Timestamp::from_secs(86_400 * 365))
        });
        (topo, table)
    }

    #[test]
    fn covers_all_mined_links() {
        let (topo, table) = table_for(3);
        assert_eq!(table.len(), topo.links().len());
        assert!(!table.is_empty());
    }

    #[test]
    fn interface_resolution_matches_topology() {
        let (topo, table) = table_for(3);
        for l in topo.links() {
            for ep in [&l.a, &l.b] {
                let host = &topo.router(ep.router).hostname;
                let ix = table
                    .by_interface(host, &ep.interface)
                    .unwrap_or_else(|| panic!("unresolved {host}:{}", ep.interface));
                assert_eq!(table.name(ix), &topo.link_name(l.id));
            }
        }
    }

    #[test]
    fn subnet_resolution_matches_topology() {
        let (topo, table) = table_for(4);
        for l in topo.links() {
            let ix = table.by_subnet(l.subnet).expect("subnet resolvable");
            assert_eq!(table.name(ix), &topo.link_name(l.id));
        }
    }

    #[test]
    fn sysid_pair_resolution_and_multilink() {
        let (topo, table) = table_for(5);
        assert_eq!(table.multi_link_pairs(), topo.multi_link_pairs());
        for l in topo.links() {
            let sa = topo.router(l.a.router).system_id;
            let sb = topo.router(l.b.router).system_id;
            let links = table.by_sysid_pair(sa, sb);
            assert_eq!(
                links.len(),
                topo.links_between(l.a.router, l.b.router).len()
            );
        }
    }

    #[test]
    fn class_inferred_from_hostnames() {
        let (topo, table) = table_for(6);
        for l in topo.links() {
            let name = topo.link_name(l.id);
            let ix = table.by_subnet(l.subnet).unwrap();
            assert_eq!(table.class(ix), l.class, "misclassified {name}");
        }
    }

    #[test]
    fn resolvability_excludes_parallel_members() {
        let (topo, table) = table_for(7);
        let mut unresolvable = 0;
        for ix in table.iter() {
            if !table.is_resolvable(ix) {
                unresolvable += 1;
            }
        }
        let expected: usize = topo
            .links()
            .iter()
            .filter(|l| l.parallel_group.is_some())
            .count();
        assert_eq!(unresolvable, expected);
    }

    #[test]
    fn from_scenario_builds_consistent_table() {
        let data = run(&ScenarioParams::tiny(3));
        let table = from_scenario(&data);
        assert_eq!(table.len(), data.topology.links().len());
        // Windows must mirror the scenario's.
        for (i, w) in data.link_windows.iter().enumerate() {
            let name = data
                .topology
                .link_name(faultline_topology::link::LinkId(i as u32));
            let ix = table
                .iter()
                .find(|&ix| table.name(ix).to_string() == name.to_string())
                .unwrap();
            assert_eq!(table.window(ix), (w.from, w.to));
        }
    }

    #[test]
    fn unknown_keys_resolve_to_nothing() {
        let (_, table) = table_for(8);
        assert!(table
            .by_interface("nonexistent", &InterfaceName::gig(0))
            .is_none());
        assert!(table
            .by_sysid_pair(SystemId::from_index(9999), SystemId::from_index(9998))
            .is_empty());
    }
}
