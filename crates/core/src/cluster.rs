//! Sharded multi-collector runtime — many kernels, one answer.
//!
//! The paper analyzes one 299-link backbone in a single process; a
//! production deployment watches orders of magnitude more links than one
//! collector can ingest. Because every semantic stage of the pipeline is
//! strictly per-link (the [`crate::kernel`] never shares state between
//! links), the stream can be *partitioned by link* across N independent
//! worker shards, each running the ordinary streaming driver over its
//! substream, and the per-shard answers can be merged back into the
//! exact single-process answer. This module is that runtime, built as a
//! **dispatcher + N workers speaking a serializable protocol** over a
//! [`ShardTransport`] (see [`crate::transport`]):
//!
//! ```text
//!               ShardMsg over a ShardTransport
//!              ┌────────────────────────────────────────────┐
//!              │  ┌─ worker-0: StreamAnalysis ─ Flushed ─┐  │
//!  dispatcher ─┼──┼─ worker-1: StreamAnalysis ─ Flushed ─┼──┼─ merge
//!  (route +    │  └─ worker-N: StreamAnalysis ─ Flushed ─┘  │  (k-way, by the
//!   Events     │     thread + channels (InProcess)          │   collect keys)
//!   frames)    │     or pipes + frames (Subprocess)         │
//!              └────────────────────────────────────────────┘
//! ```
//!
//! - **Partitioner.** [`route_event`] resolves each event to its link
//!   exactly as the kernel's classify stage would, then hashes the
//!   link's interned `(Sym, Sym)` key ([`crate::linktable::LinkTable::shard_key`])
//!   through a jump consistent hash ([`shard_of_key`]). Jump hashing
//!   gives the resharding property the property tests pin: growing
//!   N → N+1 shards moves only the ~1/(N+1) of keys that land on the new
//!   shard, and every moved key moves *to* the new shard. Events that
//!   resolve to no link (unresolved hostnames, unknown prefixes) go to a
//!   deterministic fallback shard — they only increment counters, which
//!   sum shard-wise, so any deterministic placement preserves the merge.
//! - **Workers.** Each worker owns an unmodified [`crate::streaming::StreamAnalysis`]
//!   (or [`crate::recovery::DurableStream`] in the durable runtime) and interacts with
//!   the dispatcher *only* through [`crate::transport::ShardMsg`]
//!   frames: `Ready`, `Events`, `Flush`/`Flushed`, `Fatal`. A shard's
//!   substream preserves global time order, and a link's entire history
//!   lands on exactly one shard, so every per-link state machine sees
//!   byte-for-byte the history it would see in a single process. The
//!   default [`crate::transport::InProcessTransport`] runs workers as
//!   scoped threads behind bounded channels (messages move by value);
//!   [`run_cluster_subprocess`] runs the same protocol against
//!   `faultline-shard-worker` child processes over hashed stdio frames.
//! - **Aggregator.** [`merge_outputs`] rebuilds the global
//!   [`StreamOutput`] from the shard outputs *in worker-index order*:
//!   counter structs are field-wise sums (each offered event is counted
//!   by exactly one shard), event-level vectors are k-way merged on the
//!   same keys `Kernel::collect` uses with ties taken from the lowest
//!   worker index (ties only ever come from one shard, so this
//!   reproduces the single-process order exactly), and the match index
//!   pairs are re-based from shard-local to global failure positions.
//!   `tests/cluster_equivalence.rs` asserts the merged JSON is
//!   byte-identical to [`crate::analysis::Analysis::run`] for every
//!   tested shard count, seed, and chaos preset;
//!   `tests/cluster_process.rs` asserts the same across the subprocess
//!   transport.
//! - **Supervisor.** In the durable runtime ([`run_durable_cluster`])
//!   every shard journals and checkpoints under its own `shard-{i}/`
//!   directory. When a worker dies mid-run — a deterministic
//!   [`faultline_sim::chaos::ShardKill`] abort, or a real `SIGKILL` of a
//!   subprocess worker — the dispatcher observes the loss through the
//!   transport (a dead channel in-process, EOF on the pipe for a
//!   subprocess), respawns *that worker only*, recovers it through the
//!   ordinary [`crate::recovery::DurableStream::recover`] ladder, re-feeds the
//!   unconsumed tail of its substream, and the merged answer is still
//!   byte-identical; healthy shards never restart
//!   (`tests/cluster_recovery.rs`, `tests/cluster_process.rs`).
//! - **Live resharding.** [`run_reshard_cluster`] grows a running
//!   cluster N → N+1 at an event boundary: dispatch pauses, the lanes
//!   of exactly the links jump-hash reassigns are detached from their
//!   old workers ([`crate::transport::ShardMsg::ExportLanes`]), shipped
//!   as serialized lane snapshots
//!   ([`crate::transport::ShardMsg::LaneMigrate`]), attached by the new
//!   worker, and dispatch resumes at N+1 routing. Because every
//!   per-link derived state lives in its lane and moves whole, the
//!   merged output is byte-identical to a from-scratch N+1 run
//!   (`tests/cluster_reshard.rs`).

use crate::analysis::{self, AnalysisConfig};
use crate::error::{AnalysisError, RecoveryError, TransportError};
use crate::intern::Sym;
use crate::linktable::{self, LinkIx, LinkTable};
use crate::matching::FailureMatching;
use crate::observe::{
    self, DurabilityCounters, PipelineCounters, PipelineReport, ShardCounters, StreamingCounters,
    TransportCounters,
};
use crate::reconstruct::{Failure, Reconstruction};
use crate::recovery::{DurabilityPolicy, RecoveryReport};
use crate::sanitize::SanitizeReport;
use crate::streaming::{LaneMigration, StreamEvent, StreamOutput};
use crate::transitions::{IsisMergeStats, SyslogResolveStats};
use crate::transport::{
    DurableSpec, InProcessTransport, ReadyMsg, ScenarioSpec, ShardMsg, ShardTransport,
    SubprocessTransport, WorkerSpec,
};
use faultline_isis::listener::{ReachabilityKind, TransitionSubject};
use faultline_sim::chaos::ShardKill;
use faultline_sim::ScenarioData;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The partition key used for events that resolve to no link (unknown
/// hostnames, foreign prefixes, unparseable subjects). They only
/// increment resolution counters — shard-wise sums — so any
/// deterministic placement is merge-equivalent; pinning one keeps the
/// per-shard event counts reproducible.
pub const UNROUTED_KEY: (Sym, Sym) = (Sym(u32::MAX), Sym(u32::MAX));

/// FNV-1a over the two interned ids, one round per word (the ids are
/// already dense and well-distributed).
fn key_hash(key: (Sym, Sym)) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    h = (h ^ u64::from(key.0 .0)).wrapping_mul(PRIME);
    h = (h ^ u64::from(key.1 .0)).wrapping_mul(PRIME);
    h
}

/// Jump consistent hash (Lamping & Veach): maps a 64-bit key onto
/// `0..buckets` such that growing to `buckets + 1` reassigns only the
/// keys that move to the new bucket — expected `1/(buckets + 1)` of
/// them — and reassigns them *to* the new bucket.
fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    debug_assert!(buckets >= 1);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        let r = f64::from(1u32 << 31) / (((key >> 33) + 1) as f64);
        j = (((b + 1) as f64) * r) as i64;
    }
    b as u32
}

/// The shard an interned `(Sym, Sym)` link key lives on, for a cluster
/// of `shards` workers (`shards` is clamped to at least 1).
pub fn shard_of_key(key: (Sym, Sym), shards: u32) -> u32 {
    jump_hash(key_hash(key), shards.max(1))
}

/// The shard a link lives on: consistent hash of its canonical endpoint
/// host pair. Every member of a multi-link adjacency shares the pair, so
/// parallel links are always co-located — the property that lets
/// IS-reachability events, which resolve only to the *pair*, route
/// without knowing which member they belong to.
pub fn shard_of_link(table: &LinkTable, link: LinkIx, shards: u32) -> u32 {
    shard_of_key(table.shard_key(link), shards)
}

/// The link an event would resolve to, mirroring the kernel's classify
/// stage read-only: syslog by `(host, interface)`, IS reachability by
/// system-ID pair (any member — they co-locate), IP reachability by /31
/// subnet.
fn link_of_event(table: &LinkTable, event: &StreamEvent) -> Option<LinkIx> {
    match event {
        StreamEvent::Syslog(m) => table.by_interface(&m.event.host, &m.event.interface),
        StreamEvent::Isis(t) => match t.kind {
            ReachabilityKind::IsReach => match &t.subject {
                TransitionSubject::Adjacency { neighbor } => {
                    table.by_sysid_pair(t.source, *neighbor).first().copied()
                }
                _ => None,
            },
            ReachabilityKind::IpReach => t.subject.as_subnet().and_then(|s| table.by_subnet(s)),
        },
    }
}

/// The shard one event is routed to. Deterministic in the event and the
/// (deterministically interned) table, so every dispatcher in a cluster
/// agrees without coordination.
pub fn route_event(table: &LinkTable, event: &StreamEvent, shards: u32) -> u32 {
    match link_of_event(table, event) {
        Some(link) => shard_of_link(table, link, shards),
        None => shard_of_key(UNROUTED_KEY, shards),
    }
}

/// Split an event stream into per-shard substreams, preserving order
/// within each (a subsequence of an in-order stream is in order, so no
/// shard ever sees a late event the single process would not have).
pub fn partition_events(
    table: &LinkTable,
    events: &[StreamEvent],
    shards: u32,
) -> Vec<Vec<StreamEvent>> {
    let n = shards.max(1);
    let mut routed: Vec<Vec<StreamEvent>> = (0..n).map(|_| Vec::new()).collect();
    for event in events {
        routed[route_event(table, event, n) as usize].push(event.clone());
    }
    routed
}

/// Partition a stream directly into per-shard queues of `chunk`-sized
/// [`ShardMsg::Events`] batches — one clone per event, moved (never
/// re-serialized or re-copied) through the in-process transport.
fn partition_batches(
    table: &LinkTable,
    events: &[StreamEvent],
    shards: u32,
    chunk: usize,
) -> Vec<VecDeque<Vec<StreamEvent>>> {
    let n = shards.max(1);
    let chunk = chunk.max(1);
    let cap = chunk.min(events.len());
    // The per-event loop touches only a flat `Vec` per shard (one bounds
    // check + push); full batches rotate into the queue on the chunk
    // boundary, keeping the partitioner as cheap as the pre-transport
    // flat `partition_events` despite producing ready-to-send batches.
    let mut queues: Vec<VecDeque<Vec<StreamEvent>>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut current: Vec<Vec<StreamEvent>> = (0..n).map(|_| Vec::with_capacity(cap)).collect();
    for event in events {
        let shard = route_event(table, event, n) as usize;
        let batch = &mut current[shard];
        batch.push(event.clone());
        if batch.len() >= chunk {
            let full = std::mem::replace(batch, Vec::with_capacity(cap));
            queues[shard].push_back(full);
        }
    }
    for (shard, batch) in current.into_iter().enumerate() {
        if !batch.is_empty() {
            queues[shard].push_back(batch);
        }
    }
    queues
}

fn batch_counts(batches: &[VecDeque<Vec<StreamEvent>>]) -> Vec<u64> {
    batches
        .iter()
        .map(|q| q.iter().map(|b| b.len() as u64).sum())
        .collect()
}

fn add_resolve(into: &mut SyslogResolveStats, from: &SyslogResolveStats) {
    into.isis_resolved += from.isis_resolved;
    into.physical_resolved += from.physical_resolved;
    into.lineproto_skipped += from.lineproto_skipped;
    into.unresolved += from.unresolved;
}

fn add_merge_stats(into: &mut IsisMergeStats, from: &IsisMergeStats) {
    into.raw += from.raw;
    into.unresolvable_multilink += from.unresolvable_multilink;
    into.unknown += from.unknown;
    into.inconsistent += from.inconsistent;
    into.emitted += from.emitted;
}

fn add_sanitize(into: &mut SanitizeReport, from: &SanitizeReport) {
    into.removed_offline += from.removed_offline;
    into.removed_offline_ms += from.removed_offline_ms;
    into.long_checked += from.long_checked;
    into.long_removed += from.long_removed;
    into.long_removed_ms += from.long_removed_ms;
}

/// K-way merge of per-shard vectors that each arrive already ordered by
/// `key` (the collect-stage invariant, asserted in debug builds rather
/// than re-established with a sort). Ties take the lowest worker index —
/// for outputs in worker-index order this is exactly the
/// concatenate-then-stable-sort result the aggregator has always
/// produced, in O(total × shards) without disturbing a single
/// already-ordered element.
fn merge_sorted<T: Clone, K: Ord>(
    shards: &[StreamOutput],
    side: impl Fn(&StreamOutput) -> &[T],
    key: impl Fn(&T) -> K,
) -> Vec<T> {
    for out in shards {
        debug_assert!(
            side(out).windows(2).all(|w| key(&w[0]) <= key(&w[1])),
            "shard outputs must arrive internally ordered (worker-index order from the transport)"
        );
    }
    let total: usize = shards.iter().map(|o| side(o).len()).sum();
    let mut cursors = vec![0usize; shards.len()];
    let mut merged = Vec::with_capacity(total);
    while merged.len() < total {
        let mut best: Option<usize> = None;
        for (s, out) in shards.iter().enumerate() {
            let list = side(out);
            if cursors[s] >= list.len() {
                continue;
            }
            // Strict `<` keeps ties on the lowest worker index.
            let better = match best {
                None => true,
                Some(b) => key(&list[cursors[s]]) < key(&side(&shards[b])[cursors[b]]),
            };
            if better {
                best = Some(s);
            }
        }
        let s = best.expect("cursor accounting");
        merged.push(side(&shards[s])[cursors[s]].clone());
        cursors[s] += 1;
    }
    merged
}

/// Build the per-shard → global failure-index remap for one side of the
/// matching: a k-way merge on the `(link, start)` collect key (each
/// shard's list arrives ordered; ties cannot span shards because a link
/// never does). Returns the globally ordered failures plus, per shard,
/// the global position of each shard-local index.
fn order_failures(
    shards: &[StreamOutput],
    side: fn(&StreamOutput) -> &[Failure],
) -> (Vec<Failure>, Vec<Vec<usize>>) {
    for out in shards {
        debug_assert!(
            side(out)
                .windows(2)
                .all(|w| (w[0].link, w[0].start) <= (w[1].link, w[1].start)),
            "shard failure lists must arrive internally ordered"
        );
    }
    let total: usize = shards.iter().map(|o| side(o).len()).sum();
    let mut cursors = vec![0usize; shards.len()];
    let mut remap: Vec<Vec<usize>> = shards.iter().map(|o| vec![0; side(o).len()]).collect();
    let mut ordered = Vec::with_capacity(total);
    while ordered.len() < total {
        let mut best: Option<usize> = None;
        for (s, out) in shards.iter().enumerate() {
            let list = side(out);
            if cursors[s] >= list.len() {
                continue;
            }
            let f = &list[cursors[s]];
            let better = match best {
                None => true,
                Some(b) => {
                    let g = &side(&shards[b])[cursors[b]];
                    (f.link, f.start) < (g.link, g.start)
                }
            };
            if better {
                best = Some(s);
            }
        }
        let s = best.expect("cursor accounting");
        let i = cursors[s];
        remap[s][i] = ordered.len();
        ordered.push(side(&shards[s])[i]);
        cursors[s] += 1;
    }
    (ordered, remap)
}

/// Deterministically merge shard [`StreamOutput`]s — **in worker-index
/// order, as the transport collects them** — into the single global
/// output. For shard outputs produced by [`partition_events`] substreams
/// of one in-order stream, the result serializes byte-identical to the
/// single-process [`crate::analysis::Analysis::run`] answer — the
/// differential contract `tests/cluster_equivalence.rs` pins. Each
/// shard's vectors already carry the collect-stage order (a debug
/// assertion, not a re-sort); the merge is k-way with ties to the lowest
/// worker index. See the module docs for why each field merges the way
/// it does.
pub fn merge_outputs(shards: Vec<StreamOutput>) -> StreamOutput {
    let mut resolve_stats = SyslogResolveStats::default();
    let mut is_stats = IsisMergeStats::default();
    let mut ip_stats = IsisMergeStats::default();
    let mut isis_recon = Reconstruction::default();
    let mut syslog_recon = Reconstruction::default();
    let mut isis_sanitize = SanitizeReport::default();
    let mut syslog_sanitize = SanitizeReport::default();
    let mut syslog_ingested = 0u64;
    for out in &shards {
        add_resolve(&mut resolve_stats, &out.resolve_stats);
        add_merge_stats(&mut is_stats, &out.is_stats);
        add_merge_stats(&mut ip_stats, &out.ip_stats);
        add_sanitize(&mut isis_sanitize, &out.isis_sanitize);
        add_sanitize(&mut syslog_sanitize, &out.syslog_sanitize);
        isis_recon.unterminated += out.isis_recon.unterminated;
        isis_recon.boundary_ups += out.isis_recon.boundary_ups;
        syslog_recon.unterminated += out.syslog_recon.unterminated;
        syslog_recon.boundary_ups += out.syslog_recon.boundary_ups;
        syslog_ingested += out.counters.syslog_ingested;
    }
    // Event-level vectors: k-way merges on the collect-stage keys. Every
    // `(time, link)` tie group lives on a single shard (the link's
    // shard), so lowest-worker-index tie-breaking reproduces the
    // single-process order.
    let messages = merge_sorted(&shards, |o| &o.messages, |m| (m.at, m.link));
    let is_transitions = merge_sorted(&shards, |o| &o.is_transitions, |t| (t.at, t.link));
    let ip_transitions = merge_sorted(&shards, |o| &o.ip_transitions, |t| (t.at, t.link));
    let syslog_transitions = merge_sorted(&shards, |o| &o.syslog_transitions, |t| (t.at, t.link));
    isis_recon.failures = merge_sorted(&shards, |o| &o.isis_recon.failures, |f| (f.link, f.start));
    isis_recon.ambiguous =
        merge_sorted(&shards, |o| &o.isis_recon.ambiguous, |a| (a.link, a.first));
    syslog_recon.failures =
        merge_sorted(&shards, |o| &o.syslog_recon.failures, |f| (f.link, f.start));
    syslog_recon.ambiguous = merge_sorted(
        &shards,
        |o| &o.syslog_recon.ambiguous,
        |a| (a.link, a.first),
    );

    // Failure lists + match pairs: order globally, then re-base every
    // shard-local index pair to its global position.
    let (syslog_failures, left_remap) = order_failures(&shards, |o| &o.syslog_failures);
    let (isis_failures, right_remap) = order_failures(&shards, |o| &o.isis_failures);
    let mut matched: Vec<(usize, usize)> = Vec::new();
    let mut partial: Vec<(usize, usize)> = Vec::new();
    for (s, out) in shards.iter().enumerate() {
        for &(i, j) in &out.matching.matched {
            matched.push((left_remap[s][i], right_remap[s][j]));
        }
        for &(i, j) in &out.matching.partial {
            partial.push((left_remap[s][i], right_remap[s][j]));
        }
    }
    matched.sort_by_key(|&(i, _)| i);
    partial.sort_by_key(|&(i, _)| i);
    let mut left_used = vec![false; syslog_failures.len()];
    let mut right_used = vec![false; isis_failures.len()];
    for &(i, j) in matched.iter().chain(partial.iter()) {
        left_used[i] = true;
        right_used[j] = true;
    }
    let matching = FailureMatching {
        matched,
        partial,
        left_only: (0..left_used.len()).filter(|&i| !left_used[i]).collect(),
        right_only: (0..right_used.len()).filter(|&j| !right_used[j]).collect(),
    };

    // Headline counters: recomputed from the merged structures with the
    // exact formulas `Kernel::collect` uses.
    let reconstructed = (isis_recon.failures.len() + syslog_recon.failures.len()) as u64;
    let survived = (isis_failures.len() + syslog_failures.len()) as u64;
    let counters = PipelineCounters {
        syslog_ingested,
        isis_ingested: is_stats.raw + ip_stats.raw,
        transitions_derived: (is_transitions.len()
            + ip_transitions.len()
            + syslog_transitions.len()) as u64,
        failures_reconstructed: reconstructed,
        failures_after_sanitize: survived,
        sanitize_dropped: reconstructed - survived,
        failures_matched: matching.matched.len() as u64,
        ambiguous_periods: (isis_recon.ambiguous.len() + syslog_recon.ambiguous.len()) as u64,
    };

    StreamOutput {
        messages,
        resolve_stats,
        is_transitions,
        is_stats,
        ip_transitions,
        ip_stats,
        syslog_transitions,
        isis_recon,
        syslog_recon,
        isis_failures,
        syslog_failures,
        isis_sanitize,
        syslog_sanitize,
        matching,
        counters,
    }
}

/// How a sharded cluster run is shaped.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker shards (clamped to at least 1).
    pub shards: u32,
    /// The per-shard analysis configuration — identical on every shard,
    /// exactly as the single process would run it.
    pub analysis: AnalysisConfig,
    /// Micro-batch size of each [`ShardMsg::Events`] frame the
    /// dispatcher sends.
    pub chunk: usize,
}

impl ClusterConfig {
    /// A cluster of `shards` workers with the default analysis
    /// configuration and micro-batch size.
    pub fn new(shards: u32) -> Self {
        ClusterConfig {
            shards,
            analysis: AnalysisConfig::default(),
            chunk: 2048,
        }
    }
}

/// What a cluster run produces: the merged (single-process-identical)
/// output, the cluster-level report, and each shard's own report.
pub struct ClusterResult {
    /// The merged derived surface — byte-identical to the single-process
    /// answer on the same stream.
    pub output: StreamOutput,
    /// Cluster-level accounting: dispatch/shard/merge stages, merged
    /// headline counters, [`ShardCounters`] in
    /// [`PipelineReport::cluster`], and the transport's frame/byte
    /// ledger in [`PipelineReport::transport`].
    pub report: PipelineReport,
    /// Every shard's own [`PipelineReport`], in worker-index order.
    pub shard_reports: Vec<PipelineReport>,
}

/// Wall-clock attribution for [`assemble_result`].
struct ClusterWalls {
    dispatch: std::time::Duration,
    shard_ingest: std::time::Duration,
    merge: std::time::Duration,
    total: std::time::Duration,
}

/// Fold shard outputs + reports into a [`ClusterResult`] (the merge has
/// already run; this builds the accounting around it).
#[allow(clippy::too_many_arguments)]
fn assemble_result(
    output: StreamOutput,
    shard_reports: Vec<PipelineReport>,
    events_per_shard: Vec<u64>,
    links_per_shard: Vec<u64>,
    walls: ClusterWalls,
    recovery_events: u64,
    durability: Option<DurabilityCounters>,
    transport: Option<TransportCounters>,
) -> ClusterResult {
    let shards = events_per_shard.len() as u32;
    let total_events: u64 = events_per_shard.iter().sum();
    let max_shard_events = events_per_shard.iter().copied().max().unwrap_or(0);
    let min_shard_events = events_per_shard.iter().copied().min().unwrap_or(0);
    let mean = total_events as f64 / shards.max(1) as f64;
    let skew = if mean > 0.0 {
        max_shard_events as f64 / mean
    } else {
        0.0
    };

    let mut streaming = StreamingCounters::default();
    let mut robustness = observe::RobustnessCounters::default();
    for (i, r) in shard_reports.iter().enumerate() {
        if let Some(s) = &r.streaming {
            streaming.events_ingested += s.events_ingested;
            streaming.syslog_events += s.syslog_events;
            streaming.isis_events += s.isis_events;
            streaming.batches += s.batches;
            streaming.late_events += s.late_events;
            streaming.segments_closed += s.segments_closed;
            streaming.open_state_high_water =
                streaming.open_state_high_water.max(s.open_state_high_water);
            streaming.arena_events_high_water = streaming
                .arena_events_high_water
                .max(s.arena_events_high_water);
            streaming.watermark_lag_max_millis = streaming
                .watermark_lag_max_millis
                .max(s.watermark_lag_max_millis);
            streaming.finalized_at_flush += s.finalized_at_flush;
            streaming.flap_episodes += s.flap_episodes;
        }
        if i == 0 {
            // The parse-side baseline (raw/malformed/irrelevant lines)
            // describes the scenario, not the shard — every shard
            // reports the same numbers, so take them once.
            robustness = r.robustness;
            robustness.quarantined_syslog = 0;
            robustness.quarantined_isis = 0;
        }
        robustness.quarantined_syslog += r.robustness.quarantined_syslog;
        robustness.quarantined_isis += r.robustness.quarantined_isis;
    }
    let total_secs = walls.total.as_secs_f64();
    streaming.events_per_sec = if total_secs > 0.0 {
        streaming.events_ingested as f64 / total_secs
    } else {
        0.0
    };

    let threads = shard_reports.first().map(|r| r.threads).unwrap_or(1);
    let mut report = PipelineReport::new(threads);
    report.record_stage("dispatch", total_events, total_events, walls.dispatch);
    report.record_stage(
        "shard_ingest",
        total_events,
        output.counters.transitions_derived,
        walls.shard_ingest,
    );
    report.record_stage(
        "merge",
        output.counters.failures_after_sanitize,
        output.counters.failures_matched,
        walls.merge,
    );
    report.counters = output.counters;
    report.streaming = Some(streaming);
    report.durability = durability;
    report.robustness = robustness;
    report.cluster = Some(ShardCounters {
        shards,
        events_per_shard,
        links_per_shard,
        max_shard_events,
        min_shard_events,
        skew,
        recovery_events,
        merge_micros: walls.merge.as_micros() as u64,
    });
    report.transport = transport;
    report.total_micros = walls.total.as_micros() as u64;
    observe::narrate(|| {
        format!(
            "cluster done: {shards} shards, {total_events} events, skew {skew:.2}, {recovery_events} recoveries"
        )
    });
    ClusterResult {
        output,
        report,
        shard_reports,
    }
}

/// Links assigned to each shard by the partitioner.
fn links_per_shard(table: &LinkTable, shards: u32) -> Vec<u64> {
    let mut counts = vec![0u64; shards.max(1) as usize];
    for ix in table.iter() {
        counts[shard_of_link(table, ix, shards) as usize] += 1;
    }
    counts
}

// ---------------------------------------------------------------------------
// Transport-generic drivers
// ---------------------------------------------------------------------------

/// Receive a worker's next message and require it to be [`ShardMsg::Ready`].
fn expect_ready<T: ShardTransport + ?Sized>(
    transport: &mut T,
    worker: usize,
) -> Result<ReadyMsg, TransportError> {
    match transport.recv(worker)? {
        ShardMsg::Ready(ready) => Ok(ready),
        ShardMsg::Fatal { detail } => Err(TransportError::WorkerReported { worker, detail }),
        other => Err(TransportError::Protocol {
            worker,
            detail: format!("expected ready, got {}", other.kind()),
        }),
    }
}

/// Receive a worker's next message and require it to be [`ShardMsg::Flushed`].
fn expect_flushed<T: ShardTransport + ?Sized>(
    transport: &mut T,
    worker: usize,
) -> Result<(StreamOutput, PipelineReport), TransportError> {
    match transport.recv(worker)? {
        ShardMsg::Flushed(out) => Ok((out.output, out.report)),
        ShardMsg::Fatal { detail } => Err(TransportError::WorkerReported { worker, detail }),
        other => Err(TransportError::Protocol {
            worker,
            detail: format!("expected flushed, got {}", other.kind()),
        }),
    }
}

/// Round-robin the queued [`ShardMsg::Events`] batches out to the
/// workers; bounded transport channels provide the backpressure.
fn feed_round_robin<T: ShardTransport + ?Sized>(
    transport: &mut T,
    batches: &mut [VecDeque<Vec<StreamEvent>>],
) -> Result<(), TransportError> {
    loop {
        let mut any = false;
        for (worker, queue) in batches.iter_mut().enumerate() {
            if let Some(batch) = queue.pop_front() {
                any = true;
                transport.send(worker, ShardMsg::Events(batch))?;
            }
        }
        if !any {
            return Ok(());
        }
    }
}

/// The plain (non-durable) dispatcher: Ready barrier, then a single
/// fused pass that routes each event and sends every batch the moment
/// it fills — the batch the worker ingests is the one the dispatcher
/// just wrote, still cache-warm, and on multi-core hosts routing
/// overlaps worker ingest instead of running as a separate
/// materialize-everything pass. Flush and collect in worker-index
/// order. Any worker loss is an error — a non-durable worker has no
/// state to recover. Returns outputs, reports, and the per-shard event
/// counts the fused pass tallied.
#[allow(clippy::type_complexity)]
fn drive_stream_feed<T: ShardTransport + ?Sized>(
    transport: &mut T,
    table: &LinkTable,
    events: &[StreamEvent],
    chunk: usize,
) -> Result<(Vec<StreamOutput>, Vec<PipelineReport>, Vec<u64>), TransportError> {
    let workers = transport.workers();
    let n = workers as u32;
    let chunk = chunk.max(1);
    let cap = chunk.min(events.len());
    for worker in 0..workers {
        expect_ready(transport, worker)?;
    }
    // Hash every *link* to its shard once up front — the per-event loop
    // then routes with one table probe plus an array index instead of
    // re-running FNV + jump-hash 170k+ times for a 300-link keyspace.
    let assign: Vec<u32> = table.iter().map(|ix| shard_of_link(table, ix, n)).collect();
    let unrouted = shard_of_key(UNROUTED_KEY, n);
    let mut current: Vec<Vec<StreamEvent>> =
        (0..workers).map(|_| Vec::with_capacity(cap)).collect();
    let mut counts = vec![0u64; workers];
    for event in events {
        let shard = match link_of_event(table, event) {
            Some(link) => assign[link.0 as usize],
            None => unrouted,
        } as usize;
        debug_assert_eq!(shard as u32, route_event(table, event, n));
        counts[shard] += 1;
        let batch = &mut current[shard];
        batch.push(event.clone());
        if batch.len() >= chunk {
            let full = std::mem::replace(batch, Vec::with_capacity(cap));
            transport.send(shard, ShardMsg::Events(full))?;
        }
    }
    for (shard, batch) in current.into_iter().enumerate() {
        if !batch.is_empty() {
            transport.send(shard, ShardMsg::Events(batch))?;
        }
    }
    for worker in 0..workers {
        transport.send(worker, ShardMsg::Flush)?;
    }
    let mut outputs = Vec::with_capacity(workers);
    let mut reports = Vec::with_capacity(workers);
    for worker in 0..workers {
        let (output, report) = expect_flushed(transport, worker)?;
        outputs.push(output);
        reports.push(report);
    }
    Ok((outputs, reports, counts))
}

/// The durable dispatcher: like [`drive_feed_flush`], but worker losses
/// during feed/flush/collect are *expected* (deterministic aborts and
/// real SIGKILLs both surface as a dead transport endpoint). Dead
/// workers are respawned with their recovery spec, resumed from the
/// `resumed_at_seq` their recovery ladder reports, re-fed only the
/// unconsumed tail of their substream, and flushed; a second loss of
/// the same worker propagates. `hard_kills` makes the *dispatcher*
/// kill the named worker at the first send boundary at or past
/// `after_events` — a genuine SIGKILL for subprocess transports.
#[allow(clippy::type_complexity)]
fn drive_durable<T: ShardTransport + ?Sized>(
    transport: &mut T,
    routed: &[Vec<StreamEvent>],
    chunk: usize,
    hard_kills: &[ShardKill],
    respawn_spec: &dyn Fn(u32) -> WorkerSpec,
) -> Result<(Vec<StreamOutput>, Vec<PipelineReport>, Vec<ShardRecovery>), TransportError> {
    let workers = transport.workers();
    debug_assert_eq!(workers, routed.len());
    let chunk = chunk.max(1);
    for worker in 0..workers {
        expect_ready(transport, worker)?;
    }

    let mut dead = vec![false; workers];
    let mut pos = vec![0usize; workers];
    let mut hard: Vec<Option<u64>> = (0..workers)
        .map(|w| {
            hard_kills
                .iter()
                .find(|k| k.shard == w as u32)
                .map(|k| k.after_events)
        })
        .collect();
    loop {
        let mut any = false;
        for w in 0..workers {
            if dead[w] {
                continue;
            }
            if let Some(at) = hard[w] {
                if pos[w] as u64 >= at {
                    transport.kill(w)?;
                    observe::narrate(|| {
                        format!("cluster: shard {w} hard-killed after {at} events")
                    });
                    dead[w] = true;
                    hard[w] = None;
                    continue;
                }
            }
            if pos[w] >= routed[w].len() {
                continue;
            }
            any = true;
            let mut end = (pos[w] + chunk).min(routed[w].len());
            if let Some(at) = hard[w] {
                // Land the kill exactly on its event boundary.
                end = end.min(at as usize);
            }
            match transport.send(w, ShardMsg::Events(routed[w][pos[w]..end].to_vec())) {
                Ok(()) => pos[w] = end,
                Err(e) if e.is_worker_loss() => dead[w] = true,
                Err(e) => return Err(e),
            }
        }
        if !any {
            break;
        }
    }

    let mut outputs: Vec<Option<StreamOutput>> = (0..workers).map(|_| None).collect();
    let mut reports: Vec<Option<PipelineReport>> = (0..workers).map(|_| None).collect();
    for (w, is_dead) in dead.iter_mut().enumerate() {
        if *is_dead {
            continue;
        }
        match transport.send(w, ShardMsg::Flush) {
            Ok(()) => {}
            Err(e) if e.is_worker_loss() => *is_dead = true,
            Err(e) => return Err(e),
        }
    }
    for w in 0..workers {
        if dead[w] {
            continue;
        }
        match expect_flushed(transport, w) {
            Ok((output, report)) => {
                outputs[w] = Some(output);
                reports[w] = Some(report);
            }
            Err(e) if e.is_worker_loss() => dead[w] = true,
            Err(e) => return Err(e),
        }
    }

    // Supervisor pass: every dead worker is respawned against its own
    // shard-{i}/ directory and recovered through the ordinary ladder;
    // healthy workers are never touched.
    let mut recoveries = Vec::new();
    for w in 0..workers {
        if !dead[w] {
            continue;
        }
        transport.respawn(w, respawn_spec(w as u32))?;
        let ready = expect_ready(transport, w)?;
        let report = ready.recovery.ok_or_else(|| TransportError::Protocol {
            worker: w,
            detail: "respawned worker reported no recovery".to_string(),
        })?;
        observe::narrate(|| {
            format!(
                "cluster: supervisor recovered shard {w} at seq {}",
                report.resumed_at_seq
            )
        });
        let mut p = (report.resumed_at_seq as usize).min(routed[w].len());
        while p < routed[w].len() {
            let end = (p + chunk).min(routed[w].len());
            transport.send(w, ShardMsg::Events(routed[w][p..end].to_vec()))?;
            p = end;
        }
        transport.send(w, ShardMsg::Flush)?;
        let (output, shard_report) = expect_flushed(transport, w)?;
        outputs[w] = Some(output);
        reports[w] = Some(shard_report);
        recoveries.push(ShardRecovery {
            shard: w as u32,
            report,
        });
    }

    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("every dead shard recovered above"))
        .collect();
    let reports = reports
        .into_iter()
        .map(|r| r.expect("every dead shard recovered above"))
        .collect();
    Ok((outputs, reports, recoveries))
}

/// The live-reshard dispatcher: feed the pre-split stream at N-shard
/// routing, pause at the boundary, [`ShardTransport::grow`] worker N,
/// detach exactly the lanes jump-hash reassigns from their old workers
/// and attach them to the new one, then resume at (N+1)-shard routing.
/// Returns the flushed outputs plus the migration ledger.
#[allow(clippy::type_complexity)]
fn drive_reshard<T: ShardTransport + ?Sized>(
    transport: &mut T,
    table: &LinkTable,
    pre: Vec<VecDeque<Vec<StreamEvent>>>,
    post: Vec<VecDeque<Vec<StreamEvent>>>,
    grow_spec: WorkerSpec,
) -> Result<
    (
        Vec<StreamOutput>,
        Vec<PipelineReport>,
        Vec<LinkIx>,
        u64,
        u64,
    ),
    TransportError,
> {
    let old_workers = transport.workers();
    debug_assert_eq!(old_workers, pre.len());
    debug_assert_eq!(old_workers + 1, post.len());
    for worker in 0..old_workers {
        expect_ready(transport, worker)?;
    }
    let mut pre = pre;
    feed_round_robin(transport, &mut pre)?;

    // --- the pause: grow, migrate exactly the reassigned lanes ---
    let t_migrate = Instant::now();
    let new_worker = transport.grow(grow_spec)?;
    expect_ready(transport, new_worker)?;
    let before_shards = old_workers as u32;
    let after_shards = before_shards + 1;
    let mut moved_links: Vec<LinkIx> = Vec::new();
    let mut moving: Vec<Vec<LinkIx>> = (0..old_workers).map(|_| Vec::new()).collect();
    for ix in table.iter() {
        let before = shard_of_link(table, ix, before_shards);
        let after = shard_of_link(table, ix, after_shards);
        if before != after {
            debug_assert_eq!(
                after as usize, new_worker,
                "jump hash moves keys only to the new shard"
            );
            moving[before as usize].push(ix);
            moved_links.push(ix);
        }
    }
    // ExportLanes rides the same FIFO command stream as the Events
    // before it, and its LaneMigrate reply is the synchronization point:
    // once it arrives, that worker has consumed every pre-split event.
    let mut migration = LaneMigration::default();
    for (w, links) in moving.iter().enumerate() {
        if links.is_empty() {
            continue;
        }
        transport.send(w, ShardMsg::ExportLanes(links.clone()))?;
        match transport.recv(w)? {
            ShardMsg::LaneMigrate(part) => migration.merge(part),
            ShardMsg::Fatal { detail } => {
                return Err(TransportError::WorkerReported { worker: w, detail })
            }
            other => {
                return Err(TransportError::Protocol {
                    worker: w,
                    detail: format!("expected lane_migrate, got {}", other.kind()),
                })
            }
        }
    }
    // Links whose lane never opened (zero events so far) are absent from
    // the migration — a fresh lane on the new worker is state-free and
    // byte-equivalent.
    let lanes_moved = migration.lane_count() as u64;
    transport.send(new_worker, ShardMsg::LaneMigrate(migration))?;
    let ack = expect_ready(transport, new_worker)?;
    if ack.lanes_imported != lanes_moved {
        return Err(TransportError::Protocol {
            worker: new_worker,
            detail: format!(
                "migrated {lanes_moved} lanes but the new worker imported {}",
                ack.lanes_imported
            ),
        });
    }
    let migration_micros = t_migrate.elapsed().as_micros() as u64;
    transport.counters_mut().lanes_migrated += lanes_moved;
    transport.counters_mut().migration_micros += migration_micros;
    observe::narrate(|| {
        format!(
            "cluster: resharded {before_shards} -> {after_shards}, {} links / {lanes_moved} live lanes moved in {migration_micros} us",
            moved_links.len()
        )
    });

    // --- resume dispatch at N+1 routing ---
    let mut post = post;
    feed_round_robin(transport, &mut post)?;
    let workers = transport.workers();
    for worker in 0..workers {
        transport.send(worker, ShardMsg::Flush)?;
    }
    let mut outputs = Vec::with_capacity(workers);
    let mut reports = Vec::with_capacity(workers);
    for worker in 0..workers {
        let (output, report) = expect_flushed(transport, worker)?;
        outputs.push(output);
        reports.push(report);
    }
    Ok((outputs, reports, moved_links, lanes_moved, migration_micros))
}

// ---------------------------------------------------------------------------
// In-process entry points
// ---------------------------------------------------------------------------

fn fresh_specs(shards: u32, cfg: &ClusterConfig, scenario: &ScenarioSpec) -> Vec<WorkerSpec> {
    (0..shards)
        .map(|shard| WorkerSpec::new(shard, shards, cfg.analysis.clone(), scenario.clone()))
        .collect()
}

/// Run the in-memory sharded cluster: partition `events` by link across
/// `cfg.shards` workers, run each shard as an independent
/// [`crate::streaming::StreamAnalysis`] behind the in-process transport,
/// and merge the shard outputs into the single-process answer.
///
/// # Examples
///
/// ```
/// use faultline_core::cluster::{run_cluster, ClusterConfig};
/// use faultline_core::{scenario_event_stream, Analysis, AnalysisConfig};
/// use faultline_sim::scenario::{run, ScenarioParams};
///
/// let data = run(&ScenarioParams::tiny(42));
/// let events = scenario_event_stream(&data);
/// let clustered = run_cluster(&data, &events, &ClusterConfig::new(4)).unwrap();
/// let batch = Analysis::run(&data, AnalysisConfig::default());
/// assert_eq!(
///     serde_json::to_string(&clustered.output).unwrap(),
///     serde_json::to_string(&batch.output).unwrap(),
/// );
/// ```
pub fn run_cluster(
    data: &ScenarioData,
    events: &[StreamEvent],
    cfg: &ClusterConfig,
) -> Result<ClusterResult, AnalysisError> {
    let started = Instant::now();
    // Validate configuration and input ordering once; shard workers then
    // construct engines infallibly with the same inputs.
    analysis::validate_inputs(data, &cfg.analysis)?;
    let shards = cfg.shards.max(1);

    // The dispatch stage covers the routing side inputs (link table +
    // per-shard link assignment); the per-event route+send work is
    // fused into the feed inside `drive_stream_feed`, so it lands in
    // the shard_ingest wall it actually overlaps with.
    let t_dispatch = Instant::now();
    let table = linktable::from_scenario(data);
    let per_shard_links = links_per_shard(&table, shards);
    let dispatch_wall = t_dispatch.elapsed();

    let t_shards = Instant::now();
    let specs = fresh_specs(shards, cfg, &ScenarioSpec::Attached);
    let driven = std::thread::scope(|scope| {
        let mut transport = InProcessTransport::start(scope, data, specs);
        let result = drive_stream_feed(&mut transport, &table, events, cfg.chunk);
        (result, transport.counters())
    });
    // A worker panic re-raises at scope exit above, exactly as the
    // former join-based runtime did; a transport-level anomaly with no
    // panic behind it is a dispatcher bug.
    let (outputs, shard_reports, events_per_shard) = driven
        .0
        .unwrap_or_else(|e| panic!("in-process shard transport failed: {e}"));
    let shard_wall = t_shards.elapsed();

    let t_merge = Instant::now();
    let output = merge_outputs(outputs);
    let merge_wall = t_merge.elapsed();

    Ok(assemble_result(
        output,
        shard_reports,
        events_per_shard,
        per_shard_links,
        ClusterWalls {
            dispatch: dispatch_wall,
            shard_ingest: shard_wall,
            merge: merge_wall,
            total: started.elapsed(),
        },
        0,
        None,
        Some(driven.1),
    ))
}

/// The durability directory of one shard under the cluster root:
/// `root/shard-{i}/` — each shard journals and checkpoints entirely
/// within its own directory, which is what lets the supervisor recover
/// it without touching any other shard's state.
pub fn shard_dir(root: &Path, shard: u32) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

/// One supervisor recovery: which shard died and what
/// [`crate::recovery::DurableStream::recover`] found in its `shard-{i}/` directory.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// The shard that was recovered.
    pub shard: u32,
    /// The recovery ladder's findings for that shard.
    pub report: RecoveryReport,
}

/// What [`run_durable_cluster`] hands back: the merged result plus the
/// supervisor's recovery ledger.
pub struct DurableClusterRun {
    /// The merged cluster result (byte-identical to single-process).
    pub result: ClusterResult,
    /// Every recovery the supervisor performed, in shard order; empty
    /// when no shard was killed.
    pub recoveries: Vec<ShardRecovery>,
    /// Per-shard `DurabilityCounters::restores` — the
    /// healthy-shards-never-restart contract is `restores == 0` for every
    /// shard not named in a [`ShardKill`].
    pub shard_restores: Vec<u64>,
}

#[allow(clippy::too_many_arguments)]
fn durable_spec(
    root: &Path,
    shard: u32,
    shards: u32,
    cfg: &ClusterConfig,
    policy: &DurabilityPolicy,
    scenario: &ScenarioSpec,
    recover: bool,
    abort_after_events: Option<u64>,
) -> WorkerSpec {
    WorkerSpec {
        shard,
        shards,
        config: cfg.analysis.clone(),
        scenario: scenario.clone(),
        durable: Some(DurableSpec {
            dir: shard_dir(root, shard).display().to_string(),
            policy: *policy,
            recover,
        }),
        abort_after_events,
    }
}

fn transport_to_recovery_error(e: TransportError) -> RecoveryError {
    RecoveryError::WorkerFailed {
        shard: e.worker().unwrap_or(0) as u32,
        detail: e.to_string(),
    }
}

/// Aggregate per-shard durability counters into the cluster-wide figure
/// (sums, except high-water marks and rates which take the worst shard)
/// and collect the per-shard restore counts.
fn fold_durability(reports: &[PipelineReport]) -> (DurabilityCounters, Vec<u64>) {
    let mut durability = DurabilityCounters::default();
    let mut shard_restores = Vec::with_capacity(reports.len());
    for report in reports {
        let d = report
            .durability
            .expect("durable shards always report durability");
        shard_restores.push(d.restores);
        durability.checkpoints_written += d.checkpoints_written;
        durability.checkpoint_bytes_last = durability
            .checkpoint_bytes_last
            .max(d.checkpoint_bytes_last);
        durability.checkpoint_write_micros_max = durability
            .checkpoint_write_micros_max
            .max(d.checkpoint_write_micros_max);
        durability.checkpoint_retries += d.checkpoint_retries;
        durability.journal_records += d.journal_records;
        durability.journal_segments += d.journal_segments;
        durability.journal_bytes += d.journal_bytes;
        durability.journal_fsyncs += d.journal_fsyncs;
        durability.restores += d.restores;
        durability.events_replayed += d.events_replayed;
        durability.journal_truncated_records += d.journal_truncated_records;
        durability.deltas_written += d.deltas_written;
        durability.delta_bytes_total += d.delta_bytes_total;
        durability.full_bytes_total += d.full_bytes_total;
        durability.chain_length_at_recovery = durability
            .chain_length_at_recovery
            .max(d.chain_length_at_recovery);
        durability.snapshot_thread_stalls += d.snapshot_thread_stalls;
        durability.snapshot_sync_fallbacks += d.snapshot_sync_fallbacks;
        durability.ingest_stall_micros += d.ingest_stall_micros;
        // A rate, so the cluster-wide figure is the worst shard, not a sum.
        durability.snapshot_stall_rate_per_sec = durability
            .snapshot_stall_rate_per_sec
            .max(d.snapshot_stall_rate_per_sec);
    }
    (durability, shard_restores)
}

/// Run the durable sharded cluster: like [`run_cluster`], but every
/// worker owns a [`crate::recovery::DurableStream`] journaling and checkpointing under
/// its own `shard-{i}/` directory beneath `root` (which must not hold
/// prior durable state). `kills` is the chaos hook: each [`ShardKill`]
/// makes the named worker die after consuming exactly `after_events` of
/// its substream — the engine is dropped mid-run, no flush, no farewell
/// message. The dispatcher observes the loss through the transport,
/// respawns the worker, recovers it independently through the ordinary
/// [`crate::recovery::DurableStream::recover`] ladder (checkpoint fallback + journal
/// replay + compaction), re-feeds the unconsumed tail of its substream,
/// and merges as usual. Healthy workers are never restarted or re-fed.
pub fn run_durable_cluster(
    root: &Path,
    data: &ScenarioData,
    events: &[StreamEvent],
    cfg: &ClusterConfig,
    policy: &DurabilityPolicy,
    kills: &[ShardKill],
) -> Result<DurableClusterRun, RecoveryError> {
    let started = Instant::now();
    let shards = cfg.shards.max(1);

    let t_dispatch = Instant::now();
    let table = linktable::from_scenario(data);
    let routed = partition_events(&table, events, shards);
    let events_per_shard: Vec<u64> = routed.iter().map(|r| r.len() as u64).collect();
    let per_shard_links = links_per_shard(&table, shards);
    let dispatch_wall = t_dispatch.elapsed();

    let scenario = ScenarioSpec::Attached;
    let specs: Vec<WorkerSpec> = (0..shards)
        .map(|shard| {
            let abort = kills
                .iter()
                .find(|k| k.shard == shard)
                .map(|k| k.after_events);
            durable_spec(root, shard, shards, cfg, policy, &scenario, false, abort)
        })
        .collect();

    let t_shards = Instant::now();
    let driven = std::thread::scope(|scope| {
        let mut transport = InProcessTransport::start(scope, data, specs);
        let result = drive_durable(&mut transport, &routed, cfg.chunk, &[], &|shard| {
            durable_spec(root, shard, shards, cfg, policy, &scenario, true, None)
        });
        (result, transport.counters())
    });
    let (outputs, shard_reports, recoveries) = driven.0.map_err(transport_to_recovery_error)?;
    let shard_wall = t_shards.elapsed();

    let (durability, shard_restores) = fold_durability(&shard_reports);
    let t_merge = Instant::now();
    let output = merge_outputs(outputs);
    let merge_wall = t_merge.elapsed();

    let recovery_events = recoveries.len() as u64;
    Ok(DurableClusterRun {
        result: assemble_result(
            output,
            shard_reports,
            events_per_shard,
            per_shard_links,
            ClusterWalls {
                dispatch: dispatch_wall,
                shard_ingest: shard_wall,
                merge: merge_wall,
                total: started.elapsed(),
            },
            recovery_events,
            Some(durability),
            Some(driven.1),
        ),
        recoveries,
        shard_restores,
    })
}

// ---------------------------------------------------------------------------
// Live resharding
// ---------------------------------------------------------------------------

/// The migration ledger of one live reshard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReshardReport {
    /// Shard count before the grow.
    pub from_shards: u32,
    /// Shard count after the grow (`from_shards + 1`).
    pub to_shards: u32,
    /// The event-stream position the reshard happened at.
    pub split_at: usize,
    /// Exactly the links jump-hash reassigned — every one maps to the
    /// new shard, pinned by `tests/cluster_reshard.rs` against an
    /// independent recomputation.
    pub moved_links: Vec<LinkIx>,
    /// Live lanes actually shipped (moved links whose lane had opened;
    /// the rest are state-free and start fresh on the new worker).
    pub lanes_moved: u64,
    /// Wall-clock cost of the pause: grow + export + ship + import.
    pub migration_micros: u64,
}

/// What [`run_reshard_cluster`] hands back: the merged result (still
/// byte-identical to batch and to a from-scratch N+1 run) plus the
/// migration ledger.
pub struct ReshardRun {
    /// The merged cluster result at `to_shards` workers.
    pub result: ClusterResult,
    /// What moved, and what it cost.
    pub reshard: ReshardReport,
}

#[allow(clippy::too_many_arguments)]
fn assemble_reshard(
    outputs: Vec<StreamOutput>,
    shard_reports: Vec<PipelineReport>,
    events_per_shard: Vec<u64>,
    table: &LinkTable,
    after_shards: u32,
    walls: ClusterWalls,
    counters: TransportCounters,
    reshard: ReshardReport,
) -> ReshardRun {
    let t_merge = Instant::now();
    let output = merge_outputs(outputs);
    let merge_wall = t_merge.elapsed();
    let walls = ClusterWalls {
        merge: merge_wall,
        ..walls
    };
    ReshardRun {
        result: assemble_result(
            output,
            shard_reports,
            events_per_shard,
            links_per_shard(table, after_shards),
            walls,
            0,
            None,
            Some(counters),
        ),
        reshard,
    }
}

/// Per-worker event totals for a reshard run: pre-split counts at N
/// routing plus post-split counts at N+1 routing.
fn reshard_event_counts(
    pre: &[VecDeque<Vec<StreamEvent>>],
    post: &[VecDeque<Vec<StreamEvent>>],
) -> Vec<u64> {
    let mut counts = batch_counts(post);
    for (w, c) in batch_counts(pre).into_iter().enumerate() {
        counts[w] += c;
    }
    counts
}

/// Grow a live in-process cluster from `cfg.shards` to `cfg.shards + 1`
/// workers at event boundary `split_at` (clamped to the stream length):
/// the first `split_at` events are dispatched at N-shard routing, the
/// cluster pauses at the boundary, exactly the lanes jump-hash
/// reassigns migrate to the new worker as serialized snapshots, and the
/// rest of the stream is dispatched at (N+1)-shard routing. The merged
/// output is byte-identical to a from-scratch N+1 run — and therefore
/// to the single-process batch answer (`tests/cluster_reshard.rs`).
pub fn run_reshard_cluster(
    data: &ScenarioData,
    events: &[StreamEvent],
    cfg: &ClusterConfig,
    split_at: usize,
) -> Result<ReshardRun, AnalysisError> {
    let started = Instant::now();
    analysis::validate_inputs(data, &cfg.analysis)?;
    let shards = cfg.shards.max(1);
    let split = split_at.min(events.len());

    let t_dispatch = Instant::now();
    let table = linktable::from_scenario(data);
    let pre = partition_batches(&table, &events[..split], shards, cfg.chunk);
    let post = partition_batches(&table, &events[split..], shards + 1, cfg.chunk);
    let events_per_shard = reshard_event_counts(&pre, &post);
    let dispatch_wall = t_dispatch.elapsed();

    let t_shards = Instant::now();
    let specs = fresh_specs(shards, cfg, &ScenarioSpec::Attached);
    let grow_spec = WorkerSpec::new(
        shards,
        shards + 1,
        cfg.analysis.clone(),
        ScenarioSpec::Attached,
    );
    let driven = std::thread::scope(|scope| {
        let mut transport = InProcessTransport::start(scope, data, specs);
        let result = drive_reshard(&mut transport, &table, pre, post, grow_spec);
        (result, transport.counters())
    });
    let (outputs, shard_reports, moved_links, lanes_moved, migration_micros) = driven
        .0
        .unwrap_or_else(|e| panic!("in-process shard transport failed: {e}"));
    let shard_wall = t_shards.elapsed();

    Ok(assemble_reshard(
        outputs,
        shard_reports,
        events_per_shard,
        &table,
        shards + 1,
        ClusterWalls {
            dispatch: dispatch_wall,
            shard_ingest: shard_wall,
            merge: std::time::Duration::ZERO,
            total: started.elapsed(),
        },
        driven.1,
        ReshardReport {
            from_shards: shards,
            to_shards: shards + 1,
            split_at: split,
            moved_links,
            lanes_moved,
            migration_micros,
        },
    ))
}

// ---------------------------------------------------------------------------
// Subprocess entry points
// ---------------------------------------------------------------------------

/// How to run cluster workers as `faultline-shard-worker` subprocesses.
#[derive(Debug, Clone)]
pub struct SubprocessOptions {
    /// The worker binary (see [`crate::transport::locate_worker_bin`]).
    pub worker_bin: PathBuf,
    /// How each worker materializes its own copy of the scenario —
    /// must describe the same data the dispatcher routes with
    /// ([`ScenarioSpec::Params`] or [`ScenarioSpec::Inline`]).
    pub scenario: ScenarioSpec,
}

/// [`run_cluster`], but every worker is a `faultline-shard-worker`
/// subprocess speaking hashed frames over stdio. The merged output is
/// byte-identical to the in-process cluster and to batch
/// (`tests/cluster_process.rs`). Worker death is an error here — the
/// non-durable cluster has no state to recover.
pub fn run_cluster_subprocess(
    data: &ScenarioData,
    events: &[StreamEvent],
    cfg: &ClusterConfig,
    opts: &SubprocessOptions,
) -> Result<ClusterResult, TransportError> {
    let started = Instant::now();
    analysis::validate_inputs(data, &cfg.analysis)?;
    let shards = cfg.shards.max(1);

    let t_dispatch = Instant::now();
    let table = linktable::from_scenario(data);
    let per_shard_links = links_per_shard(&table, shards);
    let dispatch_wall = t_dispatch.elapsed();

    let t_shards = Instant::now();
    let specs = fresh_specs(shards, cfg, &opts.scenario);
    let mut transport = SubprocessTransport::start(&opts.worker_bin, &specs)?;
    let (outputs, shard_reports, events_per_shard) =
        drive_stream_feed(&mut transport, &table, events, cfg.chunk)?;
    let counters = transport.counters();
    drop(transport);
    let shard_wall = t_shards.elapsed();

    let t_merge = Instant::now();
    let output = merge_outputs(outputs);
    let merge_wall = t_merge.elapsed();

    Ok(assemble_result(
        output,
        shard_reports,
        events_per_shard,
        per_shard_links,
        ClusterWalls {
            dispatch: dispatch_wall,
            shard_ingest: shard_wall,
            merge: merge_wall,
            total: started.elapsed(),
        },
        0,
        None,
        Some(counters),
    ))
}

/// [`run_durable_cluster`] over subprocess workers. `kills` are the
/// deterministic in-worker aborts ([`ShardKill`] semantics identical to
/// the in-process runtime); `hard_kills` make the dispatcher SIGKILL
/// the named worker's process at the first send boundary at or past
/// `after_events` — the worker gets no chance to flush buffers or say
/// goodbye, and the supervisor recovers it purely from its `shard-{i}/`
/// directory.
#[allow(clippy::too_many_arguments)]
pub fn run_durable_cluster_subprocess(
    root: &Path,
    data: &ScenarioData,
    events: &[StreamEvent],
    cfg: &ClusterConfig,
    policy: &DurabilityPolicy,
    opts: &SubprocessOptions,
    kills: &[ShardKill],
    hard_kills: &[ShardKill],
) -> Result<DurableClusterRun, RecoveryError> {
    let started = Instant::now();
    let shards = cfg.shards.max(1);

    let t_dispatch = Instant::now();
    let table = linktable::from_scenario(data);
    let routed = partition_events(&table, events, shards);
    let events_per_shard: Vec<u64> = routed.iter().map(|r| r.len() as u64).collect();
    let per_shard_links = links_per_shard(&table, shards);
    let dispatch_wall = t_dispatch.elapsed();

    let specs: Vec<WorkerSpec> = (0..shards)
        .map(|shard| {
            let abort = kills
                .iter()
                .find(|k| k.shard == shard)
                .map(|k| k.after_events);
            durable_spec(
                root,
                shard,
                shards,
                cfg,
                policy,
                &opts.scenario,
                false,
                abort,
            )
        })
        .collect();

    let t_shards = Instant::now();
    let mut transport = SubprocessTransport::start(&opts.worker_bin, &specs)
        .map_err(transport_to_recovery_error)?;
    let driven = drive_durable(&mut transport, &routed, cfg.chunk, hard_kills, &|shard| {
        durable_spec(root, shard, shards, cfg, policy, &opts.scenario, true, None)
    });
    let counters = transport.counters();
    drop(transport);
    let (outputs, shard_reports, recoveries) = driven.map_err(transport_to_recovery_error)?;
    let shard_wall = t_shards.elapsed();

    let (durability, shard_restores) = fold_durability(&shard_reports);
    let t_merge = Instant::now();
    let output = merge_outputs(outputs);
    let merge_wall = t_merge.elapsed();

    let recovery_events = recoveries.len() as u64;
    Ok(DurableClusterRun {
        result: assemble_result(
            output,
            shard_reports,
            events_per_shard,
            per_shard_links,
            ClusterWalls {
                dispatch: dispatch_wall,
                shard_ingest: shard_wall,
                merge: merge_wall,
                total: started.elapsed(),
            },
            recovery_events,
            Some(durability),
            Some(counters),
        ),
        recoveries,
        shard_restores,
    })
}

/// [`run_reshard_cluster`] over subprocess workers: the migrated lanes
/// genuinely cross process boundaries as hashed frames.
pub fn run_reshard_cluster_subprocess(
    data: &ScenarioData,
    events: &[StreamEvent],
    cfg: &ClusterConfig,
    split_at: usize,
    opts: &SubprocessOptions,
) -> Result<ReshardRun, TransportError> {
    let started = Instant::now();
    analysis::validate_inputs(data, &cfg.analysis)?;
    let shards = cfg.shards.max(1);
    let split = split_at.min(events.len());

    let t_dispatch = Instant::now();
    let table = linktable::from_scenario(data);
    let pre = partition_batches(&table, &events[..split], shards, cfg.chunk);
    let post = partition_batches(&table, &events[split..], shards + 1, cfg.chunk);
    let events_per_shard = reshard_event_counts(&pre, &post);
    let dispatch_wall = t_dispatch.elapsed();

    let t_shards = Instant::now();
    let specs = fresh_specs(shards, cfg, &opts.scenario);
    let grow_spec = WorkerSpec::new(
        shards,
        shards + 1,
        cfg.analysis.clone(),
        opts.scenario.clone(),
    );
    let mut transport = SubprocessTransport::start(&opts.worker_bin, &specs)?;
    let (outputs, shard_reports, moved_links, lanes_moved, migration_micros) =
        drive_reshard(&mut transport, &table, pre, post, grow_spec)?;
    let counters = transport.counters();
    drop(transport);
    let shard_wall = t_shards.elapsed();

    Ok(assemble_reshard(
        outputs,
        shard_reports,
        events_per_shard,
        &table,
        shards + 1,
        ClusterWalls {
            dispatch: dispatch_wall,
            shard_ingest: shard_wall,
            merge: std::time::Duration::ZERO,
            total: started.elapsed(),
        },
        counters,
        ReshardReport {
            from_shards: shards,
            to_shards: shards + 1,
            split_at: split,
            moved_links,
            lanes_moved,
            migration_micros,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_sim::scenario::{run, ScenarioParams};

    #[test]
    fn jump_hash_is_stable_and_in_range() {
        for key in 0..1000u64 {
            for n in 1..10u32 {
                let b = jump_hash(key, n);
                assert!(b < n);
                assert_eq!(b, jump_hash(key, n), "deterministic");
            }
        }
    }

    #[test]
    fn growing_the_cluster_only_moves_keys_to_the_new_shard() {
        for key in 0..2000u64 {
            for n in 1..12u32 {
                let before = jump_hash(key, n);
                let after = jump_hash(key, n + 1);
                assert!(
                    after == before || after == n,
                    "key {key}: {before} -> {after} adding shard {n}"
                );
            }
        }
    }

    #[test]
    fn unrouted_events_get_a_deterministic_shard() {
        let data = run(&ScenarioParams::tiny(5));
        let table = linktable::from_scenario(&data);
        let events = crate::streaming::scenario_event_stream(&data);
        for n in [1u32, 2, 3, 5, 8] {
            for e in events.iter().take(200) {
                assert_eq!(route_event(&table, e, n), route_event(&table, e, n));
                assert!(route_event(&table, e, n) < n);
            }
        }
    }

    #[test]
    fn partition_covers_every_event_exactly_once() {
        let data = run(&ScenarioParams::tiny(11));
        let table = linktable::from_scenario(&data);
        let events = crate::streaming::scenario_event_stream(&data);
        for n in [1u32, 2, 4, 7] {
            let routed = partition_events(&table, &events, n);
            assert_eq!(routed.len(), n as usize);
            let total: usize = routed.iter().map(Vec::len).sum();
            assert_eq!(total, events.len());
            for shard in &routed {
                assert!(shard.windows(2).all(|w| w[0].at() <= w[1].at()));
            }
        }
    }

    #[test]
    fn batched_partition_agrees_with_the_flat_partition() {
        let data = run(&ScenarioParams::tiny(11));
        let table = linktable::from_scenario(&data);
        let events = crate::streaming::scenario_event_stream(&data);
        for n in [1u32, 3, 7] {
            for chunk in [1usize, 5, 4096, usize::MAX] {
                let flat = partition_events(&table, &events, n);
                let batched = partition_batches(&table, &events, n, chunk);
                assert_eq!(flat.len(), batched.len());
                for (f, q) in flat.iter().zip(&batched) {
                    let rejoined: Vec<StreamEvent> =
                        q.iter().flat_map(|b| b.iter().cloned()).collect();
                    assert_eq!(
                        serde_json::to_string(f).unwrap(),
                        serde_json::to_string(&rejoined).unwrap(),
                        "{n} shards, chunk {chunk}"
                    );
                    assert!(q.iter().all(|b| b.len() <= chunk), "chunk bound respected");
                }
            }
        }
    }
}
