//! Sharded multi-collector runtime — many kernels, one answer.
//!
//! The paper analyzes one 299-link backbone in a single process; a
//! production deployment watches orders of magnitude more links than one
//! collector can ingest. Because every semantic stage of the pipeline is
//! strictly per-link (the [`crate::kernel`] never shares state between
//! links), the stream can be *partitioned by link* across N independent
//! worker shards, each running the ordinary streaming driver over its
//! substream, and the per-shard answers can be merged back into the
//! exact single-process answer. This module is that runtime:
//!
//! ```text
//!                      ┌─ shard-0: StreamAnalysis ─ StreamOutput ─┐
//!  event stream ─ route ─ shard-1: StreamAnalysis ─ StreamOutput ─┼─ merge ─ StreamOutput
//!  (consistent hash on └─ shard-N: StreamAnalysis ─ StreamOutput ─┘  (deterministic
//!   the interned link key)   │ own thread, own shard-{i}/ dir │       aggregator)
//!                            └── supervisor recovers crashes ──┘
//! ```
//!
//! - **Partitioner.** [`route_event`] resolves each event to its link
//!   exactly as the kernel's classify stage would, then hashes the
//!   link's interned `(Sym, Sym)` key ([`crate::linktable::LinkTable::shard_key`])
//!   through a jump consistent hash ([`shard_of_key`]). Jump hashing
//!   gives the resharding property the property tests pin: growing
//!   N → N+1 shards moves only the ~1/(N+1) of keys that land on the new
//!   shard, and every moved key moves *to* the new shard. Events that
//!   resolve to no link (unresolved hostnames, unknown prefixes) go to a
//!   deterministic fallback shard — they only increment counters, which
//!   sum shard-wise, so any deterministic placement preserves the merge.
//! - **Shards.** Each shard is an unmodified [`StreamAnalysis`] (or
//!   [`DurableStream`] in the durable runtime) fed its substream on its
//!   own thread. A shard's substream preserves global time order, and a
//!   link's entire history lands on exactly one shard, so every per-link
//!   state machine sees byte-for-byte the history it would see in a
//!   single process.
//! - **Aggregator.** [`merge_outputs`] rebuilds the global
//!   [`StreamOutput`] from the shard outputs: counter structs are
//!   field-wise sums (each offered event is counted by exactly one
//!   shard), event-level vectors are stable-sorted by the same keys
//!   `Kernel::collect` uses (ties only ever come from one shard, so
//!   stability reproduces the single-process order exactly), and the
//!   match index pairs are re-based from shard-local to global failure
//!   positions. `tests/cluster_equivalence.rs` asserts the merged JSON is
//!   byte-identical to [`crate::analysis::Analysis::run`] for every
//!   tested shard count, seed, and chaos preset.
//! - **Supervisor.** In the durable runtime ([`run_durable_cluster`])
//!   every shard journals and checkpoints under its own `shard-{i}/`
//!   directory. When a shard dies mid-run (simulated by
//!   [`faultline_sim::chaos::ShardKill`]), the supervisor recovers *that
//!   shard only* through the ordinary [`DurableStream::recover`] ladder,
//!   re-feeds the tail of its substream, and the merged answer is still
//!   byte-identical; healthy shards never restart
//!   (`tests/cluster_recovery.rs`).

use crate::analysis::{self, AnalysisConfig};
use crate::error::{AnalysisError, RecoveryError};
use crate::intern::Sym;
use crate::linktable::{self, LinkIx, LinkTable};
use crate::matching::FailureMatching;
use crate::observe::{
    self, DurabilityCounters, PipelineCounters, PipelineReport, ShardCounters, StreamingCounters,
};
use crate::reconstruct::{Failure, Reconstruction};
use crate::recovery::{DurabilityPolicy, DurableStream, RecoveryReport};
use crate::sanitize::SanitizeReport;
use crate::streaming::{StreamAnalysis, StreamEvent, StreamOutput, StreamResult};
use crate::transitions::{IsisMergeStats, SyslogResolveStats};
use faultline_isis::listener::{ReachabilityKind, TransitionSubject};
use faultline_sim::chaos::ShardKill;
use faultline_sim::ScenarioData;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The partition key used for events that resolve to no link (unknown
/// hostnames, foreign prefixes, unparseable subjects). They only
/// increment resolution counters — shard-wise sums — so any
/// deterministic placement is merge-equivalent; pinning one keeps the
/// per-shard event counts reproducible.
pub const UNROUTED_KEY: (Sym, Sym) = (Sym(u32::MAX), Sym(u32::MAX));

/// FNV-1a over the two interned ids, one round per word (the ids are
/// already dense and well-distributed).
fn key_hash(key: (Sym, Sym)) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    h = (h ^ u64::from(key.0 .0)).wrapping_mul(PRIME);
    h = (h ^ u64::from(key.1 .0)).wrapping_mul(PRIME);
    h
}

/// Jump consistent hash (Lamping & Veach): maps a 64-bit key onto
/// `0..buckets` such that growing to `buckets + 1` reassigns only the
/// keys that move to the new bucket — expected `1/(buckets + 1)` of
/// them — and reassigns them *to* the new bucket.
fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    debug_assert!(buckets >= 1);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        let r = f64::from(1u32 << 31) / (((key >> 33) + 1) as f64);
        j = (((b + 1) as f64) * r) as i64;
    }
    b as u32
}

/// The shard an interned `(Sym, Sym)` link key lives on, for a cluster
/// of `shards` workers (`shards` is clamped to at least 1).
pub fn shard_of_key(key: (Sym, Sym), shards: u32) -> u32 {
    jump_hash(key_hash(key), shards.max(1))
}

/// The shard a link lives on: consistent hash of its canonical endpoint
/// host pair. Every member of a multi-link adjacency shares the pair, so
/// parallel links are always co-located — the property that lets
/// IS-reachability events, which resolve only to the *pair*, route
/// without knowing which member they belong to.
pub fn shard_of_link(table: &LinkTable, link: LinkIx, shards: u32) -> u32 {
    shard_of_key(table.shard_key(link), shards)
}

/// The link an event would resolve to, mirroring the kernel's classify
/// stage read-only: syslog by `(host, interface)`, IS reachability by
/// system-ID pair (any member — they co-locate), IP reachability by /31
/// subnet.
fn link_of_event(table: &LinkTable, event: &StreamEvent) -> Option<LinkIx> {
    match event {
        StreamEvent::Syslog(m) => table.by_interface(&m.event.host, &m.event.interface),
        StreamEvent::Isis(t) => match t.kind {
            ReachabilityKind::IsReach => match &t.subject {
                TransitionSubject::Adjacency { neighbor } => {
                    table.by_sysid_pair(t.source, *neighbor).first().copied()
                }
                _ => None,
            },
            ReachabilityKind::IpReach => t.subject.as_subnet().and_then(|s| table.by_subnet(s)),
        },
    }
}

/// The shard one event is routed to. Deterministic in the event and the
/// (deterministically interned) table, so every dispatcher in a cluster
/// agrees without coordination.
pub fn route_event(table: &LinkTable, event: &StreamEvent, shards: u32) -> u32 {
    match link_of_event(table, event) {
        Some(link) => shard_of_link(table, link, shards),
        None => shard_of_key(UNROUTED_KEY, shards),
    }
}

/// Split an event stream into per-shard substreams, preserving order
/// within each (a subsequence of an in-order stream is in order, so no
/// shard ever sees a late event the single process would not have).
pub fn partition_events(
    table: &LinkTable,
    events: &[StreamEvent],
    shards: u32,
) -> Vec<Vec<StreamEvent>> {
    let n = shards.max(1);
    let mut routed: Vec<Vec<StreamEvent>> = (0..n).map(|_| Vec::new()).collect();
    for event in events {
        routed[route_event(table, event, n) as usize].push(event.clone());
    }
    routed
}

fn add_resolve(into: &mut SyslogResolveStats, from: &SyslogResolveStats) {
    into.isis_resolved += from.isis_resolved;
    into.physical_resolved += from.physical_resolved;
    into.lineproto_skipped += from.lineproto_skipped;
    into.unresolved += from.unresolved;
}

fn add_merge_stats(into: &mut IsisMergeStats, from: &IsisMergeStats) {
    into.raw += from.raw;
    into.unresolvable_multilink += from.unresolvable_multilink;
    into.unknown += from.unknown;
    into.inconsistent += from.inconsistent;
    into.emitted += from.emitted;
}

fn add_sanitize(into: &mut SanitizeReport, from: &SanitizeReport) {
    into.removed_offline += from.removed_offline;
    into.removed_offline_ms += from.removed_offline_ms;
    into.long_checked += from.long_checked;
    into.long_removed += from.long_removed;
    into.long_removed_ms += from.long_removed_ms;
}

fn add_recon(into: &mut Reconstruction, from: &Reconstruction) {
    into.failures.extend_from_slice(&from.failures);
    into.ambiguous.extend_from_slice(&from.ambiguous);
    into.unterminated += from.unterminated;
    into.boundary_ups += from.boundary_ups;
}

/// Build the per-shard → global failure-index remap for one side of the
/// matching. Returns the globally ordered failures plus, per shard, the
/// global position of each shard-local index.
fn order_failures(
    shards: &[StreamOutput],
    side: fn(&StreamOutput) -> &[Failure],
) -> (Vec<Failure>, Vec<Vec<usize>>) {
    let mut entries: Vec<(usize, usize)> = Vec::new();
    for (s, out) in shards.iter().enumerate() {
        entries.extend((0..side(out).len()).map(|i| (s, i)));
    }
    // Stable sort by the same key `Kernel::collect` orders on. A link
    // never spans two shards, so every tie group comes from one shard
    // and stability preserves its lane-push order — the exact
    // single-process sequence.
    entries.sort_by_key(|&(s, i)| {
        let f = &side(&shards[s])[i];
        (f.link, f.start)
    });
    let mut remap: Vec<Vec<usize>> = shards.iter().map(|o| vec![0; side(o).len()]).collect();
    let mut ordered = Vec::with_capacity(entries.len());
    for (global, &(s, i)) in entries.iter().enumerate() {
        remap[s][i] = global;
        ordered.push(side(&shards[s])[i]);
    }
    (ordered, remap)
}

/// Deterministically merge shard [`StreamOutput`]s into the single
/// global output. For shard outputs produced by [`partition_events`]
/// substreams of one in-order stream, the result serializes
/// byte-identical to the single-process [`crate::analysis::Analysis::run`]
/// answer — the differential contract `tests/cluster_equivalence.rs`
/// pins. See the module docs for why each field merges the way it does.
pub fn merge_outputs(shards: Vec<StreamOutput>) -> StreamOutput {
    let mut resolve_stats = SyslogResolveStats::default();
    let mut is_stats = IsisMergeStats::default();
    let mut ip_stats = IsisMergeStats::default();
    let mut isis_recon = Reconstruction::default();
    let mut syslog_recon = Reconstruction::default();
    let mut isis_sanitize = SanitizeReport::default();
    let mut syslog_sanitize = SanitizeReport::default();
    let mut messages = Vec::new();
    let mut is_transitions = Vec::new();
    let mut ip_transitions = Vec::new();
    let mut syslog_transitions = Vec::new();
    let mut syslog_ingested = 0u64;
    for out in &shards {
        add_resolve(&mut resolve_stats, &out.resolve_stats);
        add_merge_stats(&mut is_stats, &out.is_stats);
        add_merge_stats(&mut ip_stats, &out.ip_stats);
        add_recon(&mut isis_recon, &out.isis_recon);
        add_recon(&mut syslog_recon, &out.syslog_recon);
        add_sanitize(&mut isis_sanitize, &out.isis_sanitize);
        add_sanitize(&mut syslog_sanitize, &out.syslog_sanitize);
        messages.extend(out.messages.iter().cloned());
        is_transitions.extend_from_slice(&out.is_transitions);
        ip_transitions.extend_from_slice(&out.ip_transitions);
        syslog_transitions.extend_from_slice(&out.syslog_transitions);
        syslog_ingested += out.counters.syslog_ingested;
    }
    // Event-level vectors: one stable sort on the collect-stage key.
    // Every `(time, link)` tie group lives on a single shard (the link's
    // shard), so stability reproduces the single-process order.
    messages.sort_by_key(|m| (m.at, m.link));
    is_transitions.sort_by_key(|t| (t.at, t.link));
    ip_transitions.sort_by_key(|t| (t.at, t.link));
    syslog_transitions.sort_by_key(|t| (t.at, t.link));
    isis_recon.failures.sort_by_key(|f| (f.link, f.start));
    isis_recon.ambiguous.sort_by_key(|a| (a.link, a.first));
    syslog_recon.failures.sort_by_key(|f| (f.link, f.start));
    syslog_recon.ambiguous.sort_by_key(|a| (a.link, a.first));

    // Failure lists + match pairs: order globally, then re-base every
    // shard-local index pair to its global position.
    let (syslog_failures, left_remap) = order_failures(&shards, |o| &o.syslog_failures);
    let (isis_failures, right_remap) = order_failures(&shards, |o| &o.isis_failures);
    let mut matched: Vec<(usize, usize)> = Vec::new();
    let mut partial: Vec<(usize, usize)> = Vec::new();
    for (s, out) in shards.iter().enumerate() {
        for &(i, j) in &out.matching.matched {
            matched.push((left_remap[s][i], right_remap[s][j]));
        }
        for &(i, j) in &out.matching.partial {
            partial.push((left_remap[s][i], right_remap[s][j]));
        }
    }
    matched.sort_by_key(|&(i, _)| i);
    partial.sort_by_key(|&(i, _)| i);
    let mut left_used = vec![false; syslog_failures.len()];
    let mut right_used = vec![false; isis_failures.len()];
    for &(i, j) in matched.iter().chain(partial.iter()) {
        left_used[i] = true;
        right_used[j] = true;
    }
    let matching = FailureMatching {
        matched,
        partial,
        left_only: (0..left_used.len()).filter(|&i| !left_used[i]).collect(),
        right_only: (0..right_used.len()).filter(|&j| !right_used[j]).collect(),
    };

    // Headline counters: recomputed from the merged structures with the
    // exact formulas `Kernel::collect` uses.
    let reconstructed = (isis_recon.failures.len() + syslog_recon.failures.len()) as u64;
    let survived = (isis_failures.len() + syslog_failures.len()) as u64;
    let counters = PipelineCounters {
        syslog_ingested,
        isis_ingested: is_stats.raw + ip_stats.raw,
        transitions_derived: (is_transitions.len()
            + ip_transitions.len()
            + syslog_transitions.len()) as u64,
        failures_reconstructed: reconstructed,
        failures_after_sanitize: survived,
        sanitize_dropped: reconstructed - survived,
        failures_matched: matching.matched.len() as u64,
        ambiguous_periods: (isis_recon.ambiguous.len() + syslog_recon.ambiguous.len()) as u64,
    };

    StreamOutput {
        messages,
        resolve_stats,
        is_transitions,
        is_stats,
        ip_transitions,
        ip_stats,
        syslog_transitions,
        isis_recon,
        syslog_recon,
        isis_failures,
        syslog_failures,
        isis_sanitize,
        syslog_sanitize,
        matching,
        counters,
    }
}

/// How a sharded cluster run is shaped.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker shards (clamped to at least 1).
    pub shards: u32,
    /// The per-shard analysis configuration — identical on every shard,
    /// exactly as the single process would run it.
    pub analysis: AnalysisConfig,
    /// Micro-batch size each shard worker feeds through
    /// [`StreamAnalysis::ingest_batch`].
    pub chunk: usize,
}

impl ClusterConfig {
    /// A cluster of `shards` workers with the default analysis
    /// configuration and micro-batch size.
    pub fn new(shards: u32) -> Self {
        ClusterConfig {
            shards,
            analysis: AnalysisConfig::default(),
            chunk: 2048,
        }
    }
}

/// What a cluster run produces: the merged (single-process-identical)
/// output, the cluster-level report, and each shard's own report.
pub struct ClusterResult {
    /// The merged derived surface — byte-identical to the single-process
    /// answer on the same stream.
    pub output: StreamOutput,
    /// Cluster-level accounting: dispatch/shard/merge stages, merged
    /// headline counters, and [`ShardCounters`] in
    /// [`PipelineReport::cluster`].
    pub report: PipelineReport,
    /// Every shard's own [`PipelineReport`], in shard order.
    pub shard_reports: Vec<PipelineReport>,
}

/// Wall-clock attribution for [`assemble_result`].
struct ClusterWalls {
    dispatch: std::time::Duration,
    shard_ingest: std::time::Duration,
    merge: std::time::Duration,
    total: std::time::Duration,
}

/// Fold shard outputs + reports into a [`ClusterResult`] (the merge has
/// already run; this builds the accounting around it).
fn assemble_result(
    output: StreamOutput,
    shard_reports: Vec<PipelineReport>,
    events_per_shard: Vec<u64>,
    links_per_shard: Vec<u64>,
    walls: ClusterWalls,
    recovery_events: u64,
    durability: Option<DurabilityCounters>,
) -> ClusterResult {
    let shards = events_per_shard.len() as u32;
    let total_events: u64 = events_per_shard.iter().sum();
    let max_shard_events = events_per_shard.iter().copied().max().unwrap_or(0);
    let min_shard_events = events_per_shard.iter().copied().min().unwrap_or(0);
    let mean = total_events as f64 / shards.max(1) as f64;
    let skew = if mean > 0.0 {
        max_shard_events as f64 / mean
    } else {
        0.0
    };

    let mut streaming = StreamingCounters::default();
    let mut robustness = observe::RobustnessCounters::default();
    for (i, r) in shard_reports.iter().enumerate() {
        if let Some(s) = &r.streaming {
            streaming.events_ingested += s.events_ingested;
            streaming.syslog_events += s.syslog_events;
            streaming.isis_events += s.isis_events;
            streaming.batches += s.batches;
            streaming.late_events += s.late_events;
            streaming.segments_closed += s.segments_closed;
            streaming.open_state_high_water =
                streaming.open_state_high_water.max(s.open_state_high_water);
            streaming.arena_events_high_water = streaming
                .arena_events_high_water
                .max(s.arena_events_high_water);
            streaming.watermark_lag_max_millis = streaming
                .watermark_lag_max_millis
                .max(s.watermark_lag_max_millis);
            streaming.finalized_at_flush += s.finalized_at_flush;
            streaming.flap_episodes += s.flap_episodes;
        }
        if i == 0 {
            // The parse-side baseline (raw/malformed/irrelevant lines)
            // describes the scenario, not the shard — every shard
            // reports the same numbers, so take them once.
            robustness = r.robustness;
            robustness.quarantined_syslog = 0;
            robustness.quarantined_isis = 0;
        }
        robustness.quarantined_syslog += r.robustness.quarantined_syslog;
        robustness.quarantined_isis += r.robustness.quarantined_isis;
    }
    let total_secs = walls.total.as_secs_f64();
    streaming.events_per_sec = if total_secs > 0.0 {
        streaming.events_ingested as f64 / total_secs
    } else {
        0.0
    };

    let threads = shard_reports.first().map(|r| r.threads).unwrap_or(1);
    let mut report = PipelineReport::new(threads);
    report.record_stage("dispatch", total_events, total_events, walls.dispatch);
    report.record_stage(
        "shard_ingest",
        total_events,
        output.counters.transitions_derived,
        walls.shard_ingest,
    );
    report.record_stage(
        "merge",
        output.counters.failures_after_sanitize,
        output.counters.failures_matched,
        walls.merge,
    );
    report.counters = output.counters;
    report.streaming = Some(streaming);
    report.durability = durability;
    report.robustness = robustness;
    report.cluster = Some(ShardCounters {
        shards,
        events_per_shard,
        links_per_shard,
        max_shard_events,
        min_shard_events,
        skew,
        recovery_events,
        merge_micros: walls.merge.as_micros() as u64,
    });
    report.total_micros = walls.total.as_micros() as u64;
    observe::narrate(|| {
        format!(
            "cluster done: {shards} shards, {total_events} events, skew {skew:.2}, {recovery_events} recoveries"
        )
    });
    ClusterResult {
        output,
        report,
        shard_reports,
    }
}

/// Links assigned to each shard by the partitioner.
fn links_per_shard(table: &LinkTable, shards: u32) -> Vec<u64> {
    let mut counts = vec![0u64; shards.max(1) as usize];
    for ix in table.iter() {
        counts[shard_of_link(table, ix, shards) as usize] += 1;
    }
    counts
}

/// Run the in-memory sharded cluster: partition `events` by link across
/// `cfg.shards` workers, run each shard as an independent
/// [`StreamAnalysis`] on its own thread, and merge the shard outputs
/// into the single-process answer.
///
/// # Examples
///
/// ```
/// use faultline_core::cluster::{run_cluster, ClusterConfig};
/// use faultline_core::{scenario_event_stream, Analysis, AnalysisConfig};
/// use faultline_sim::scenario::{run, ScenarioParams};
///
/// let data = run(&ScenarioParams::tiny(42));
/// let events = scenario_event_stream(&data);
/// let clustered = run_cluster(&data, &events, &ClusterConfig::new(4)).unwrap();
/// let batch = Analysis::run(&data, AnalysisConfig::default());
/// assert_eq!(
///     serde_json::to_string(&clustered.output).unwrap(),
///     serde_json::to_string(&batch.output).unwrap(),
/// );
/// ```
pub fn run_cluster(
    data: &ScenarioData,
    events: &[StreamEvent],
    cfg: &ClusterConfig,
) -> Result<ClusterResult, AnalysisError> {
    let started = Instant::now();
    // Validate configuration and input ordering once; shard workers then
    // construct engines infallibly with the same inputs.
    analysis::validate_inputs(data, &cfg.analysis)?;
    let shards = cfg.shards.max(1);

    let t_dispatch = Instant::now();
    let table = linktable::from_scenario(data);
    let routed = partition_events(&table, events, shards);
    let events_per_shard: Vec<u64> = routed.iter().map(|r| r.len() as u64).collect();
    let per_shard_links = links_per_shard(&table, shards);
    let dispatch_wall = t_dispatch.elapsed();

    let chunk = cfg.chunk.max(1);
    let t_shards = Instant::now();
    let shard_results: Vec<StreamResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = routed
            .iter()
            .map(|shard_events| {
                let config = cfg.analysis.clone();
                scope.spawn(move || {
                    let mut engine = StreamAnalysis::new(data, config);
                    for batch in shard_events.chunks(chunk) {
                        engine.ingest_batch(batch);
                    }
                    engine.flush()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let shard_wall = t_shards.elapsed();

    let t_merge = Instant::now();
    let (outputs, shard_reports): (Vec<_>, Vec<_>) = shard_results
        .into_iter()
        .map(|r| (r.output, r.report))
        .unzip();
    let output = merge_outputs(outputs);
    let merge_wall = t_merge.elapsed();

    Ok(assemble_result(
        output,
        shard_reports,
        events_per_shard,
        per_shard_links,
        ClusterWalls {
            dispatch: dispatch_wall,
            shard_ingest: shard_wall,
            merge: merge_wall,
            total: started.elapsed(),
        },
        0,
        None,
    ))
}

/// The durability directory of one shard under the cluster root:
/// `root/shard-{i}/` — each shard journals and checkpoints entirely
/// within its own directory, which is what lets the supervisor recover
/// it without touching any other shard's state.
pub fn shard_dir(root: &Path, shard: u32) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

/// One supervisor recovery: which shard died and what
/// [`DurableStream::recover`] found in its `shard-{i}/` directory.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// The shard that was recovered.
    pub shard: u32,
    /// The recovery ladder's findings for that shard.
    pub report: RecoveryReport,
}

/// What [`run_durable_cluster`] hands back: the merged result plus the
/// supervisor's recovery ledger.
pub struct DurableClusterRun {
    /// The merged cluster result (byte-identical to single-process).
    pub result: ClusterResult,
    /// Every recovery the supervisor performed, in shard order; empty
    /// when no shard was killed.
    pub recoveries: Vec<ShardRecovery>,
    /// Per-shard `DurabilityCounters::restores` — the
    /// healthy-shards-never-restart contract is `restores == 0` for every
    /// shard not named in a [`ShardKill`].
    pub shard_restores: Vec<u64>,
}

/// Run the durable sharded cluster: like [`run_cluster`], but every
/// shard is a [`DurableStream`] journaling and checkpointing under its
/// own `shard-{i}/` directory beneath `root` (which must not hold prior
/// durable state). `kills` is the chaos hook: each [`ShardKill`] makes
/// the named shard's worker die after consuming exactly
/// `after_events` of its substream — the stream is dropped mid-run, no
/// flush, no final checkpoint. The supervisor then detects the dead
/// shard, recovers it independently through the ordinary
/// [`DurableStream::recover`] ladder (checkpoint fallback + journal
/// replay + compaction), re-feeds the unconsumed tail of its substream,
/// and merges as usual. Healthy shards are never restarted or re-fed.
pub fn run_durable_cluster(
    root: &Path,
    data: &ScenarioData,
    events: &[StreamEvent],
    cfg: &ClusterConfig,
    policy: &DurabilityPolicy,
    kills: &[ShardKill],
) -> Result<DurableClusterRun, RecoveryError> {
    let started = Instant::now();
    let shards = cfg.shards.max(1);

    let t_dispatch = Instant::now();
    let table = linktable::from_scenario(data);
    let routed = partition_events(&table, events, shards);
    let events_per_shard: Vec<u64> = routed.iter().map(|r| r.len() as u64).collect();
    let per_shard_links = links_per_shard(&table, shards);
    let dispatch_wall = t_dispatch.elapsed();

    let mut created: Vec<Option<DurableStream<'_>>> = Vec::with_capacity(shards as usize);
    for i in 0..shards {
        created.push(Some(DurableStream::create(
            &shard_dir(root, i),
            data,
            cfg.analysis.clone(),
            *policy,
        )?));
    }

    // Feed every shard its substream on its own thread; a kill plan
    // drops the stream mid-feed (the simulated crash — everything
    // journaled so far stays on disk, nothing else does).
    let t_shards = Instant::now();
    type FedShard<'s> = Result<Option<DurableStream<'s>>, RecoveryError>;
    let fed: Vec<FedShard<'_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = created
            .into_iter()
            .zip(routed.iter())
            .enumerate()
            .map(|(i, (stream, shard_events))| {
                let kill_at = kills
                    .iter()
                    .find(|k| k.shard == i as u32)
                    .map(|k| k.after_events);
                scope.spawn(move || -> FedShard<'_> {
                    let mut stream = stream.expect("created above");
                    for (n, event) in shard_events.iter().enumerate() {
                        if kill_at == Some(n as u64) {
                            observe::narrate(|| {
                                format!("cluster: shard {i} killed after {n} events")
                            });
                            drop(stream);
                            return Ok(None);
                        }
                        stream.ingest(event)?;
                    }
                    Ok(Some(stream))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Supervisor: any missing stream is a dead shard. Recover it from
    // its own directory and re-feed only its unconsumed tail; the other
    // shards' engines were never dropped and are not touched.
    let mut slots: Vec<Option<DurableStream<'_>>> = Vec::with_capacity(shards as usize);
    for r in fed {
        slots.push(r?);
    }
    let mut recoveries = Vec::new();
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        let (mut stream, report) = DurableStream::recover(
            &shard_dir(root, i as u32),
            data,
            cfg.analysis.clone(),
            *policy,
        )?;
        observe::narrate(|| {
            format!(
                "cluster: supervisor recovered shard {i} at seq {}",
                report.resumed_at_seq
            )
        });
        for event in &routed[i][report.resumed_at_seq as usize..] {
            stream.ingest(event)?;
        }
        recoveries.push(ShardRecovery {
            shard: i as u32,
            report,
        });
        *slot = Some(stream);
    }
    let shard_wall = t_shards.elapsed();

    let mut shard_restores = Vec::with_capacity(shards as usize);
    let mut durability = DurabilityCounters::default();
    let mut outputs = Vec::with_capacity(shards as usize);
    let mut shard_reports = Vec::with_capacity(shards as usize);
    let t_merge = Instant::now();
    for slot in slots {
        let stream = slot.expect("every dead shard recovered above");
        let result = stream.finish();
        let d = result
            .report
            .durability
            .expect("durable shards always report durability");
        shard_restores.push(d.restores);
        durability.checkpoints_written += d.checkpoints_written;
        durability.checkpoint_bytes_last = durability
            .checkpoint_bytes_last
            .max(d.checkpoint_bytes_last);
        durability.checkpoint_write_micros_max = durability
            .checkpoint_write_micros_max
            .max(d.checkpoint_write_micros_max);
        durability.checkpoint_retries += d.checkpoint_retries;
        durability.journal_records += d.journal_records;
        durability.journal_segments += d.journal_segments;
        durability.journal_bytes += d.journal_bytes;
        durability.journal_fsyncs += d.journal_fsyncs;
        durability.restores += d.restores;
        durability.events_replayed += d.events_replayed;
        durability.journal_truncated_records += d.journal_truncated_records;
        durability.deltas_written += d.deltas_written;
        durability.delta_bytes_total += d.delta_bytes_total;
        durability.full_bytes_total += d.full_bytes_total;
        durability.chain_length_at_recovery = durability
            .chain_length_at_recovery
            .max(d.chain_length_at_recovery);
        durability.snapshot_thread_stalls += d.snapshot_thread_stalls;
        durability.snapshot_sync_fallbacks += d.snapshot_sync_fallbacks;
        durability.ingest_stall_micros += d.ingest_stall_micros;
        // A rate, so the cluster-wide figure is the worst shard, not a sum.
        durability.snapshot_stall_rate_per_sec = durability
            .snapshot_stall_rate_per_sec
            .max(d.snapshot_stall_rate_per_sec);
        outputs.push(result.output);
        shard_reports.push(result.report);
    }
    let output = merge_outputs(outputs);
    let merge_wall = t_merge.elapsed();

    let recovery_events = recoveries.len() as u64;
    Ok(DurableClusterRun {
        result: assemble_result(
            output,
            shard_reports,
            events_per_shard,
            per_shard_links,
            ClusterWalls {
                dispatch: dispatch_wall,
                shard_ingest: shard_wall,
                merge: merge_wall,
                total: started.elapsed(),
            },
            recovery_events,
            Some(durability),
        ),
        recoveries,
        shard_restores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_sim::scenario::{run, ScenarioParams};

    #[test]
    fn jump_hash_is_stable_and_in_range() {
        for key in 0..1000u64 {
            for n in 1..10u32 {
                let b = jump_hash(key, n);
                assert!(b < n);
                assert_eq!(b, jump_hash(key, n), "deterministic");
            }
        }
    }

    #[test]
    fn growing_the_cluster_only_moves_keys_to_the_new_shard() {
        for key in 0..2000u64 {
            for n in 1..12u32 {
                let before = jump_hash(key, n);
                let after = jump_hash(key, n + 1);
                assert!(
                    after == before || after == n,
                    "key {key}: {before} -> {after} adding shard {n}"
                );
            }
        }
    }

    #[test]
    fn unrouted_events_get_a_deterministic_shard() {
        let data = run(&ScenarioParams::tiny(5));
        let table = linktable::from_scenario(&data);
        let events = crate::streaming::scenario_event_stream(&data);
        for n in [1u32, 2, 3, 5, 8] {
            for e in events.iter().take(200) {
                assert_eq!(route_event(&table, e, n), route_event(&table, e, n));
                assert!(route_event(&table, e, n) < n);
            }
        }
    }

    #[test]
    fn partition_covers_every_event_exactly_once() {
        let data = run(&ScenarioParams::tiny(11));
        let table = linktable::from_scenario(&data);
        let events = crate::streaming::scenario_event_stream(&data);
        for n in [1u32, 2, 4, 7] {
            let routed = partition_events(&table, &events, n);
            assert_eq!(routed.len(), n as usize);
            let total: usize = routed.iter().map(Vec::len).sum();
            assert_eq!(total, events.len());
            for shard in &routed {
                assert!(shard.windows(2).all(|w| w[0].at() <= w[1].at()));
            }
        }
    }
}
