//! Bounded-memory admission control and priority-aware load shedding in
//! front of the streaming engine — the overload-protection layer.
//!
//! Past its measured capacity, an unprotected collector grows without
//! bound: the ingest queue, the per-link lanes, and the snapshot hand-off
//! all buffer whatever arrives. [`AdmissionController`] puts a bounded
//! queue between arrival and the engine and makes the overflow behaviour
//! an explicit, configurable [`OverloadPolicy`]:
//!
//! - **[`OverloadPolicy::Block`]** — closed-loop backpressure. A full
//!   queue hands the event back to the caller ([`Offer::Blocked`]), who
//!   must drain before retrying. Nothing is ever lost; arrival slows to
//!   the service rate.
//! - **[`OverloadPolicy::Shed`]** — open-loop load shedding. A full
//!   queue sheds exactly one event per offer, chosen by a deterministic,
//!   seeded, priority-aware policy: IS-IS transitions
//!   ([`EventClass::Critical`]) outlive syslog link/adjacency DOWN/UP
//!   messages ([`EventClass::Important`]), which outlive line-protocol
//!   chatter ([`EventClass::Chatter`]). Within the lowest-priority class
//!   a seeded coin decides between evicting the oldest queued event and
//!   refusing the newcomer, so periodic bursts cannot phase-lock with
//!   the shedding decision — yet every decision is a pure function of
//!   `(seed, offer sequence)` and replays bit-for-bit.
//!
//! Every shed event is counted, by class and by mechanism, in
//! [`OverloadCounters`] (a section of
//! [`crate::observe::PipelineReport`]), and the ledger balances
//! **exactly**: once the queue is drained,
//! `admitted + shed + quarantined == offered` — no event is ever
//! unaccounted for, under any interleaving of offers and drains.
//!
//! Shedding happens *upstream* of classification, threading, and shard
//! partitioning, so the surviving stream — and therefore the flushed
//! [`crate::streaming::StreamOutput`] — is byte-identical for every
//! thread count and every cluster shard count (`tests/overload.rs` pins
//! this with a property test over threads × shards).
//!
//! [`run_overloaded`] and [`run_overloaded_cluster`] drive a whole
//! offered stream through the controller on a **simulated clock**
//! ([`SimSchedule`]): per tick, up to `offered_per_tick` events arrive
//! and up to `drained_per_tick` are served. Breaking points found this
//! way are machine-independent, which is what lets CI gate the capacity
//! headline (see `crates/loadgen`).

use crate::analysis::AnalysisConfig;
use crate::cluster::{run_cluster, ClusterConfig, ClusterResult};
use crate::error::AnalysisError;
use crate::observe::OverloadCounters;
use crate::streaming::{IngestSummary, StreamAnalysis, StreamEvent, StreamResult};
use faultline_sim::ScenarioData;
use faultline_syslog::message::LinkEventKind;
use faultline_topology::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Shedding priority of one offered event, highest first. The ordering
/// encodes the paper's finding: the IS-IS feed is the trustworthy
/// failure signal, syslog link/adjacency DOWN/UP messages corroborate
/// it, and line-protocol chatter is the first thing an overloaded
/// collector can afford to lose (resolution already skips it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventClass {
    /// IS-IS listener transitions: the reference failure signal.
    Critical = 0,
    /// Syslog link and IS-IS adjacency DOWN/UP messages.
    Important = 1,
    /// Syslog line-protocol chatter.
    Chatter = 2,
}

impl EventClass {
    /// Classify one offered event for shedding priority.
    pub fn of(event: &StreamEvent) -> EventClass {
        match event {
            StreamEvent::Isis(_) => EventClass::Critical,
            StreamEvent::Syslog(m) => match m.event.kind {
                LinkEventKind::LineProtocol => EventClass::Chatter,
                LinkEventKind::Link | LinkEventKind::IsisAdjacency { .. } => EventClass::Important,
            },
        }
    }
}

/// What a full queue does with the next offered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadPolicy {
    /// Closed loop: hand the event back ([`Offer::Blocked`]) and make
    /// the caller drain first. Lossless backpressure.
    Block,
    /// Open loop: shed exactly one event per overflowing offer, lowest
    /// [`EventClass`] first, seeded tie-break within a class.
    Shed,
}

/// Configuration of one [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Bounded ingest-queue capacity, events. The controller's memory
    /// contribution never exceeds this (clamped to at least 1).
    pub queue_capacity: usize,
    /// What happens when the queue is full.
    pub policy: OverloadPolicy,
    /// Seed for the within-class shedding tie-break. Two controllers
    /// with the same seed, config, and offer/drain sequence make
    /// identical decisions.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    /// Blocking backpressure behind a 8192-event queue.
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 8192,
            policy: OverloadPolicy::Block,
            seed: 0,
        }
    }
}

impl AdmissionConfig {
    /// A shedding controller with the given queue bound and seed.
    pub fn shedding(queue_capacity: usize, seed: u64) -> Self {
        AdmissionConfig {
            queue_capacity,
            policy: OverloadPolicy::Shed,
            seed,
        }
    }
}

/// What [`AdmissionController::offer`] did with one event.
#[derive(Debug)]
pub enum Offer {
    /// The event was enqueued. Under [`OverloadPolicy::Shed`] a
    /// lower-priority queued event may have been evicted (and counted)
    /// to make room.
    Enqueued,
    /// The event itself was shed (counted by class in
    /// [`OverloadCounters`]).
    Shed,
    /// Queue full under [`OverloadPolicy::Block`]: the event is handed
    /// back untouched and **not** counted as offered. Drain, then
    /// re-offer.
    Blocked(StreamEvent),
}

/// SplitMix64 finalizer over `(seed, sequence)` — the seeded, stateless
/// within-class tie-break. A pure function of its inputs, so shedding
/// decisions replay exactly.
fn tie_break(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The bounded-memory admission layer in front of a
/// [`StreamAnalysis`] (or a cluster of them). See the [module
/// docs](self) for the policy semantics and the conservation contract.
///
/// # Examples
///
/// ```
/// use faultline_core::admission::{AdmissionConfig, AdmissionController, Offer};
/// use faultline_core::scenario_event_stream;
/// use faultline_sim::scenario::{run, ScenarioParams};
///
/// let data = run(&ScenarioParams::tiny(7));
/// let events = scenario_event_stream(&data);
/// // A 4-event queue under the shedding policy: offers past capacity
/// // shed the lowest-priority resident (or the newcomer).
/// let mut ctl = AdmissionController::new(AdmissionConfig::shedding(4, 42));
/// for e in &events[..16.min(events.len())] {
///     match ctl.offer(e.clone()) {
///         Offer::Enqueued | Offer::Shed => {}
///         Offer::Blocked(_) => unreachable!("shed mode never blocks"),
///     }
/// }
/// let mut served = Vec::new();
/// ctl.drain(usize::MAX, &mut served);
/// let c = ctl.counters();
/// assert_eq!(c.offered, 16);
/// assert_eq!(c.shed + served.len() as u64, c.offered);
/// assert!(c.queue_high_water <= 4);
/// ```
pub struct AdmissionController {
    config: AdmissionConfig,
    /// One FIFO per [`EventClass`], entries `(offer seq, event)` in
    /// ascending seq. Global FIFO order is recovered at drain time by a
    /// three-way front comparison, and "oldest of the worst class" —
    /// the eviction victim — is a `pop_front`, so every queue operation
    /// is O(1).
    lanes: [VecDeque<(u64, StreamEvent)>; 3],
    queued: usize,
    seq: u64,
    counters: OverloadCounters,
    /// Newest timestamp offered — the arrival frontier.
    offered_frontier: Option<Timestamp>,
    /// Newest timestamp drained to the engine.
    delivered_frontier: Option<Timestamp>,
}

impl AdmissionController {
    /// A controller with an empty queue.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config: AdmissionConfig {
                queue_capacity: config.queue_capacity.max(1),
                ..config
            },
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            queued: 0,
            seq: 0,
            counters: OverloadCounters::default(),
            offered_frontier: None,
            delivered_frontier: None,
        }
    }

    /// Events currently resident in the bounded queue.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Newest event timestamp offered so far — the arrival frontier the
    /// watermark lag is measured against.
    pub fn offered_frontier(&self) -> Option<Timestamp> {
        self.offered_frontier
    }

    /// The running overload ledger. `admitted` and `quarantined` grow as
    /// [`AdmissionController::note_engine`] reports engine outcomes;
    /// once the queue is empty the ledger balances exactly
    /// ([`OverloadCounters::conserved`]).
    pub fn counters(&self) -> OverloadCounters {
        self.counters
    }

    /// Offer one event. See [`Offer`] for the three outcomes; only
    /// [`Offer::Blocked`] leaves the event unconsumed (and uncounted).
    pub fn offer(&mut self, event: StreamEvent) -> Offer {
        if self.queued >= self.config.queue_capacity {
            match self.config.policy {
                OverloadPolicy::Block => {
                    self.counters.backpressure_waits += 1;
                    return Offer::Blocked(event);
                }
                OverloadPolicy::Shed => return self.offer_shedding(event),
            }
        }
        self.enqueue(event);
        Offer::Enqueued
    }

    /// The full-queue shedding decision: victim is the lowest-priority
    /// class present (the newcomer's class included). A strictly
    /// lowest-priority newcomer is refused; otherwise the oldest queued
    /// event of the worst class is evicted — except on a class tie,
    /// where the seeded coin picks between the two so periodic arrival
    /// patterns cannot systematically win (or lose) the queue.
    fn offer_shedding(&mut self, event: StreamEvent) -> Offer {
        self.seq += 1;
        self.counters.offered += 1;
        self.note_frontier(&event);
        let class = EventClass::of(&event);
        let worst_queued = (0..3usize)
            .rev()
            .find(|&c| !self.lanes[c].is_empty())
            .map(|c| c as u8);
        // Invariant: offer_shedding only runs with a non-empty queue.
        let worst_queued = worst_queued.expect("shedding requires a resident event");
        let evict_queued = match (class as u8).cmp(&worst_queued) {
            std::cmp::Ordering::Greater => false, // newcomer is the worst
            std::cmp::Ordering::Less => true,     // a queued event is worse
            std::cmp::Ordering::Equal => tie_break(self.config.seed, self.seq) & 1 == 0,
        };
        if evict_queued {
            // Invariant: worst_queued named a non-empty lane.
            let (_, victim) = self.lanes[worst_queued as usize]
                .pop_front()
                .expect("worst lane is non-empty");
            self.queued -= 1;
            self.count_shed(EventClass::of(&victim), true);
            self.lanes[class as usize].push_back((self.seq, event));
            self.queued += 1;
            self.note_queue_high_water();
            Offer::Enqueued
        } else {
            self.count_shed(class, false);
            Offer::Shed
        }
    }

    fn enqueue(&mut self, event: StreamEvent) {
        self.seq += 1;
        self.counters.offered += 1;
        self.note_frontier(&event);
        let class = EventClass::of(&event);
        self.lanes[class as usize].push_back((self.seq, event));
        self.queued += 1;
        self.note_queue_high_water();
    }

    fn note_frontier(&mut self, event: &StreamEvent) {
        let at = event.at();
        self.offered_frontier = Some(self.offered_frontier.map_or(at, |f| f.max(at)));
    }

    fn note_queue_high_water(&mut self) {
        self.counters.queue_high_water = self.counters.queue_high_water.max(self.queued as u64);
    }

    fn count_shed(&mut self, class: EventClass, evicted: bool) {
        self.counters.shed += 1;
        match class {
            EventClass::Critical => self.counters.shed_critical += 1,
            EventClass::Important => self.counters.shed_important += 1,
            EventClass::Chatter => self.counters.shed_chatter += 1,
        }
        if evicted {
            self.counters.shed_evicted += 1;
        } else {
            self.counters.shed_refused += 1;
        }
    }

    /// Pop up to `max` queued events in offer (FIFO) order into `out`;
    /// returns how many were popped. Updates the delivered frontier and
    /// the watermark-lag high water
    /// ([`OverloadCounters::watermark_lag_max_millis`]): the gap between
    /// what has *arrived* and what has been *served*.
    pub fn drain(&mut self, max: usize, out: &mut Vec<StreamEvent>) -> usize {
        let mut popped = 0;
        while popped < max {
            let next = (0..3usize)
                .filter_map(|c| self.lanes[c].front().map(|&(seq, _)| (seq, c)))
                .min();
            let Some((_, lane)) = next else { break };
            // Invariant: `next` came from a non-empty lane front.
            let (_, event) = self.lanes[lane].pop_front().expect("front exists");
            self.queued -= 1;
            let at = event.at();
            self.delivered_frontier = Some(self.delivered_frontier.map_or(at, |f| f.max(at)));
            out.push(event);
            popped += 1;
        }
        if let (Some(offered), Some(delivered)) = (self.offered_frontier, self.delivered_frontier) {
            if let Some(lag) = offered.checked_duration_since(delivered) {
                self.counters.watermark_lag_max_millis =
                    self.counters.watermark_lag_max_millis.max(lag.as_millis());
            }
        }
        popped
    }

    /// Fold one engine batch outcome into the ledger: accepted and late
    /// events were **admitted** (they reached the engine past the
    /// quarantine gate — late ones are sub-counted in
    /// [`crate::observe::StreamingCounters::late_events`]); quarantined
    /// events keep their own column so the conservation identity stays
    /// exact.
    pub fn note_engine(&mut self, summary: &IngestSummary) {
        self.counters.admitted += summary.accepted + summary.late;
        self.counters.quarantined += summary.quarantined;
    }
}

/// The simulated clock driving [`run_overloaded`]: per tick, up to
/// `offered_per_tick` events arrive and up to `drained_per_tick` are
/// served. The ratio of the two is the overload factor — offering at
/// twice the drain rate is a sustained 2× overload — and because no
/// wall clock is involved, every breaking point derived from a schedule
/// is machine-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimSchedule {
    /// Events arriving per tick (clamped to at least 1).
    pub offered_per_tick: usize,
    /// Service capacity: events drained to the engine per tick (clamped
    /// to at least 1, so a blocked offer always eventually proceeds).
    pub drained_per_tick: usize,
}

impl SimSchedule {
    /// A schedule offering `offered` and serving `drained` events per
    /// tick.
    pub fn new(offered: usize, drained: usize) -> Self {
        SimSchedule {
            offered_per_tick: offered.max(1),
            drained_per_tick: drained.max(1),
        }
    }

    /// Offered-to-served ratio — the overload factor.
    pub fn overload_factor(&self) -> f64 {
        self.offered_per_tick as f64 / self.drained_per_tick as f64
    }
}

/// Replay the admission queue alone (no engine) over a whole offered
/// stream on the simulated clock, returning the surviving events in
/// delivery order plus the shedding ledger (`admitted`/`quarantined`
/// still zero — the caller folds engine outcomes in). Because shedding
/// runs upstream of everything else, these survivors are **the**
/// degraded stream: feeding them to one engine, four threads, or any
/// shard count yields byte-identical output.
pub fn shed_survivors(
    events: &[StreamEvent],
    admission: &AdmissionConfig,
    schedule: SimSchedule,
) -> (Vec<StreamEvent>, OverloadCounters) {
    let schedule = SimSchedule::new(schedule.offered_per_tick, schedule.drained_per_tick);
    let mut ctl = AdmissionController::new(*admission);
    let mut survivors = Vec::with_capacity(events.len().min(admission.queue_capacity.max(1) * 4));
    let mut idx = 0;
    while idx < events.len() {
        let stop = (idx + schedule.offered_per_tick).min(events.len());
        while idx < stop {
            match ctl.offer(events[idx].clone()) {
                Offer::Enqueued | Offer::Shed => idx += 1,
                Offer::Blocked(_) => {
                    // Closed loop: serve one quantum, then re-offer.
                    ctl.drain(schedule.drained_per_tick, &mut survivors);
                }
            }
        }
        ctl.drain(schedule.drained_per_tick, &mut survivors);
    }
    // End of arrivals: serve out the residue at the service rate.
    while ctl.queued() > 0 {
        ctl.drain(schedule.drained_per_tick, &mut survivors);
    }
    (survivors, ctl.counters())
}

/// Drive a whole offered stream through an [`AdmissionController`] into
/// a single [`StreamAnalysis`] on the simulated clock, and flush. The
/// returned report carries the overload ledger
/// ([`crate::observe::PipelineReport::overload`]) with the conservation
/// identity holding exactly, and the engine-side satellite counters
/// (watermark lag, arena high water) populated from the same run.
pub fn run_overloaded<'a>(
    data: &'a ScenarioData,
    config: AnalysisConfig,
    admission: &AdmissionConfig,
    schedule: SimSchedule,
    events: &[StreamEvent],
) -> Result<(StreamResult, OverloadCounters), AnalysisError> {
    let schedule = SimSchedule::new(schedule.offered_per_tick, schedule.drained_per_tick);
    let mut engine = StreamAnalysis::try_new(data, config)?;
    let mut ctl = AdmissionController::new(*admission);
    let mut batch = Vec::with_capacity(schedule.drained_per_tick);
    let mut idx = 0;
    let serve = |ctl: &mut AdmissionController,
                 engine: &mut StreamAnalysis<'a>,
                 batch: &mut Vec<StreamEvent>| {
        batch.clear();
        ctl.drain(schedule.drained_per_tick, batch);
        if !batch.is_empty() {
            let summary = engine.ingest_batch(batch);
            ctl.note_engine(&summary);
        }
        if let Some(frontier) = ctl.offered_frontier() {
            engine.note_arrival_frontier(frontier);
        }
    };
    while idx < events.len() {
        let stop = (idx + schedule.offered_per_tick).min(events.len());
        while idx < stop {
            match ctl.offer(events[idx].clone()) {
                Offer::Enqueued | Offer::Shed => idx += 1,
                Offer::Blocked(_) => serve(&mut ctl, &mut engine, &mut batch),
            }
        }
        serve(&mut ctl, &mut engine, &mut batch);
    }
    while ctl.queued() > 0 {
        serve(&mut ctl, &mut engine, &mut batch);
    }
    let counters = ctl.counters();
    debug_assert!(counters.conserved(), "overload ledger must balance");
    let mut result = engine.flush();
    result.report.overload = Some(counters);
    Ok((result, counters))
}

/// [`run_overloaded`] for a sharded cluster: shedding runs upstream of
/// the partitioner (exactly where a front-door admission layer sits),
/// the surviving stream goes through [`run_cluster`], and the merged
/// report carries the same overload ledger a single-engine run of the
/// same schedule would produce — which is what makes shed-mode replay
/// shard-count-invariant.
pub fn run_overloaded_cluster(
    data: &ScenarioData,
    events: &[StreamEvent],
    cluster: &ClusterConfig,
    admission: &AdmissionConfig,
    schedule: SimSchedule,
) -> Result<(ClusterResult, OverloadCounters), AnalysisError> {
    let (survivors, mut counters) = shed_survivors(events, admission, schedule);
    let result = run_cluster(data, &survivors, cluster)?;
    let quarantined =
        result.report.robustness.quarantined_syslog + result.report.robustness.quarantined_isis;
    counters.quarantined = quarantined;
    counters.admitted = survivors.len() as u64 - quarantined;
    debug_assert!(counters.conserved(), "overload ledger must balance");
    let mut result = result;
    result.report.overload = Some(counters);
    Ok((result, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_isis::listener::{
        ReachabilityKind, Transition, TransitionDirection, TransitionSubject,
    };
    use faultline_syslog::message::{LinkEvent, SyslogMessage};
    use faultline_topology::osi::SystemId;
    use faultline_topology::router::RouterOs;

    fn syslog_event(at_ms: u64, kind: LinkEventKind) -> StreamEvent {
        StreamEvent::Syslog(SyslogMessage {
            seq: at_ms,
            event: LinkEvent {
                at: Timestamp::from_millis(at_ms),
                host: "r1".into(),
                interface: "ge-0/0/0".into(),
                kind,
                up: false,
            },
            os: RouterOs::Ios,
        })
    }

    fn isis_event(at_ms: u64) -> StreamEvent {
        StreamEvent::Isis(Transition {
            at: Timestamp::from_millis(at_ms),
            source: SystemId::from_index(1),
            kind: ReachabilityKind::IsReach,
            subject: TransitionSubject::Adjacency {
                neighbor: SystemId::from_index(2),
            },
            direction: TransitionDirection::Down,
        })
    }

    fn chatter(at_ms: u64) -> StreamEvent {
        syslog_event(at_ms, LinkEventKind::LineProtocol)
    }

    fn link(at_ms: u64) -> StreamEvent {
        syslog_event(at_ms, LinkEventKind::Link)
    }

    #[test]
    fn classes_rank_isis_above_updown_above_chatter() {
        assert_eq!(EventClass::of(&isis_event(1)), EventClass::Critical);
        assert_eq!(EventClass::of(&link(1)), EventClass::Important);
        assert_eq!(
            EventClass::of(&syslog_event(
                1,
                LinkEventKind::IsisAdjacency {
                    neighbor: "r2".into(),
                    detail: faultline_syslog::message::AdjChangeDetail::InterfaceDown,
                }
            )),
            EventClass::Important
        );
        assert_eq!(EventClass::of(&chatter(1)), EventClass::Chatter);
        assert!(EventClass::Critical < EventClass::Important);
        assert!(EventClass::Important < EventClass::Chatter);
    }

    #[test]
    fn block_policy_hands_the_event_back_uncounted() {
        let mut ctl = AdmissionController::new(AdmissionConfig {
            queue_capacity: 2,
            policy: OverloadPolicy::Block,
            seed: 0,
        });
        assert!(matches!(ctl.offer(chatter(1)), Offer::Enqueued));
        assert!(matches!(ctl.offer(chatter(2)), Offer::Enqueued));
        let Offer::Blocked(e) = ctl.offer(chatter(3)) else {
            panic!("full queue under Block must hand the event back");
        };
        let c = ctl.counters();
        assert_eq!(c.offered, 2, "a blocked offer is not an offered event");
        assert_eq!(c.backpressure_waits, 1);
        assert_eq!(c.shed, 0);
        // Drain one, re-offer: now it fits.
        let mut out = Vec::new();
        ctl.drain(1, &mut out);
        assert!(matches!(ctl.offer(e), Offer::Enqueued));
        assert_eq!(ctl.counters().offered, 3);
    }

    #[test]
    fn shed_evicts_chatter_before_updown_before_isis() {
        let mut ctl = AdmissionController::new(AdmissionConfig::shedding(2, 9));
        assert!(matches!(ctl.offer(chatter(1)), Offer::Enqueued));
        assert!(matches!(ctl.offer(chatter(2)), Offer::Enqueued));
        // Higher-priority newcomers always evict resident chatter.
        assert!(matches!(ctl.offer(link(3)), Offer::Enqueued));
        assert!(matches!(ctl.offer(isis_event(4)), Offer::Enqueued));
        let c = ctl.counters();
        assert_eq!(c.shed, 2);
        assert_eq!(c.shed_chatter, 2);
        assert_eq!(c.shed_evicted, 2);
        assert_eq!(c.shed_critical, 0);
        // With only critical+important resident, chatter itself is the
        // worst class: the newcomer is refused, nothing queued is shed.
        assert!(matches!(ctl.offer(chatter(5)), Offer::Shed));
        let c = ctl.counters();
        assert_eq!(c.shed_chatter, 3);
        assert_eq!(c.shed_refused, 1);
        assert_eq!(c.shed_critical + c.shed_important, 0);
        // The two survivors drain in offer order.
        let mut out = Vec::new();
        ctl.drain(usize::MAX, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(EventClass::of(&out[0]), EventClass::Important);
        assert_eq!(EventClass::of(&out[1]), EventClass::Critical);
    }

    #[test]
    fn drain_preserves_fifo_order_across_classes() {
        let mut ctl = AdmissionController::new(AdmissionConfig::shedding(8, 0));
        let offered = vec![
            chatter(1),
            isis_event(2),
            link(3),
            chatter(4),
            isis_event(5),
        ];
        for e in offered.clone() {
            ctl.offer(e);
        }
        let mut out = Vec::new();
        ctl.drain(usize::MAX, &mut out);
        let times: Vec<u64> = out.iter().map(|e| e.at().as_millis()).collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5], "no shedding, exact FIFO");
    }

    #[test]
    fn shedding_is_deterministic_in_the_seed() {
        let stream: Vec<StreamEvent> = (0..500)
            .map(|i| match i % 5 {
                0 => isis_event(i * 10),
                1 | 2 => link(i * 10),
                _ => chatter(i * 10),
            })
            .collect();
        let schedule = SimSchedule::new(20, 7);
        let cfg = AdmissionConfig::shedding(16, 1234);
        let (a, ca) = shed_survivors(&stream, &cfg, schedule);
        let (b, cb) = shed_survivors(&stream, &cfg, schedule);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        // A different seed may pick different within-class victims but
        // never sheds a different *number* under the same schedule.
        let (c, cc) = shed_survivors(&stream, &AdmissionConfig::shedding(16, 99), schedule);
        assert_eq!(ca.shed, cc.shed);
        assert_eq!(ca.offered, cc.offered);
        assert_ne!(a, c, "seed changes within-class victims");
    }

    #[test]
    fn survivor_count_balances_against_shed() {
        let stream: Vec<StreamEvent> = (0..2_000).map(|i| chatter(i * 3)).collect();
        let (survivors, c) = shed_survivors(
            &stream,
            &AdmissionConfig::shedding(64, 5),
            SimSchedule::new(10, 4),
        );
        assert!(c.shed > 0, "2.5x overload must shed");
        assert_eq!(c.offered, 2_000);
        assert_eq!(survivors.len() as u64 + c.shed, c.offered);
        assert!(c.queue_high_water <= 64);
        assert!(c.watermark_lag_max_millis > 0, "a backlog implies lag");
    }

    #[test]
    fn block_policy_never_sheds_and_serves_everything() {
        let stream: Vec<StreamEvent> = (0..1_000).map(|i| link(i * 2)).collect();
        let (survivors, c) = shed_survivors(
            &stream,
            &AdmissionConfig {
                queue_capacity: 32,
                policy: OverloadPolicy::Block,
                seed: 0,
            },
            SimSchedule::new(50, 8),
        );
        assert_eq!(c.shed, 0);
        assert_eq!(survivors.len(), 1_000);
        assert!(c.backpressure_waits > 0, "6x overload must backpressure");
        assert!(c.queue_high_water <= 32);
    }
}
