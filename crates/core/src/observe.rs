//! Per-stage observability for the analysis pipeline.
//!
//! Production log-analysis systems live or die on knowing where time and
//! items go: events ingested, transitions derived, failures
//! reconstructed, matches made, items dropped by sanitization. This
//! module is that accounting layer. [`crate::analysis::Analysis::run`]
//! stamps each stage into a [`PipelineReport`] that rides along with the
//! results; [`crate::export`] serializes it to JSON/CSV for
//! `BENCH_*.json`-style datapoints.
//!
//! Narration: set `RUST_LOG=faultline_core=debug` (or
//! `FAULTLINE_TRACE=1`) and every recorded stage prints a one-line
//! summary to stderr as the pipeline runs. The check is a cheap
//! `OnceLock`-cached environment probe, so disabled narration costs one
//! branch per stage.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;
use std::time::Duration as WallDuration;

/// One pipeline stage's accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageReport {
    /// Stable stage identifier. The batch driver records `link_table`,
    /// `classify`, `lane_apply`, and `collect`; the streaming driver
    /// records `link_table`, `stream_ingest`, and `stream_flush`.
    pub stage: String,
    /// Items entering the stage.
    pub items_in: u64,
    /// Items leaving the stage.
    pub items_out: u64,
    /// Wall-clock time spent, microseconds.
    pub wall_micros: u64,
}

impl StageReport {
    /// Wall time in milliseconds.
    pub fn wall_millis(&self) -> f64 {
        self.wall_micros as f64 / 1_000.0
    }

    /// Input items per second; `0.0` for an instantaneous stage.
    pub fn throughput(&self) -> f64 {
        if self.wall_micros == 0 {
            0.0
        } else {
            self.items_in as f64 * 1e6 / self.wall_micros as f64
        }
    }
}

/// Headline item counters across the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineCounters {
    /// Raw syslog messages offered to resolution.
    pub syslog_ingested: u64,
    /// Raw listener transitions offered to the link-level merges (IS and
    /// IP reachability).
    pub isis_ingested: u64,
    /// Link-level transitions derived (IS + IP + deduplicated syslog).
    pub transitions_derived: u64,
    /// Failures reconstructed before sanitization, both sources.
    pub failures_reconstructed: u64,
    /// Failures surviving sanitization and the multi-link filter, both
    /// sources.
    pub failures_after_sanitize: u64,
    /// Failures dropped between reconstruction and matching (listener
    /// outages, unverified long failures, multi-link members).
    pub sanitize_dropped: u64,
    /// Exact failure matches across the two sources.
    pub failures_matched: u64,
    /// Ambiguous double-message periods seen during reconstruction, both
    /// sources.
    pub ambiguous_periods: u64,
}

/// Counters specific to a [`crate::streaming::StreamAnalysis`] run;
/// absent (`None`) on batch runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingCounters {
    /// Total events consumed (`syslog_events + isis_events`).
    pub events_ingested: u64,
    /// Syslog messages consumed.
    pub syslog_events: u64,
    /// IS-IS listener transitions consumed.
    pub isis_events: u64,
    /// Micro-batches ingested via `ingest_batch` (0 when fed one event
    /// at a time).
    pub batches: u64,
    /// Events arriving with a timestamp behind the watermark.
    pub late_events: u64,
    /// Per-link match segments finalized before flush (quiet-gap closes).
    pub segments_closed: u64,
    /// High-water mark of items held in mutable per-link state.
    pub open_state_high_water: u64,
    /// High-water mark of events resident in the micro-batch grouping
    /// arena — the other half of the engine's bounded working memory.
    #[serde(default)]
    pub arena_events_high_water: u64,
    /// Worst observed gap between the arrival frontier the driver
    /// reported (`StreamAnalysis::note_arrival_frontier`) and the
    /// engine's watermark, in simulated milliseconds. 0 when the driver
    /// never reported a frontier (no admission layer in front).
    #[serde(default)]
    pub watermark_lag_max_millis: u64,
    /// Open or pending failures only finalized by `flush`.
    pub finalized_at_flush: u64,
    /// Flapping episodes observed on the sanitized IS-IS stream.
    pub flap_episodes: u64,
    /// End-to-end ingest rate, events per wall-clock second.
    pub events_per_sec: f64,
}

/// Accounting for the crash-safety layer around a streaming run
/// ([`crate::recovery::DurableStream`]): checkpoints written, journal
/// growth, and — after a recovery — how much state came back from disk.
/// Absent (`None`) on runs that did not go through the durability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DurabilityCounters {
    /// Checkpoints successfully written (post-retry).
    pub checkpoints_written: u64,
    /// Size in bytes of the most recent checkpoint payload.
    pub checkpoint_bytes_last: u64,
    /// Slowest single checkpoint write, microseconds (serialize + fsync
    /// + rename, excluding retries' backoff).
    pub checkpoint_write_micros_max: u64,
    /// Checkpoint write attempts that failed and were retried.
    pub checkpoint_retries: u64,
    /// Events appended to the write-ahead journal this run.
    pub journal_records: u64,
    /// Journal segments started this run (1 unless rotation kicked in).
    pub journal_segments: u64,
    /// Bytes appended to the journal this run.
    pub journal_bytes: u64,
    /// Group-commit `fsync` calls issued on journal segments this run
    /// (0 unless [`crate::recovery::DurabilityPolicy`] sets
    /// `fsync_every_n_records`).
    #[serde(default)]
    pub journal_fsyncs: u64,
    /// Recoveries this engine instance went through (0 for an
    /// uninterrupted run, 1 when built by the recovery supervisor).
    pub restores: u64,
    /// Journal events replayed into the engine during recovery.
    pub events_replayed: u64,
    /// Torn journal records dropped at a segment tail during recovery.
    pub journal_truncated_records: u64,
    /// Incremental delta snapshots successfully written (a subset of
    /// `checkpoints_written`; the rest were full bases).
    #[serde(default)]
    pub deltas_written: u64,
    /// Total bytes across all delta snapshots written this run.
    #[serde(default)]
    pub delta_bytes_total: u64,
    /// Total bytes across all full base checkpoints written this run.
    #[serde(default)]
    pub full_bytes_total: u64,
    /// Deltas the last recovery applied on top of its full base (0 when
    /// the restored tip was itself a full checkpoint, or no recovery
    /// happened).
    #[serde(default)]
    pub chain_length_at_recovery: u64,
    /// Times the ingest thread blocked because the snapshot writer's
    /// bounded hand-off queue was full (backpressure).
    #[serde(default)]
    pub snapshot_thread_stalls: u64,
    /// Cadence snapshots forced onto the synchronous write path after
    /// the off-thread writer exhausted its retries.
    #[serde(default)]
    pub snapshot_sync_fallbacks: u64,
    /// Wall-clock time the ingest thread spent inside the snapshot
    /// section (capture + hand-off on the offloaded path; the whole
    /// write when synchronous), microseconds.
    #[serde(default)]
    pub ingest_stall_micros: u64,
    /// [`DurabilityCounters::snapshot_thread_stalls`] per wall-clock
    /// second of the run so far — the per-second surfacing of
    /// snapshot-writer backpressure that capacity SLOs gate on. A raw
    /// stall *count* looks fine on a long run while the writer is
    /// actually saturated; the rate does not.
    #[serde(default)]
    pub snapshot_stall_rate_per_sec: f64,
}

/// What the pipeline refused or quarantined instead of crashing on: the
/// graceful-degradation side of the ledger. All zeros on a clean run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessCounters {
    /// Raw archive lines behind the parsed messages.
    pub raw_lines: u64,
    /// Lines the parser classified as malformed (counted, never fatal).
    pub malformed_lines: u64,
    /// Well-formed lines with non-studied mnemonics.
    pub irrelevant_lines: u64,
    /// Syslog messages quarantined: text timestamp beyond the configured
    /// horizon ([`crate::analysis::AnalysisConfig::quarantine_horizon`]).
    pub quarantined_syslog: u64,
    /// Listener transitions quarantined past the same horizon.
    pub quarantined_isis: u64,
}

impl RobustnessCounters {
    /// Total items diverted away from the reconstruction state machines.
    pub fn total_quarantined(&self) -> u64 {
        self.quarantined_syslog + self.quarantined_isis
    }
}

/// The overload ledger of an admission-controlled run
/// ([`crate::admission::AdmissionController`]): what arrived, what the
/// engine served, what the quarantine gate diverted, and — under the
/// shedding policy — exactly what was dropped, by priority class and by
/// mechanism. Absent (`None`) on runs without an admission layer.
///
/// The ledger balances **exactly** once the queue has drained:
/// [`OverloadCounters::conserved`] checks
/// `admitted + shed + quarantined == offered`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadCounters {
    /// Events offered to (and consumed by) the admission queue. Offers
    /// bounced by blocking backpressure are *not* counted until they are
    /// re-offered and consumed.
    pub offered: u64,
    /// Events the engine accepted past the quarantine gate — admitted =
    /// accepted + late (late ones are sub-counted in
    /// [`StreamingCounters::late_events`]).
    pub admitted: u64,
    /// Events dropped by the shedding policy (refused or evicted).
    pub shed: u64,
    /// Events the engine's quarantine horizon diverted (the same events
    /// counted in [`RobustnessCounters`]).
    pub quarantined: u64,
    /// Shed IS-IS listener transitions
    /// ([`crate::admission::EventClass::Critical`] — should stay 0
    /// unless the queue holds nothing else).
    pub shed_critical: u64,
    /// Shed syslog link/adjacency DOWN/UP messages.
    pub shed_important: u64,
    /// Shed line-protocol chatter — the class designed to go first.
    pub shed_chatter: u64,
    /// Shed events that were already queued and got evicted by a
    /// higher-priority (or tie-break-winning) newcomer.
    pub shed_evicted: u64,
    /// Shed events refused at the door.
    pub shed_refused: u64,
    /// Offers bounced under [`crate::admission::OverloadPolicy::Block`]
    /// (each bounce is one drain-and-retry round trip).
    pub backpressure_waits: u64,
    /// High-water mark of events resident in the bounded queue — the
    /// admission layer's memory bound, never above the configured
    /// capacity.
    pub queue_high_water: u64,
    /// Worst observed arrival-frontier-to-delivery-frontier gap in
    /// simulated milliseconds — how far behind the newest arrival the
    /// service fell.
    pub watermark_lag_max_millis: u64,
}

impl OverloadCounters {
    /// The exact-conservation identity: every offered event is admitted,
    /// shed, or quarantined — true for any finished (fully drained,
    /// engine-acknowledged) run.
    pub fn conserved(&self) -> bool {
        self.admitted + self.shed + self.quarantined == self.offered
    }

    /// Fraction of offered events shed; 0.0 on an empty run.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Accounting for a sharded cluster run ([`crate::cluster`]): how the
/// partitioner spread the stream, how balanced the shards were, and what
/// the supervisor had to recover. Absent (`None`) on single-process
/// runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardCounters {
    /// Worker shards the run used.
    pub shards: u32,
    /// Events routed to each shard, in shard order.
    pub events_per_shard: Vec<u64>,
    /// Links the partitioner assigned to each shard, in shard order.
    pub links_per_shard: Vec<u64>,
    /// Busiest shard's event count.
    pub max_shard_events: u64,
    /// Quietest shard's event count.
    pub min_shard_events: u64,
    /// Load skew: busiest shard's events over the per-shard mean (1.0 is
    /// perfectly balanced; 0.0 when the stream was empty).
    pub skew: f64,
    /// Shards the supervisor recovered mid-run (0 on a healthy run).
    pub recovery_events: u64,
    /// Wall time the deterministic aggregator spent merging shard
    /// outputs, microseconds.
    pub merge_micros: u64,
}

/// Accounting for the shard transport under a cluster run
/// ([`crate::transport::ShardTransport`]): frames and bytes exchanged
/// between the dispatcher and its workers, worker lifecycle events, and
/// the cost of live lane migration. Absent (`None`) on runs that did
/// not go through a transport. Byte counters stay 0 on the in-process
/// transport, which moves messages without serializing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportCounters {
    /// Frames the dispatcher sent to workers.
    pub frames_sent: u64,
    /// Frames the dispatcher received from workers.
    pub frames_received: u64,
    /// Serialized bytes sent (subprocess transport only).
    pub bytes_sent: u64,
    /// Serialized bytes received (subprocess transport only).
    pub bytes_received: u64,
    /// Workers started over the transport's lifetime (initial spawns,
    /// respawns, and live-reshard growth).
    pub workers_spawned: u64,
    /// Workers respawned after the supervisor observed their death.
    pub worker_restarts: u64,
    /// Workers the supervisor killed deliberately (chaos injection).
    pub workers_killed: u64,
    /// Per-link lanes moved between workers by live resharding.
    pub lanes_migrated: u64,
    /// Wall time spent exporting, shipping, and importing migrated
    /// lanes, microseconds.
    pub migration_micros: u64,
}

/// Per-stage counters and wall-clock timings for one
/// [`crate::analysis::Analysis`] run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Effective worker-thread count the run used.
    pub threads: usize,
    /// Per-stage accounting, in execution order.
    pub stages: Vec<StageReport>,
    /// Headline counters.
    pub counters: PipelineCounters,
    /// Streaming-specific counters; `None` for batch runs.
    #[serde(default)]
    pub streaming: Option<StreamingCounters>,
    /// Durability-layer counters; `None` unless the run was wrapped in
    /// [`crate::recovery::DurableStream`].
    #[serde(default)]
    pub durability: Option<DurabilityCounters>,
    /// Overload/admission ledger; `None` unless the run went through an
    /// [`crate::admission::AdmissionController`].
    #[serde(default)]
    pub overload: Option<OverloadCounters>,
    /// Degradation accounting (malformed lines, quarantined items).
    #[serde(default)]
    pub robustness: RobustnessCounters,
    /// Sharded-cluster counters; `None` unless the run came from
    /// [`crate::cluster::run_cluster`] or its durable sibling.
    #[serde(default)]
    pub cluster: Option<ShardCounters>,
    /// Shard-transport counters; `None` unless the run's shards spoke
    /// through a [`crate::transport::ShardTransport`].
    #[serde(default)]
    pub transport: Option<TransportCounters>,
    /// End-to-end wall time, microseconds.
    pub total_micros: u64,
}

impl PipelineReport {
    /// New empty report for a run with `threads` workers.
    pub fn new(threads: usize) -> Self {
        PipelineReport {
            threads,
            ..PipelineReport::default()
        }
    }

    /// Record a completed stage; narrates it when tracing is enabled.
    pub fn record_stage(&mut self, stage: &str, items_in: u64, items_out: u64, wall: WallDuration) {
        let wall_micros = wall.as_micros() as u64;
        narrate(|| {
            format!(
                "stage {stage:<16} {items_in:>9} -> {items_out:>9} items  {:>10.3} ms",
                wall_micros as f64 / 1_000.0
            )
        });
        self.stages.push(StageReport {
            stage: stage.to_string(),
            items_in,
            items_out,
            wall_micros,
        });
    }

    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// End-to-end wall time in milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.total_micros as f64 / 1_000.0
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline report: {} stages, {:.3} ms total, {} thread(s)",
            self.stages.len(),
            self.total_millis(),
            self.threads
        )?;
        writeln!(
            f,
            "  {:<16} {:>10} {:>10} {:>11} {:>12}",
            "stage", "items in", "items out", "wall (ms)", "items/s"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<16} {:>10} {:>10} {:>11.3} {:>12.0}",
                s.stage,
                s.items_in,
                s.items_out,
                s.wall_millis(),
                s.throughput()
            )?;
        }
        let c = &self.counters;
        writeln!(
            f,
            "  ingested {} syslog + {} isis; {} transitions derived",
            c.syslog_ingested, c.isis_ingested, c.transitions_derived
        )?;
        writeln!(
            f,
            "  failures: {} reconstructed, {} after sanitize ({} dropped), {} matched; {} ambiguous periods",
            c.failures_reconstructed,
            c.failures_after_sanitize,
            c.sanitize_dropped,
            c.failures_matched,
            c.ambiguous_periods
        )?;
        let r = &self.robustness;
        if *r != RobustnessCounters::default() {
            writeln!(
                f,
                "  robustness: {} raw lines ({} malformed, {} irrelevant), {} syslog + {} isis quarantined",
                r.raw_lines,
                r.malformed_lines,
                r.irrelevant_lines,
                r.quarantined_syslog,
                r.quarantined_isis
            )?;
        }
        if let Some(s) = &self.streaming {
            writeln!(
                f,
                "  streaming: {} events in {} batches ({:.0}/s), {} late, {} segments closed, hwm {} open / {} arena, lag {} ms, {} finalized at flush",
                s.events_ingested,
                s.batches,
                s.events_per_sec,
                s.late_events,
                s.segments_closed,
                s.open_state_high_water,
                s.arena_events_high_water,
                s.watermark_lag_max_millis,
                s.finalized_at_flush
            )?;
        }
        if let Some(o) = &self.overload {
            writeln!(
                f,
                "  overload: {} offered = {} admitted + {} shed + {} quarantined ({}), shed {}/{}/{} crit/imp/chatter ({} evicted, {} refused), {} waits, queue hwm {}, lag {} ms",
                o.offered,
                o.admitted,
                o.shed,
                o.quarantined,
                if o.conserved() { "conserved" } else { "UNBALANCED" },
                o.shed_critical,
                o.shed_important,
                o.shed_chatter,
                o.shed_evicted,
                o.shed_refused,
                o.backpressure_waits,
                o.queue_high_water,
                o.watermark_lag_max_millis
            )?;
        }
        if let Some(d) = &self.durability {
            writeln!(
                f,
                "  durability: {} checkpoints ({} deltas, last {} B, worst {:.3} ms, {} retries, {} stalls @ {:.2}/s, {} sync fallbacks), {} journal records in {} segments ({} B), {} restores ({} replayed, {} torn, chain {})",
                d.checkpoints_written,
                d.deltas_written,
                d.checkpoint_bytes_last,
                d.checkpoint_write_micros_max as f64 / 1_000.0,
                d.checkpoint_retries,
                d.snapshot_thread_stalls,
                d.snapshot_stall_rate_per_sec,
                d.snapshot_sync_fallbacks,
                d.journal_records,
                d.journal_segments,
                d.journal_bytes,
                d.restores,
                d.events_replayed,
                d.journal_truncated_records,
                d.chain_length_at_recovery
            )?;
        }
        if let Some(c) = &self.cluster {
            writeln!(
                f,
                "  cluster: {} shards, {}..{} events/shard (skew {:.2}), {} recoveries, merge {:.3} ms",
                c.shards,
                c.min_shard_events,
                c.max_shard_events,
                c.skew,
                c.recovery_events,
                c.merge_micros as f64 / 1_000.0
            )?;
        }
        if let Some(t) = &self.transport {
            writeln!(
                f,
                "  transport: {} frames out / {} in ({} B out / {} B in), {} spawned ({} restarts, {} killed), {} lanes migrated in {:.3} ms",
                t.frames_sent,
                t.frames_received,
                t.bytes_sent,
                t.bytes_received,
                t.workers_spawned,
                t.worker_restarts,
                t.workers_killed,
                t.lanes_migrated,
                t.migration_micros as f64 / 1_000.0
            )?;
        }
        Ok(())
    }
}

/// True when pipeline narration is enabled: `FAULTLINE_TRACE` set to
/// anything but `0`, or a `RUST_LOG` directive enabling `debug`/`trace`
/// globally or for `faultline_core`.
pub fn narration_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if std::env::var_os("FAULTLINE_TRACE").is_some_and(|v| v != "0") {
            return true;
        }
        match std::env::var("RUST_LOG") {
            Ok(spec) => spec.split(',').any(|directive| {
                let d = directive.trim().to_ascii_lowercase();
                matches!(d.as_str(), "debug" | "trace")
                    || d.strip_prefix("faultline_core=")
                        .is_some_and(|lvl| lvl == "debug" || lvl == "trace")
            }),
            Err(_) => false,
        }
    })
}

/// Emit a lazily-formatted narration line to stderr when enabled.
pub fn narrate(line: impl FnOnce() -> String) {
    if narration_enabled() {
        eprintln!("[faultline_core] {}", line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        let mut r = PipelineReport::new(4);
        r.record_stage("resolve_syslog", 1000, 900, WallDuration::from_micros(1500));
        r.record_stage("reconstruct", 900, 120, WallDuration::from_micros(800));
        r.counters.syslog_ingested = 1000;
        r.counters.failures_reconstructed = 120;
        r.total_micros = 2300;
        r
    }

    #[test]
    fn stage_lookup_and_derived_quantities() {
        let r = sample();
        let s = r.stage("resolve_syslog").expect("recorded");
        assert_eq!(s.items_in, 1000);
        assert_eq!(s.items_out, 900);
        assert!((s.wall_millis() - 1.5).abs() < 1e-9);
        assert!((s.throughput() - 1000.0 * 1e6 / 1500.0).abs() < 1e-6);
        assert!(r.stage("nonexistent").is_none());
        assert!((r.total_millis() - 2.3).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_stage_has_zero_throughput() {
        let mut r = PipelineReport::new(1);
        r.record_stage("instant", 5, 5, WallDuration::ZERO);
        assert_eq!(r.stage("instant").unwrap().throughput(), 0.0);
    }

    #[test]
    fn display_names_every_stage() {
        let r = sample();
        let text = format!("{r}");
        assert!(text.contains("resolve_syslog"));
        assert!(text.contains("reconstruct"));
        assert!(text.contains("4 thread(s)"));
        assert!(text.contains("120 reconstructed"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: PipelineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.threads, 4);
        assert_eq!(back.stages.len(), 2);
        assert_eq!(back.stages[0].wall_micros, 1500);
        assert_eq!(back.counters.syslog_ingested, 1000);
        assert!(back.durability.is_none(), "absent by default");
    }

    #[test]
    fn durability_counters_render_and_round_trip() {
        let mut r = sample();
        r.durability = Some(DurabilityCounters {
            checkpoints_written: 3,
            checkpoint_bytes_last: 4096,
            checkpoint_write_micros_max: 1500,
            checkpoint_retries: 1,
            journal_records: 1000,
            journal_segments: 2,
            journal_bytes: 123_456,
            journal_fsyncs: 125,
            restores: 1,
            events_replayed: 250,
            journal_truncated_records: 1,
            deltas_written: 2,
            delta_bytes_total: 900,
            full_bytes_total: 4096,
            chain_length_at_recovery: 2,
            snapshot_thread_stalls: 4,
            snapshot_sync_fallbacks: 1,
            ingest_stall_micros: 777,
            snapshot_stall_rate_per_sec: 0.25,
        });
        let text = format!("{r}");
        assert!(text.contains("durability: 3 checkpoints (2 deltas"));
        assert!(text.contains("4 stalls @ 0.25/s"));
        assert!(text.contains("1 restores (250 replayed, 1 torn, chain 2)"));
        let back: PipelineReport =
            serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back.durability, r.durability);
    }

    #[test]
    fn transport_counters_render_and_round_trip() {
        let mut r = sample();
        assert!(!format!("{r}").contains("transport:"), "absent by default");
        r.transport = Some(TransportCounters {
            frames_sent: 42,
            frames_received: 7,
            bytes_sent: 1_000,
            bytes_received: 2_000,
            workers_spawned: 5,
            worker_restarts: 1,
            workers_killed: 1,
            lanes_migrated: 12,
            migration_micros: 2_500,
        });
        let text = format!("{r}");
        assert!(text.contains("transport: 42 frames out / 7 in"));
        assert!(text.contains("5 spawned (1 restarts, 1 killed)"));
        assert!(text.contains("12 lanes migrated in 2.500 ms"));
        let back: PipelineReport =
            serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back.transport, r.transport);
    }

    #[test]
    fn overload_counters_render_conserve_and_round_trip() {
        let mut r = sample();
        assert!(!format!("{r}").contains("overload:"), "absent by default");
        let o = OverloadCounters {
            offered: 100,
            admitted: 80,
            shed: 15,
            quarantined: 5,
            shed_critical: 0,
            shed_important: 3,
            shed_chatter: 12,
            shed_evicted: 9,
            shed_refused: 6,
            backpressure_waits: 0,
            queue_high_water: 64,
            watermark_lag_max_millis: 1500,
        };
        assert!(o.conserved());
        assert!((o.shed_fraction() - 0.15).abs() < 1e-12);
        r.overload = Some(o);
        let text = format!("{r}");
        assert!(text
            .contains("overload: 100 offered = 80 admitted + 15 shed + 5 quarantined (conserved)"));
        assert!(text.contains("shed 0/3/12 crit/imp/chatter (9 evicted, 6 refused)"));
        let back: PipelineReport =
            serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back.overload, r.overload);
        let unbalanced = OverloadCounters { admitted: 79, ..o };
        assert!(!unbalanced.conserved());
        assert!(format!("{}", {
            let mut r2 = sample();
            r2.overload = Some(unbalanced);
            r2
        })
        .contains("UNBALANCED"));
    }
}
