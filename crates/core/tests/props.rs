//! Property-based tests for the analysis core: reconstruction, matching,
//! flap detection, statistics, and the KS test.

use faultline_core::flap::detect_episodes;
use faultline_core::ks::{kolmogorov_q, ks_two_sample};
use faultline_core::linktable::LinkIx;
use faultline_core::matching::{match_failures, match_transitions_to_messages};
use faultline_core::reconstruct::{reconstruct, AmbiguityStrategy};
use faultline_core::stats::{quantile_sorted, summarize, Ecdf};
use faultline_core::transitions::{LinkTransition, MessageFamily, ResolvedMessage};
use faultline_core::Failure;
use faultline_isis::listener::TransitionDirection;
use faultline_topology::time::{Duration, Timestamp};
use proptest::prelude::*;

fn arb_transitions(max_links: u32, n: usize) -> impl Strategy<Value = Vec<LinkTransition>> {
    proptest::collection::vec((0..max_links, 0u64..1_000_000, any::<bool>()), 0..n).prop_map(
        |mut v| {
            v.sort_by_key(|&(_, at, _)| at);
            v.into_iter()
                .map(|(l, at, up)| LinkTransition {
                    at: Timestamp::from_secs(at),
                    link: LinkIx(l),
                    direction: if up {
                        TransitionDirection::Up
                    } else {
                        TransitionDirection::Down
                    },
                })
                .collect()
        },
    )
}

fn arb_failures(max_links: u32, n: usize) -> impl Strategy<Value = Vec<Failure>> {
    proptest::collection::vec((0..max_links, 0u64..1_000_000, 1u64..10_000), 0..n).prop_map(
        |mut v| {
            v.sort();
            let mut out: Vec<Failure> = Vec::new();
            for (l, start, d) in v {
                let f = Failure {
                    link: LinkIx(l),
                    start: Timestamp::from_secs(start),
                    end: Timestamp::from_secs(start + d),
                };
                // Keep per-link disjointness (the reconstruction contract).
                if out
                    .iter()
                    .all(|g| g.link != f.link || g.end < f.start || f.end < g.start)
                {
                    out.push(f);
                }
            }
            out.sort_by_key(|f| (f.link, f.start));
            out
        },
    )
}

proptest! {
    /// Reconstruction invariants under every strategy: failures are
    /// positive-length, per-link disjoint, sorted, and bounded by the
    /// stream's extent; counters are consistent.
    #[test]
    fn reconstruction_invariants(
        transitions in arb_transitions(5, 200),
        strategy_pick in 0u8..3,
    ) {
        let strategy = match strategy_pick {
            0 => AmbiguityStrategy::PreviousState,
            1 => AmbiguityStrategy::AssumeDown,
            _ => AmbiguityStrategy::AssumeUp,
        };
        let r = reconstruct(&transitions, strategy);
        for w in r.failures.windows(2) {
            if w[0].link == w[1].link {
                prop_assert!(w[0].end <= w[1].start, "overlap: {:?} {:?}", w[0], w[1]);
            }
        }
        for f in &r.failures {
            prop_assert!(f.end >= f.start);
            if let (Some(first), Some(last)) = (transitions.first(), transitions.last()) {
                prop_assert!(f.start >= first.at && f.end <= last.at);
            }
        }
        // Downtime is bounded by (#links × stream span).
        if let (Some(first), Some(last)) = (transitions.first(), transitions.last()) {
            let span = (last.at - first.at).as_millis();
            prop_assert!(r.total_downtime().as_millis() <= span * 5 + 1);
        }
    }

    /// Strategy ordering: AssumeDown never yields less downtime than
    /// AssumeUp on the same stream (previous-state sits in between for
    /// each ambiguous period, though not necessarily globally).
    #[test]
    fn strategy_downtime_ordering(transitions in arb_transitions(3, 120)) {
        let down = reconstruct(&transitions, AmbiguityStrategy::AssumeDown).total_downtime();
        let up = reconstruct(&transitions, AmbiguityStrategy::AssumeUp).total_downtime();
        prop_assert!(down >= up, "down {down:?} < up {up:?}");
    }

    /// The ambiguous-period list is identical across strategies (the
    /// strategies differ in interpretation, not detection).
    #[test]
    fn ambiguity_detection_strategy_independent(transitions in arb_transitions(4, 150)) {
        let a = reconstruct(&transitions, AmbiguityStrategy::PreviousState).ambiguous;
        let b = reconstruct(&transitions, AmbiguityStrategy::AssumeDown).ambiguous;
        let c = reconstruct(&transitions, AmbiguityStrategy::AssumeUp).ambiguous;
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// Failure matching is one-to-one, within-window, and symmetric in
    /// cardinality.
    #[test]
    fn matching_is_one_to_one(
        left in arb_failures(4, 60),
        right in arb_failures(4, 60),
    ) {
        let w = Duration::from_secs(10);
        let m = match_failures(&left, &right, w);
        // Each index appears at most once across matched+partial.
        let mut seen_l = std::collections::HashSet::new();
        let mut seen_r = std::collections::HashSet::new();
        for &(i, j) in m.matched.iter().chain(m.partial.iter()) {
            prop_assert!(seen_l.insert(i));
            prop_assert!(seen_r.insert(j));
        }
        for &(i, j) in &m.matched {
            prop_assert_eq!(left[i].link, right[j].link);
            prop_assert!(left[i].start.abs_diff(right[j].start) <= w);
            prop_assert!(left[i].end.abs_diff(right[j].end) <= w);
        }
        for &(i, j) in &m.partial {
            prop_assert!(left[i].overlaps(&right[j]));
        }
        prop_assert_eq!(
            m.matched.len() + m.partial.len() + m.left_only.len(),
            left.len()
        );
        prop_assert_eq!(
            m.matched.len() + m.partial.len() + m.right_only.len(),
            right.len()
        );
    }

    /// Matching a failure set against itself matches everything exactly.
    #[test]
    fn self_matching_is_perfect(fails in arb_failures(4, 80)) {
        let m = match_failures(&fails, &fails, Duration::from_secs(10));
        prop_assert_eq!(m.matched.len(), fails.len());
        prop_assert!(m.partial.is_empty());
        prop_assert!(m.left_only.is_empty() && m.right_only.is_empty());
    }

    /// Transition-to-message matching accounts for every transition.
    #[test]
    fn transition_match_totals(
        transitions in arb_transitions(3, 80),
        hosts in proptest::collection::vec(any::<bool>(), 0..80),
    ) {
        let messages: Vec<ResolvedMessage> = transitions
            .iter()
            .zip(hosts.iter().cycle())
            .map(|(t, h)| ResolvedMessage {
                at: t.at,
                link: t.link,
                direction: t.direction,
                family: MessageFamily::IsisAdjacency,
                host: if *h { "a".into() } else { "b".into() },
                detail: None,
            })
            .collect();
        let (down, up) = match_transitions_to_messages(
            &transitions,
            &messages,
            Duration::from_secs(10),
        );
        let downs = transitions
            .iter()
            .filter(|t| t.direction == TransitionDirection::Down)
            .count() as u64;
        let ups = transitions.len() as u64 - downs;
        prop_assert_eq!(down.total(), downs);
        prop_assert_eq!(up.total(), ups);
    }

    /// Flap episodes cover only same-link runs and never overlap.
    #[test]
    fn flap_episodes_well_formed(fails in arb_failures(5, 100)) {
        let eps = detect_episodes(&fails, Duration::from_secs(600));
        for e in &eps {
            prop_assert!(e.count >= 2);
            prop_assert!(e.from <= e.to);
        }
        for w in eps.windows(2) {
            if w[0].link == w[1].link {
                prop_assert!(w[0].to < w[1].from);
            }
        }
    }

    /// Summaries are ordered: median <= p95 and min <= mean <= max.
    #[test]
    fn summary_ordering(mut xs in proptest::collection::vec(0.0f64..1e9, 1..200)) {
        let s = summarize(&xs);
        prop_assert!(s.median <= s.p95 + 1e-9);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(s.mean >= xs[0] - 1e-9 && s.mean <= xs[xs.len() - 1] + 1e-9);
        prop_assert!((quantile_sorted(&xs, 0.0) - xs[0]).abs() < 1e-9);
        prop_assert!((quantile_sorted(&xs, 1.0) - xs[xs.len() - 1]).abs() < 1e-9);
    }

    /// ECDFs are monotone non-decreasing with range [0, 1].
    #[test]
    fn ecdf_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let e = Ecdf::new(xs);
        let mut prev = 0.0;
        for q in [-1e7, -10.0, 0.0, 1.0, 100.0, 1e7] {
            let v = e.at(q);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// KS: D(x, x) = 0; D in [0, 1]; statistic is symmetric.
    #[test]
    fn ks_properties(
        a in proptest::collection::vec(-1e3f64..1e3, 1..80),
        b in proptest::collection::vec(-1e3f64..1e3, 1..80),
    ) {
        let same = ks_two_sample(&a, &a);
        prop_assert_eq!(same.statistic, 0.0);
        let r1 = ks_two_sample(&a, &b);
        let r2 = ks_two_sample(&b, &a);
        prop_assert!((r1.statistic - r2.statistic).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&r1.statistic));
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
    }

    /// Kolmogorov Q is monotone decreasing.
    #[test]
    fn kolmogorov_q_monotone(x in 0.0f64..3.0, d in 0.001f64..1.0) {
        prop_assert!(kolmogorov_q(x) >= kolmogorov_q(x + d) - 1e-12);
    }
}
