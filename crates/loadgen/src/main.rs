//! `faultline-loadgen` — find the breaking point.
//!
//! Ramps offered load against every deployment shape the repo ships —
//! single stream, sharded cluster ×{2,4,8}, durable on/off — until an
//! SLO breaks, and writes the standing capacity record to
//! `results/BENCH_capacity.json`. The simulated-clock arm's headline
//! (`deterministic_breaking_point_offered_per_tick`) is
//! machine-independent and CI-gated against the committed baseline by
//! `scripts/check_bench_regression.sh`.
//!
//! Usage:
//!
//! ```text
//! faultline-loadgen                  # full measured run (paper scale)
//! faultline-loadgen --deterministic  # simulated clock only (CI)
//! ```

use faultline_bench::{paper_event_workload, paper_params, write_bench_json};
use faultline_core::admission::{run_overloaded, AdmissionConfig, SimSchedule};
use faultline_core::transport::{locate_worker_bin, ScenarioSpec};
use faultline_core::{
    run_cluster, run_cluster_subprocess, AnalysisConfig, ClusterConfig, DurabilityPolicy,
    DurableStream, StreamAnalysis, StreamEvent, SubprocessOptions,
};
use faultline_loadgen::{
    calibrated_ramp, deterministic_capacity, jv, measure_drift, paced_ramp, percentile,
    report_json, verdict_json, PaceMode, RampVerdict, SloConfig,
};
use faultline_sim::scenario::{run, ScenarioData, ScenarioParams};
use std::path::PathBuf;
use std::time::Instant;

/// Simulated-clock arm parameters — changing any of these invalidates
/// the committed baseline on purpose.
const DET_QUEUE: usize = 64;
const DET_DRAIN_PER_TICK: usize = 8;
const DET_SEED: u64 = 7;

/// Measured-arm parameters.
const QUEUE_CAPACITY: usize = 8_192;
const SEED: u64 = 42;
const CALIBRATION_FRACTIONS: [f64; 7] = [0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5];

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("faultline-loadgen-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The deterministic arm plus its 2× sustained-overload verification:
/// bounded memory, exact conservation, measured degraded-output drift.
fn deterministic_arm() -> (RampVerdict, serde_json::Value) {
    eprintln!("deterministic arm (simulated clock, tiny scenario):");
    let data = run(&ScenarioParams::tiny(42));
    let events = faultline_core::scenario_event_stream(&data);
    let slo = SloConfig::default();
    let verdict = deterministic_capacity(
        &data,
        &events,
        DET_QUEUE,
        DET_DRAIN_PER_TICK,
        DET_SEED,
        &slo,
    )
    .expect("deterministic ramp");

    // 2× sustained overload in shed mode: the acceptance contract.
    let schedule = SimSchedule::new(2 * DET_DRAIN_PER_TICK, DET_DRAIN_PER_TICK);
    let admission = AdmissionConfig::shedding(DET_QUEUE, DET_SEED);
    let (result, counters) = run_overloaded(
        &data,
        AnalysisConfig::default(),
        &admission,
        schedule,
        &events,
    )
    .expect("2x overload run");
    assert!(
        counters.conserved(),
        "2x overload must conserve: {counters:?}"
    );
    assert!(
        counters.queue_high_water <= DET_QUEUE as u64,
        "queue must stay bounded"
    );
    assert!(counters.shed > 0, "2x overload must shed");
    assert!(
        result.report.overload.is_some(),
        "report must carry the overload ledger"
    );

    // Degraded-mode drift vs the unshedded answer, measured.
    let mut clean_engine =
        StreamAnalysis::try_new(&data, AnalysisConfig::default()).expect("clean engine");
    for chunk in events.chunks(1_024) {
        clean_engine.ingest_batch(chunk);
    }
    let clean = clean_engine.flush();
    let drift = measure_drift(&result.output, &clean.output);
    eprintln!(
        "  2x overload: shed {:.3} of offered, drift syslog {:.3}/isis {:.3}",
        counters.shed_fraction(),
        drift.syslog_failure_count,
        drift.isis_failure_count
    );

    let overload_2x = serde_json::json!({
        "overload_factor": (schedule.overload_factor()),
        "queue_capacity": DET_QUEUE,
        "conserved": (counters.conserved()),
        "counters": (jv(&counters)),
        "drift_vs_unshedded": (jv(&drift)),
        "report": (report_json(&result.report)),
    });
    (verdict, overload_2x)
}

/// Unthrottled single-stream service rate plus batch-latency
/// percentiles — the calibration run.
fn measure_single(data: &ScenarioData, events: &[StreamEvent]) -> (f64, f64, f64) {
    let mut engine =
        StreamAnalysis::try_new(data, AnalysisConfig::default()).expect("single engine");
    let mut latencies = Vec::new();
    let t0 = Instant::now();
    for chunk in events.chunks(1_024) {
        let t = Instant::now();
        engine.ingest_batch(chunk);
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let _ = engine.flush();
    let wall = t0.elapsed().as_secs_f64();
    let rate = events.len() as f64 / wall.max(1e-9);
    let p50 = percentile(&mut latencies.clone(), 50.0);
    let p99 = percentile(&mut latencies, 99.0);
    eprintln!(
        "single-stream service rate: {rate:.0} events/s (batch p50 {p50:.0} µs, p99 {p99:.0} µs)"
    );
    (rate, p50, p99)
}

/// Unthrottled cluster service rate at `shards`.
fn measure_cluster(data: &ScenarioData, events: &[StreamEvent], shards: u32) -> f64 {
    let t0 = Instant::now();
    let result = run_cluster(data, events, &ClusterConfig::new(shards)).expect("cluster run");
    let wall = t0.elapsed().as_secs_f64();
    drop(result);
    let rate = events.len() as f64 / wall.max(1e-9);
    eprintln!("cluster x{shards} service rate: {rate:.0} events/s");
    rate
}

/// Unthrottled subprocess-cluster service rate at `shards`: every
/// worker a `faultline-shard-worker` process, every event crossing a
/// real pipe as a hashed frame — the deployment shape where transport
/// cost is part of the capacity answer. Returns `None` when the worker
/// binary is not alongside this one (set `FAULTLINE_SHARD_WORKER`).
fn measure_cluster_subprocess(
    data: &ScenarioData,
    events: &[StreamEvent],
    shards: u32,
) -> Option<f64> {
    let worker_bin = locate_worker_bin()?;
    let opts = SubprocessOptions {
        worker_bin,
        scenario: ScenarioSpec::Params(Box::new(paper_params())),
    };
    let t0 = Instant::now();
    let result = run_cluster_subprocess(data, events, &ClusterConfig::new(shards), &opts)
        .expect("subprocess cluster run");
    let wall = t0.elapsed().as_secs_f64();
    drop(result);
    let rate = events.len() as f64 / wall.max(1e-9);
    eprintln!("subprocess cluster x{shards} service rate: {rate:.0} events/s");
    Some(rate)
}

/// Unthrottled durable single-stream service rate; returns the rate and
/// the finished report (whose durability section carries the
/// snapshot-stall rate the capacity JSON must surface).
fn measure_durable(data: &ScenarioData, events: &[StreamEvent]) -> (f64, serde_json::Value) {
    let dir = scratch_dir("durable");
    let mut stream = DurableStream::create(
        &dir,
        data,
        AnalysisConfig::default(),
        DurabilityPolicy::default(),
    )
    .expect("durable stream");
    let t0 = Instant::now();
    for event in events {
        stream.ingest(event).expect("durable ingest");
    }
    let result = stream.finish();
    let wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);
    let rate = events.len() as f64 / wall.max(1e-9);
    let report = report_json(&result.report);
    // Satellite contract: the per-second snapshot stall rate is
    // surfaced in this run's report JSON.
    assert!(
        report["durability"]
            .as_object()
            .is_some_and(|d| d.contains_key("snapshot_stall_rate_per_sec")),
        "durable report must expose snapshot_stall_rate_per_sec"
    );
    eprintln!("durable service rate: {rate:.0} events/s");
    (rate, report)
}

fn main() {
    let deterministic_only = std::env::args().any(|a| a == "--deterministic");

    let (det_verdict, overload_2x) = deterministic_arm();
    let det_headline = det_verdict
        .breaking_point
        .expect("the service-rate step must pass its own SLO");

    let mut runs = vec![verdict_json("deterministic_sim_clock", &det_verdict)];
    let mut headline = serde_json::json!({
        "deterministic_breaking_point_offered_per_tick": det_headline,
    });

    if !deterministic_only {
        let (data, events) = paper_event_workload();
        let slo = SloConfig::default();

        // Single stream: calibrate, then genuinely wall-paced ramps in
        // both loop modes.
        let (single_rate, p50, p99) = measure_single(&data, &events);
        let rates: Vec<f64> = CALIBRATION_FRACTIONS
            .iter()
            .map(|f| f * single_rate)
            .collect();
        eprintln!("single-stream closed-loop ramp:");
        let closed = paced_ramp(
            &data,
            AnalysisConfig::default(),
            &events,
            &rates,
            PaceMode::ClosedLoop,
            QUEUE_CAPACITY,
            SEED,
            &slo,
        )
        .expect("closed-loop ramp");
        eprintln!("single-stream open-loop ramp:");
        let open = paced_ramp(
            &data,
            AnalysisConfig::default(),
            &events,
            &rates,
            PaceMode::OpenLoop,
            QUEUE_CAPACITY,
            SEED,
            &slo,
        )
        .expect("open-loop ramp");
        let single_bp = match (closed.breaking_point, open.breaking_point) {
            (Some(c), Some(o)) => Some(c.min(o)),
            (c, o) => c.or(o),
        };
        let mut closed_json = verdict_json("single_closed_loop", &closed);
        closed_json["calibration"] = serde_json::json!({
            "service_events_per_sec": single_rate,
            "batch_p50_micros": p50,
            "batch_p99_micros": p99,
        });
        runs.push(closed_json);
        runs.push(verdict_json("single_open_loop", &open));

        // Cluster arms: calibrate each shard count, ramp on the
        // simulated tick at the measured service rate.
        let mut cluster_bp4 = None;
        for shards in [2u32, 4, 8] {
            let rate = measure_cluster(&data, &events, shards);
            eprintln!("cluster x{shards} calibrated ramp:");
            let verdict = calibrated_ramp(
                &events,
                rate,
                &CALIBRATION_FRACTIONS,
                QUEUE_CAPACITY,
                SEED,
                &slo,
            );
            if shards == 4 {
                cluster_bp4 = verdict.breaking_point;
            }
            let mut v = verdict_json(&format!("cluster_x{shards}"), &verdict);
            v["calibration"] = serde_json::json!({ "service_events_per_sec": rate });
            runs.push(v);
        }

        // Subprocess-cluster arm: the same calibrated ramp against the
        // multi-process deployment shape, so the capacity record covers
        // the transport's serialization + pipe overhead too.
        let mut subprocess_bp4 = None;
        match measure_cluster_subprocess(&data, &events, 4) {
            Some(rate) => {
                eprintln!("subprocess cluster x4 calibrated ramp:");
                let verdict = calibrated_ramp(
                    &events,
                    rate,
                    &CALIBRATION_FRACTIONS,
                    QUEUE_CAPACITY,
                    SEED,
                    &slo,
                );
                subprocess_bp4 = verdict.breaking_point;
                let mut v = verdict_json("cluster_subprocess_x4", &verdict);
                v["calibration"] = serde_json::json!({ "service_events_per_sec": rate });
                runs.push(v);
            }
            None => eprintln!(
                "faultline-shard-worker binary not found (set FAULTLINE_SHARD_WORKER or \
                 `cargo build --release -p faultline`); skipping the subprocess-cluster arm"
            ),
        }

        // Durable arm: calibrate with the journal + off-thread snapshot
        // writer engaged; its report carries the stall-rate satellite.
        let (durable_rate, durable_report) = measure_durable(&data, &events);
        eprintln!("durable calibrated ramp:");
        let durable = calibrated_ramp(
            &events,
            durable_rate,
            &CALIBRATION_FRACTIONS,
            QUEUE_CAPACITY,
            SEED,
            &slo,
        );
        let mut v = verdict_json("durable_single", &durable);
        v["calibration"] = serde_json::json!({ "service_events_per_sec": durable_rate });
        v["report"] = durable_report;
        runs.push(v);

        headline["single_stream_breaking_point_events_per_sec"] = jv(&single_bp);
        headline["cluster4_breaking_point_events_per_sec"] = jv(&cluster_bp4);
        headline["subprocess_cluster4_breaking_point_events_per_sec"] = jv(&subprocess_bp4);
        headline["durable_breaking_point_events_per_sec"] = jv(&durable.breaking_point);
    }

    let mode = if deterministic_only {
        "deterministic"
    } else {
        "full"
    };
    let doc = serde_json::json!({
        "bench": "capacity",
        "mode": mode,
        "slo": (jv(&SloConfig::default())),
        "headline": headline,
        "overload_2x": overload_2x,
        "runs": (jv(&runs)),
    });
    write_bench_json("results/BENCH_capacity.json", &doc);
    println!(
        "headline: deterministic breaking point {det_headline} events/tick (service {DET_DRAIN_PER_TICK}/tick)"
    );
}
