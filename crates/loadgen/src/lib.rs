//! The capacity harness: how much traffic can this system serve?
//!
//! Modeled on the Internet Computer's scalability suite, the harness
//! answers that question the only defensible way — by *finding the
//! breaking point*: offer load at a target rate, check the SLOs
//! ([`SloConfig`]), raise the rate, and repeat until one breaks. The
//! last passing rate is the capacity, and `results/BENCH_capacity.json`
//! is the standing, regression-gated record of it.
//!
//! Three ways of offering load, all through `faultline-core`'s
//! admission layer ([`faultline_core::admission`]):
//!
//! - **Closed loop** ([`PaceMode::ClosedLoop`], [`paced_run`]): arrivals
//!   are paced on the wall clock against a blocking
//!   ([`OverloadPolicy::Block`]) queue. Nothing is lost; a too-slow sink
//!   falls behind schedule, and the keep-up ratio (achieved/target)
//!   breaks the SLO.
//! - **Open loop** ([`PaceMode::OpenLoop`], [`paced_run`]): arrivals are
//!   paced on the wall clock against a shedding queue. The sink never
//!   slows arrival; a too-slow sink sheds, and the shed fraction breaks
//!   the SLO.
//! - **Simulated clock** ([`deterministic_capacity`]): arrivals and
//!   service both run on [`SimSchedule`] ticks, so the breaking point is
//!   a pure function of the event stream and the schedule —
//!   machine-independent, which is what lets CI gate the
//!   `deterministic_breaking_point_offered_per_tick` headline exactly.
//!
//! Sinks that cannot be paced incrementally (the sharded cluster, which
//! consumes its whole substream inside [`faultline_core::run_cluster`])
//! are measured by *calibration* ([`calibrated_ramp`]): one unthrottled
//! run measures the service rate, then the ramp replays the admission
//! queue on a simulated 1 ms tick with that service rate, walking
//! offered rates until the shed-fraction SLO breaks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use faultline_core::admission::{
    run_overloaded, AdmissionConfig, AdmissionController, Offer, OverloadPolicy, SimSchedule,
};
use faultline_core::{
    shed_survivors, AnalysisConfig, OverloadCounters, PipelineReport, StreamAnalysis, StreamEvent,
    StreamResult,
};
use faultline_sim::ScenarioData;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The service-level objectives a load step must meet to pass. Any
/// `None` objective is not enforced (but the metric is still recorded).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Maximum fraction of offered events shed (open-loop/simulated).
    pub max_shed_fraction: f64,
    /// Minimum achieved/target rate ratio (closed-loop keep-up).
    pub min_keepup_ratio: f64,
    /// Maximum p99 per-batch ingest latency, microseconds, when the
    /// sink is driven batch-at-a-time.
    pub max_p99_batch_micros: Option<f64>,
    /// Maximum watermark lag (arrival frontier minus delivery frontier)
    /// in simulated milliseconds. Generous by default: on an event-time
    /// stream spanning months, even a small queue holds minutes of
    /// simulated time.
    pub max_watermark_lag_millis: Option<u64>,
    /// Maximum events resident in the admission queue (its memory
    /// bound). The queue never exceeds its configured capacity, so this
    /// objective catches a *mis-sized* capacity, not a leak.
    pub max_queue_high_water: Option<u64>,
}

impl Default for SloConfig {
    /// Shed at most 1%, keep up within 5%, latency/lag/memory recorded
    /// but unenforced.
    fn default() -> Self {
        SloConfig {
            max_shed_fraction: 0.01,
            min_keepup_ratio: 0.95,
            max_p99_batch_micros: None,
            max_watermark_lag_millis: None,
            max_queue_high_water: None,
        }
    }
}

/// Everything one load step measured, plus the SLO verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RampStep {
    /// Target offered rate: events/sec for wall-paced steps,
    /// events/tick for simulated-clock steps.
    pub offered_rate: f64,
    /// Rate actually achieved end-to-end in the same unit.
    pub achieved_rate: f64,
    /// Fraction of offered events shed.
    pub shed_fraction: f64,
    /// Worst watermark lag, simulated milliseconds.
    pub watermark_lag_max_millis: u64,
    /// Admission-queue high water, events.
    pub queue_high_water: u64,
    /// p50 per-batch ingest latency, microseconds (0 when the sink is
    /// not driven batch-at-a-time).
    pub p50_batch_micros: f64,
    /// p99 per-batch ingest latency, microseconds.
    pub p99_batch_micros: f64,
    /// Every objective held.
    pub passed: bool,
    /// Which objectives broke, empty when `passed`.
    pub violations: Vec<String>,
}

/// Judge one step's metrics against the SLOs.
pub fn judge(slo: &SloConfig, step: &mut RampStep) {
    let mut v = Vec::new();
    if step.shed_fraction > slo.max_shed_fraction {
        v.push(format!(
            "shed_fraction {:.4} > {:.4}",
            step.shed_fraction, slo.max_shed_fraction
        ));
    }
    if step.offered_rate > 0.0 && step.achieved_rate / step.offered_rate < slo.min_keepup_ratio {
        v.push(format!(
            "keepup {:.3} < {:.3}",
            step.achieved_rate / step.offered_rate,
            slo.min_keepup_ratio
        ));
    }
    if let Some(max) = slo.max_p99_batch_micros {
        if step.p99_batch_micros > max {
            v.push(format!(
                "p99_batch_micros {:.0} > {max:.0}",
                step.p99_batch_micros
            ));
        }
    }
    if let Some(max) = slo.max_watermark_lag_millis {
        if step.watermark_lag_max_millis > max {
            v.push(format!(
                "watermark_lag {} ms > {max} ms",
                step.watermark_lag_max_millis
            ));
        }
    }
    if let Some(max) = slo.max_queue_high_water {
        if step.queue_high_water > max {
            v.push(format!(
                "queue_high_water {} > {max}",
                step.queue_high_water
            ));
        }
    }
    step.passed = v.is_empty();
    step.violations = v;
}

/// The ramp verdict: every step walked, and the breaking point — the
/// highest offered rate whose step passed every SLO (`None` when even
/// the first step failed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RampVerdict {
    /// Steps in ramp order.
    pub steps: Vec<RampStep>,
    /// Highest passing offered rate.
    pub breaking_point: Option<f64>,
}

impl RampVerdict {
    /// Collect a walked ramp into a verdict.
    pub fn from_steps(steps: Vec<RampStep>) -> Self {
        let breaking_point = steps
            .iter()
            .filter(|s| s.passed)
            .map(|s| s.offered_rate)
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.max(r)))
            });
        RampVerdict {
            steps,
            breaking_point,
        }
    }
}

/// p-th percentile (0..=100) of an unsorted sample, 0.0 when empty.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = (p / 100.0 * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// How wall-paced offering reacts to a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaceMode {
    /// Shedding queue: arrival never slows, overload sheds.
    OpenLoop,
    /// Blocking queue: arrival waits for service, overload lags.
    ClosedLoop,
}

/// Outcome of one wall-paced run: the step metrics plus the flushed
/// result (report carrying the overload ledger).
pub struct PacedOutcome {
    /// Step metrics (judged against the caller's SLOs).
    pub step: RampStep,
    /// The flushed engine result; `report.overload` is populated.
    pub result: StreamResult,
    /// The admission ledger of the run.
    pub counters: OverloadCounters,
}

/// Drive the whole event stream into one [`StreamAnalysis`] at
/// `target_events_per_sec`, paced on the wall clock. Arrivals become
/// *due* as simulated by `rate × elapsed`; due events are offered to the
/// admission queue immediately (open loop) or as the blocking queue
/// permits (closed loop), and the queue drains into the engine in
/// batches of `drain_quantum`. Every offered event is accounted:
/// `admitted + shed + quarantined == offered` holds on the returned
/// counters.
#[allow(clippy::too_many_arguments)]
pub fn paced_run(
    data: &ScenarioData,
    config: AnalysisConfig,
    events: &[StreamEvent],
    target_events_per_sec: f64,
    mode: PaceMode,
    queue_capacity: usize,
    seed: u64,
    slo: &SloConfig,
) -> Result<PacedOutcome, faultline_core::AnalysisError> {
    const DRAIN_QUANTUM: usize = 1_024;
    let admission = match mode {
        PaceMode::OpenLoop => AdmissionConfig::shedding(queue_capacity, seed),
        PaceMode::ClosedLoop => AdmissionConfig {
            queue_capacity,
            policy: OverloadPolicy::Block,
            seed,
        },
    };
    let mut engine = StreamAnalysis::try_new(data, config)?;
    let mut ctl = AdmissionController::new(admission);
    let mut batch: Vec<StreamEvent> = Vec::with_capacity(DRAIN_QUANTUM);
    let mut latencies: Vec<f64> = Vec::new();
    let rate = target_events_per_sec.max(1.0);
    let t0 = Instant::now();
    let mut next = 0usize;
    loop {
        let due = ((t0.elapsed().as_secs_f64() * rate) as usize).min(events.len());
        while next < due {
            match ctl.offer(events[next].clone()) {
                Offer::Enqueued | Offer::Shed => next += 1,
                // Closed loop: service must catch up before arrival may
                // continue — fall through to the drain below.
                Offer::Blocked(_) => break,
            }
        }
        batch.clear();
        ctl.drain(DRAIN_QUANTUM, &mut batch);
        if !batch.is_empty() {
            let t = Instant::now();
            let summary = engine.ingest_batch(&batch);
            latencies.push(t.elapsed().as_secs_f64() * 1e6);
            ctl.note_engine(&summary);
        }
        if let Some(frontier) = ctl.offered_frontier() {
            engine.note_arrival_frontier(frontier);
        }
        if next >= events.len() && ctl.queued() == 0 {
            break;
        }
        if next >= due && ctl.queued() == 0 {
            // Ahead of schedule: the next arrival is in the future.
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let counters = ctl.counters();
    debug_assert!(counters.conserved(), "paced ledger must balance");
    let mut result = engine.flush();
    result.report.overload = Some(counters);
    let achieved = if wall > 0.0 {
        events.len() as f64 / wall
    } else {
        0.0
    };
    let mut step = RampStep {
        offered_rate: rate,
        achieved_rate: achieved,
        shed_fraction: counters.shed_fraction(),
        watermark_lag_max_millis: counters.watermark_lag_max_millis,
        queue_high_water: counters.queue_high_water,
        p50_batch_micros: percentile(&mut latencies.clone(), 50.0),
        p99_batch_micros: percentile(&mut latencies, 99.0),
        passed: false,
        violations: Vec::new(),
    };
    judge(slo, &mut step);
    Ok(PacedOutcome {
        step,
        result,
        counters,
    })
}

/// Wall-paced ramp over one sink: walk `rates` (events/sec, ascending)
/// through [`paced_run`], stopping after the first failing step.
#[allow(clippy::too_many_arguments)]
pub fn paced_ramp(
    data: &ScenarioData,
    config: AnalysisConfig,
    events: &[StreamEvent],
    rates: &[f64],
    mode: PaceMode,
    queue_capacity: usize,
    seed: u64,
    slo: &SloConfig,
) -> Result<RampVerdict, faultline_core::AnalysisError> {
    let mut steps = Vec::new();
    for &rate in rates {
        let outcome = paced_run(
            data,
            config.clone(),
            events,
            rate,
            mode,
            queue_capacity,
            seed,
            slo,
        )?;
        let failed = !outcome.step.passed;
        eprintln!(
            "  paced {:?} @ {:.0}/s: achieved {:.0}/s, shed {:.4}, {}",
            mode,
            rate,
            outcome.step.achieved_rate,
            outcome.step.shed_fraction,
            if failed { "FAIL" } else { "pass" }
        );
        steps.push(outcome.step);
        if failed {
            break;
        }
    }
    Ok(RampVerdict::from_steps(steps))
}

/// Simulated-clock capacity: with the service rate pinned at
/// `drained_per_tick`, walk `offered_per_tick` upward (whole engine run
/// per step, via [`run_overloaded`]) until the shed-fraction SLO breaks.
/// No wall clock is consulted anywhere, so the returned breaking point
/// is identical on every machine — the CI-gated headline.
pub fn deterministic_capacity(
    data: &ScenarioData,
    events: &[StreamEvent],
    queue_capacity: usize,
    drained_per_tick: usize,
    seed: u64,
    slo: &SloConfig,
) -> Result<RampVerdict, faultline_core::AnalysisError> {
    let mut steps = Vec::new();
    let d = drained_per_tick.max(1);
    // d, d+ceil(d/4), ... — overload grows in quarter-service steps.
    let delta = d.div_ceil(4);
    let mut offered = d;
    while offered <= 4 * d {
        let schedule = SimSchedule::new(offered, d);
        let admission = AdmissionConfig::shedding(queue_capacity, seed);
        let (_result, counters) = run_overloaded(
            data,
            AnalysisConfig::default(),
            &admission,
            schedule,
            events,
        )?;
        let mut step = RampStep {
            offered_rate: offered as f64,
            achieved_rate: offered as f64 * (1.0 - counters.shed_fraction()),
            shed_fraction: counters.shed_fraction(),
            watermark_lag_max_millis: counters.watermark_lag_max_millis,
            queue_high_water: counters.queue_high_water,
            p50_batch_micros: 0.0,
            p99_batch_micros: 0.0,
            passed: false,
            violations: Vec::new(),
        };
        // Wall-clock objectives do not exist on the simulated clock.
        let sim_slo = SloConfig {
            min_keepup_ratio: 0.0,
            max_p99_batch_micros: None,
            ..*slo
        };
        judge(&sim_slo, &mut step);
        let failed = !step.passed;
        eprintln!(
            "  sim-clock {offered}/{d} per tick: shed {:.4}, lag {} ms, {}",
            step.shed_fraction,
            step.watermark_lag_max_millis,
            if failed { "FAIL" } else { "pass" }
        );
        steps.push(step);
        if failed {
            break;
        }
        offered += delta;
    }
    Ok(RampVerdict::from_steps(steps))
}

/// Calibrated capacity for sinks that cannot be paced incrementally:
/// `service_events_per_sec` comes from one unthrottled measured run;
/// the ramp then replays the admission queue alone on a simulated 1 ms
/// tick at that service rate, walking offered rates across
/// `fractions × service rate` until the shed-fraction SLO breaks.
pub fn calibrated_ramp(
    events: &[StreamEvent],
    service_events_per_sec: f64,
    fractions: &[f64],
    queue_capacity: usize,
    seed: u64,
    slo: &SloConfig,
) -> RampVerdict {
    let drained_per_tick = ((service_events_per_sec / 1_000.0).round() as usize).max(1);
    let mut steps = Vec::new();
    for &f in fractions {
        let offered_rate = service_events_per_sec * f;
        let offered_per_tick = ((offered_rate / 1_000.0).round() as usize).max(1);
        let schedule = SimSchedule::new(offered_per_tick, drained_per_tick);
        let (survivors, counters) = shed_survivors(
            events,
            &AdmissionConfig::shedding(queue_capacity, seed),
            schedule,
        );
        let mut step = RampStep {
            offered_rate,
            achieved_rate: offered_rate * (survivors.len() as f64 / events.len().max(1) as f64),
            shed_fraction: counters.shed_fraction(),
            watermark_lag_max_millis: counters.watermark_lag_max_millis,
            queue_high_water: counters.queue_high_water,
            p50_batch_micros: 0.0,
            p99_batch_micros: 0.0,
            passed: false,
            violations: Vec::new(),
        };
        let sim_slo = SloConfig {
            min_keepup_ratio: 0.0,
            max_p99_batch_micros: None,
            ..*slo
        };
        judge(&sim_slo, &mut step);
        let failed = !step.passed;
        eprintln!(
            "  calibrated {:.2}x ({:.0}/s vs {:.0}/s service): shed {:.4}, {}",
            f,
            offered_rate,
            service_events_per_sec,
            step.shed_fraction,
            if failed { "FAIL" } else { "pass" }
        );
        steps.push(step);
        if failed {
            break;
        }
    }
    RampVerdict::from_steps(steps)
}

/// Relative drift of a degraded metric against the unshedded answer
/// (0.0 when the clean value is 0).
pub fn drift(degraded: f64, clean: f64) -> f64 {
    if clean == 0.0 {
        0.0
    } else {
        (degraded - clean).abs() / clean
    }
}

/// The degraded-vs-clean comparison for one shed-mode run: how far the
/// answer moved, per source — measured, not guessed, exactly like the
/// chaos drift bands.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DriftReport {
    /// Relative drift of the syslog failure count.
    pub syslog_failure_count: f64,
    /// Relative drift of the IS-IS failure count.
    pub isis_failure_count: f64,
    /// Relative drift of total syslog downtime.
    pub syslog_downtime: f64,
    /// Relative drift of total IS-IS downtime.
    pub isis_downtime: f64,
}

/// Measure a degraded run's output drift against the unshedded answer.
pub fn measure_drift(
    degraded: &faultline_core::streaming::StreamOutput,
    clean: &faultline_core::streaming::StreamOutput,
) -> DriftReport {
    let downtime = |fs: &[faultline_core::Failure]| -> f64 {
        fs.iter().map(|f| f.duration().as_millis() as f64).sum()
    };
    DriftReport {
        syslog_failure_count: drift(
            degraded.syslog_failures.len() as f64,
            clean.syslog_failures.len() as f64,
        ),
        isis_failure_count: drift(
            degraded.isis_failures.len() as f64,
            clean.isis_failures.len() as f64,
        ),
        syslog_downtime: drift(
            downtime(&degraded.syslog_failures),
            downtime(&clean.syslog_failures),
        ),
        isis_downtime: drift(
            downtime(&degraded.isis_failures),
            downtime(&clean.isis_failures),
        ),
    }
}

/// Any serializable value as a JSON tree — the shim that lets the
/// (vendored, literal-only) `json!` macro embed structs.
pub fn jv<T: serde::Serialize + ?Sized>(value: &T) -> serde_json::Value {
    serde_json::to_value(value).expect("value serializes")
}

/// A [`RampVerdict`] rendered for a `BENCH_capacity.json` `runs` entry.
pub fn verdict_json(label: &str, verdict: &RampVerdict) -> serde_json::Value {
    serde_json::json!({
        "label": label,
        "breaking_point": (jv(&verdict.breaking_point)),
        "steps": (jv(&verdict.steps)),
    })
}

/// Report → JSON value (the loadgen runs attach reports under their
/// run entries so SLO checks and humans read the same numbers).
pub fn report_json(report: &PipelineReport) -> serde_json::Value {
    serde_json::to_value(report).expect("report serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_order_statistics() {
        let mut xs = vec![5.0, 1.0, 9.0, 3.0, 7.0];
        assert_eq!(percentile(&mut xs, 50.0), 5.0);
        assert_eq!(percentile(&mut xs, 0.0), 1.0);
        assert_eq!(percentile(&mut xs, 100.0), 9.0);
        assert_eq!(percentile(&mut [], 99.0), 0.0);
    }

    #[test]
    fn judge_flags_each_objective() {
        let slo = SloConfig {
            max_shed_fraction: 0.01,
            min_keepup_ratio: 0.95,
            max_p99_batch_micros: Some(100.0),
            max_watermark_lag_millis: Some(10),
            max_queue_high_water: Some(64),
        };
        let mut step = RampStep {
            offered_rate: 100.0,
            achieved_rate: 50.0,
            shed_fraction: 0.5,
            watermark_lag_max_millis: 100,
            queue_high_water: 128,
            p50_batch_micros: 10.0,
            p99_batch_micros: 500.0,
            passed: true,
            violations: Vec::new(),
        };
        judge(&slo, &mut step);
        assert!(!step.passed);
        assert_eq!(step.violations.len(), 5, "{:?}", step.violations);

        let mut good = RampStep {
            offered_rate: 100.0,
            achieved_rate: 99.0,
            shed_fraction: 0.0,
            watermark_lag_max_millis: 5,
            queue_high_water: 32,
            p50_batch_micros: 10.0,
            p99_batch_micros: 50.0,
            passed: false,
            violations: vec!["stale".into()],
        };
        judge(&slo, &mut good);
        assert!(good.passed);
        assert!(good.violations.is_empty());
    }

    #[test]
    fn verdict_takes_the_highest_passing_rate() {
        let step = |rate: f64, passed: bool| RampStep {
            offered_rate: rate,
            achieved_rate: rate,
            shed_fraction: 0.0,
            watermark_lag_max_millis: 0,
            queue_high_water: 0,
            p50_batch_micros: 0.0,
            p99_batch_micros: 0.0,
            passed,
            violations: Vec::new(),
        };
        let v =
            RampVerdict::from_steps(vec![step(10.0, true), step(20.0, true), step(30.0, false)]);
        assert_eq!(v.breaking_point, Some(20.0));
        let none = RampVerdict::from_steps(vec![step(10.0, false)]);
        assert_eq!(none.breaking_point, None);
    }

    #[test]
    fn drift_is_relative_and_zero_safe() {
        assert_eq!(drift(10.0, 0.0), 0.0);
        assert!((drift(75.0, 100.0) - 0.25).abs() < 1e-12);
        assert!((drift(125.0, 100.0) - 0.25).abs() < 1e-12);
    }
}
