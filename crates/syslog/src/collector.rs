//! The central logging server (§3.3).
//!
//! Every router in the network sends its syslog stream here. The collector
//! stores raw rendered lines in arrival order — exactly what the paper's
//! analysis is given — and can replay them sorted by the *message text*
//! timestamp, which is what the reconstruction pipeline keys on.
//!
//! The collector is thread-safe (`parking_lot::Mutex`) so benchmark
//! drivers can shard simulation across threads while funneling into one
//! log, mirroring the single central facility CENIC runs.

use crate::message::SyslogMessage;
use crate::parse::ParseStats;
use crate::transport::Delivery;
use faultline_topology::time::Timestamp;
use parking_lot::Mutex;

/// One stored log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Arrival time at the collector.
    pub arrived_at: Timestamp,
    /// The raw line as received.
    pub line: String,
}

/// The central syslog server.
#[derive(Debug, Default)]
pub struct Collector {
    records: Mutex<Vec<LogRecord>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one delivery from the transport.
    pub fn ingest(&self, delivery: &Delivery) {
        self.records.lock().push(LogRecord {
            arrived_at: delivery.arrived_at,
            line: delivery.message.render(),
        });
    }

    /// Ingest a raw line (e.g. unrelated messages mixed into the feed).
    pub fn ingest_raw(&self, arrived_at: Timestamp, line: String) {
        self.records.lock().push(LogRecord { arrived_at, line });
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if nothing has arrived.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Drain all records sorted by arrival time (stable on ties).
    pub fn into_lines(self) -> Vec<LogRecord> {
        let mut records = self.records.into_inner();
        records.sort_by_key(|r| r.arrived_at);
        records
    }

    /// Parse everything received back into structured messages, sorted by
    /// the timestamp embedded in the message text (the paper's pipeline
    /// sorts on text timestamps, not arrival order).
    pub fn parsed_messages(&self) -> Vec<SyslogMessage> {
        let records = self.records.lock();
        let (events, _) = parse_records(&records);
        events
    }
}

/// Parse a collector archive in the **canonical replay order**: records
/// are first put in arrival order (stable, so simultaneous arrivals keep
/// their ingest order), parsed in that order, and the resulting events
/// are then stable-sorted by `(text timestamp, host, seq)`.
///
/// The two-step order makes the tiebreak for identical sort keys
/// *explicit*: when clock skew or duplicated delivery produces two
/// messages with the same text timestamp, host, and sequence number,
/// they replay in arrival order — deterministically — instead of relying
/// on whatever order the records happened to be stored in.
pub fn parse_records(records: &[LogRecord]) -> (Vec<SyslogMessage>, ParseStats) {
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| records[i].arrived_at);
    // Zero-copy fast path; byte-identical to `parse_archive_stats` on
    // these (always valid UTF-8) rendered lines.
    let (mut events, stats) =
        crate::parse::parse_archive_stats_bytes(order.iter().map(|&i| records[i].line.as_bytes()));
    events.sort_by(|a, b| {
        (a.event.at, &a.event.host, a.seq).cmp(&(b.event.at, &b.event.host, b.seq))
    });
    (events, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{LinkEvent, LinkEventKind};
    use crate::transport::{LossyTransport, TransportConfig};
    use faultline_topology::interface::InterfaceName;
    use faultline_topology::router::RouterOs;

    fn msg(host: &str, at_ms: u64) -> SyslogMessage {
        SyslogMessage {
            seq: 1,
            event: LinkEvent {
                at: Timestamp::from_millis(at_ms),
                host: host.into(),
                interface: InterfaceName::gig(0),
                kind: LinkEventKind::Link,
                up: false,
            },
            os: RouterOs::Ios,
        }
    }

    #[test]
    fn ingest_and_parse_round_trip() {
        let collector = Collector::new();
        let mut transport = LossyTransport::new(TransportConfig::lossless(1));
        for d in transport.send(msg("r1", 5_000)) {
            collector.ingest(&d);
        }
        for d in transport.send(msg("r2", 1_000)) {
            collector.ingest(&d);
        }
        let parsed = collector.parsed_messages();
        assert_eq!(parsed.len(), 2);
        // Sorted by text timestamp: r2 first.
        assert_eq!(parsed[0].event.host, "r2");
    }

    #[test]
    fn raw_noise_is_tolerated() {
        let collector = Collector::new();
        collector.ingest_raw(Timestamp::EPOCH, "not a syslog line".into());
        collector.ingest_raw(
            Timestamp::EPOCH,
            "<189>9: h: Oct 21 2010 00:00:00.000: %SYS-5-CONFIG_I: console".into(),
        );
        assert_eq!(collector.len(), 2);
        assert!(collector.parsed_messages().is_empty());
    }

    #[test]
    fn into_lines_sorted_by_arrival() {
        let collector = Collector::new();
        collector.ingest_raw(Timestamp::from_secs(10), "b".into());
        collector.ingest_raw(Timestamp::from_secs(5), "a".into());
        let lines = collector.into_lines();
        assert_eq!(lines[0].line, "a");
        assert_eq!(lines[1].line, "b");
    }

    #[test]
    fn identical_text_timestamps_replay_in_arrival_order() {
        // Two *identical* messages (same text timestamp, host, seq — the
        // signature of a chaos-duplicated delivery) plus one skewed copy
        // arriving first: the sort key ties, so only the arrival-order
        // tiebreak makes the replay deterministic.
        let line_a = msg("r1", 5_000).render();
        let line_b = msg("r1", 5_000).render();
        let forward = Collector::new();
        forward.ingest_raw(Timestamp::from_secs(9), line_a.clone());
        forward.ingest_raw(Timestamp::from_secs(7), line_b.clone());
        let backward = Collector::new();
        backward.ingest_raw(Timestamp::from_secs(7), line_b);
        backward.ingest_raw(Timestamp::from_secs(9), line_a);
        assert_eq!(forward.parsed_messages(), backward.parsed_messages());

        let records = vec![
            LogRecord {
                arrived_at: Timestamp::from_secs(9),
                line: msg("r1", 5_000).render(),
            },
            LogRecord {
                arrived_at: Timestamp::from_secs(7),
                line: msg("r2", 5_000).render(),
            },
        ];
        let (events, stats) = parse_records(&records);
        assert_eq!(events.len(), 2);
        // Equal text timestamps: host breaks the tie, not arrival.
        assert_eq!(events[0].event.host, "r1");
        assert!(stats.is_balanced());
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        use std::sync::Arc;
        let collector = Arc::new(Collector::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&collector);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        c.ingest_raw(Timestamp::from_millis(t * 1000 + i), format!("{t}-{i}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(collector.len(), 400);
    }
}
