//! Calendar rendering of simulation time in Cisco syslog format.
//!
//! The scenario epoch is fixed at **Oct 20 2010 00:00:00 UTC**, the start
//! of the paper's measurement period. Routers are configured with
//! `service timestamps log datetime msec year` (so the textual format is
//! `Oct 20 2010 04:12:33.123`), which keeps parsing unambiguous — classic
//! year-less RFC 3164 timestamps would be ambiguous across the 13-month
//! window.

use faultline_topology::time::Timestamp;

/// Month abbreviations in Cisco/RFC 3164 style.
const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Days per month for a non-leap and a leap year.
fn days_in_month(year: u32, month0: usize) -> u64 {
    const D: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    if month0 == 1 && is_leap(year) {
        29
    } else {
        D[month0]
    }
}

fn is_leap(year: u32) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

/// The calendar date of the scenario epoch.
const EPOCH_YEAR: u32 = 2010;
const EPOCH_MONTH0: usize = 9; // October
const EPOCH_DAY: u64 = 20;

/// A broken-down calendar instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalTime {
    /// Full year, e.g. 2010.
    pub year: u32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
    /// Millisecond 0–999.
    pub millis: u16,
}

/// Convert a simulation timestamp to calendar form.
pub fn to_calendar(ts: Timestamp) -> CalTime {
    let mut days = ts.as_millis() / 86_400_000;
    let rem_ms = ts.as_millis() % 86_400_000;
    let mut year = EPOCH_YEAR;
    let mut month0 = EPOCH_MONTH0;
    let mut day = EPOCH_DAY; // 1-based
    while days > 0 {
        let dim = days_in_month(year, month0);
        let left_in_month = dim - day;
        if days <= left_in_month {
            day += days;
            days = 0;
        } else {
            days -= left_in_month + 1;
            day = 1;
            month0 += 1;
            if month0 == 12 {
                month0 = 0;
                year += 1;
            }
        }
    }
    CalTime {
        year,
        month: month0 as u8 + 1,
        day: day as u8,
        hour: (rem_ms / 3_600_000) as u8,
        minute: (rem_ms / 60_000 % 60) as u8,
        second: (rem_ms / 1_000 % 60) as u8,
        millis: (rem_ms % 1_000) as u16,
    }
}

/// Convert a calendar instant back to a simulation timestamp.
///
/// Returns `None` for dates before the epoch.
pub fn from_calendar(c: &CalTime) -> Option<Timestamp> {
    // Count days from the epoch date to the given date.
    let mut days: i64 = 0;
    let (mut y, mut m0, mut d) = (EPOCH_YEAR, EPOCH_MONTH0, EPOCH_DAY);
    let target = (c.year, c.month as usize - 1, c.day as u64);
    if (c.year, c.month as usize - 1, c.day as u64) < (y, m0, d) {
        return None;
    }
    while (y, m0, d) < target {
        // Jump whole months where possible for efficiency.
        if (y, m0) < (target.0, target.1) {
            days += (days_in_month(y, m0) - d + 1) as i64;
            d = 1;
            m0 += 1;
            if m0 == 12 {
                m0 = 0;
                y += 1;
            }
        } else {
            days += (target.2 - d) as i64;
            d = target.2;
        }
    }
    let ms = days as u64 * 86_400_000
        + c.hour as u64 * 3_600_000
        + c.minute as u64 * 60_000
        + c.second as u64 * 1_000
        + c.millis as u64;
    Some(Timestamp::from_millis(ms))
}

/// Render in Cisco `datetime msec year` style: `Oct 20 2010 04:12:33.123`.
pub fn render(ts: Timestamp) -> String {
    let c = to_calendar(ts);
    format!(
        "{} {} {} {:02}:{:02}:{:02}.{:03}",
        MONTHS[c.month as usize - 1],
        c.day,
        c.year,
        c.hour,
        c.minute,
        c.second,
        c.millis
    )
}

/// Parse the output of [`render`]. Returns `None` on any malformation.
pub fn parse(text: &str) -> Option<Timestamp> {
    let mut parts = text.split_whitespace();
    let mon = parts.next()?;
    let day: u8 = parts.next()?.parse().ok()?;
    let year: u32 = parts.next()?.parse().ok()?;
    let hms = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let month = MONTHS.iter().position(|m| *m == mon)? as u8 + 1;
    let (h, rest) = hms.split_once(':')?;
    let (m, rest) = rest.split_once(':')?;
    let (s, ms) = rest.split_once('.')?;
    if ms.len() != 3 {
        return None;
    }
    let c = CalTime {
        year,
        month,
        day,
        hour: h.parse().ok()?,
        minute: m.parse().ok()?,
        second: s.parse().ok()?,
        millis: ms.parse().ok()?,
    };
    // Validate field ranges by round-tripping through the converter.
    if c.hour > 23 || c.minute > 59 || c.second > 59 || c.day == 0 {
        return None;
    }
    if c.month as usize > 12 || c.day as u64 > days_in_month(c.year, c.month as usize - 1) {
        return None;
    }
    from_calendar(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_topology::time::Duration;

    #[test]
    fn epoch_renders_as_study_start() {
        assert_eq!(render(Timestamp::EPOCH), "Oct 20 2010 00:00:00.000");
    }

    #[test]
    fn crosses_month_and_year_boundaries() {
        // 12 days later: Nov 1 2010.
        let t = Timestamp::EPOCH + Duration::from_days(12);
        assert_eq!(render(t), "Nov 1 2010 00:00:00.000");
        // 73 days later: Jan 1 2011 (12 + 30 + 31 = 73).
        let t = Timestamp::EPOCH + Duration::from_days(73);
        assert_eq!(render(t), "Jan 1 2011 00:00:00.000");
    }

    #[test]
    fn end_of_study_period() {
        // Paper's period ends Nov 11 2011: Oct 20 2010 + 387 days.
        let t = Timestamp::EPOCH + Duration::from_days(387);
        assert_eq!(render(t), "Nov 11 2011 00:00:00.000");
    }

    #[test]
    fn round_trip_across_two_years() {
        for days in [0u64, 1, 11, 12, 45, 72, 73, 100, 200, 365, 366, 389, 500] {
            for extra_ms in [0u64, 1, 59_999, 86_399_999] {
                let t =
                    Timestamp::EPOCH + Duration::from_days(days) + Duration::from_millis(extra_ms);
                let text = render(t);
                assert_eq!(parse(&text), Some(t), "failed for {text}");
            }
        }
    }

    #[test]
    fn leap_year_2012_handled() {
        // 2012 is a leap year; Feb 29 2012 exists (day 497 from epoch).
        // Oct 20 2010 -> Feb 29 2012: 73 (to Jan 1 2011) + 365 (to Jan 1 2012) + 31 + 28 = 497.
        let t = Timestamp::EPOCH + Duration::from_days(497);
        assert_eq!(render(t), "Feb 29 2012 00:00:00.000");
        assert_eq!(parse("Feb 29 2012 00:00:00.000"), Some(t));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(parse(""), None);
        assert_eq!(parse("Oct 20 2010"), None);
        assert_eq!(parse("Foo 20 2010 00:00:00.000"), None);
        assert_eq!(parse("Oct 32 2010 00:00:00.000"), None);
        assert_eq!(parse("Oct 20 2010 25:00:00.000"), None);
        assert_eq!(parse("Oct 20 2010 00:00:00.00"), None);
        assert_eq!(parse("Oct 19 2010 00:00:00.000"), None, "before epoch");
        assert_eq!(parse("Feb 29 2011 00:00:00.000"), None, "not a leap year");
    }
}
