//! Structured link-state syslog messages and their Cisco text grammars.
//!
//! The paper's dataset (Table 1) consists of messages about the link, the
//! link protocol, and the IS-IS adjacency. The reproduction renders each
//! structured [`LinkEvent`] to the exact text a Cisco router would send,
//! inside RFC 3164 framing:
//!
//! ```text
//! <PRI>SEQ: HOSTNAME: TIMESTAMP: %FACILITY-SEVERITY-MNEMONIC: text
//! ```
//!
//! Two adjacency grammars exist because CENIC mixes IOS and IOS XR:
//!
//! * IOS:    `%CLNS-5-ADJCHANGE: ISIS: Adjacency to sac-agg-01 (GigabitEthernet0/2) Up, new adjacency`
//! * IOS XR: `%ROUTING-ISIS-4-ADJCHANGE: Adjacency to sac-agg-01 (TenGigE0/1/0/3) (L2) Up, New adjacency`

use crate::caltime;
use faultline_topology::interface::InterfaceName;
use faultline_topology::router::RouterOs;
use faultline_topology::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reasons a router gives in an ADJCHANGE message. The paper uses the
/// reason text to tell a fresh failure from an adjacency *reset* (§4.3:
/// "a reset adjacency failure is differentiated from a subsequent link
/// failure by the type of syslog message being sent").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdjChangeDetail {
    /// Three-way handshake completed.
    NewAdjacency,
    /// No hello within the hold time.
    HoldTimeExpired,
    /// The interface went down.
    InterfaceDown,
    /// The neighbor restarted the handshake (adjacency reset).
    AdjacencyReset,
    /// Reason text we do not model; preserved verbatim.
    Other,
}

impl AdjChangeDetail {
    fn text(&self, os: RouterOs) -> &'static str {
        match (self, os) {
            (AdjChangeDetail::NewAdjacency, RouterOs::Ios) => "new adjacency",
            (AdjChangeDetail::NewAdjacency, RouterOs::IosXr) => "New adjacency",
            (AdjChangeDetail::HoldTimeExpired, RouterOs::Ios) => "hold time expired",
            (AdjChangeDetail::HoldTimeExpired, RouterOs::IosXr) => "Hold time expired",
            (AdjChangeDetail::InterfaceDown, RouterOs::Ios) => "interface down",
            (AdjChangeDetail::InterfaceDown, RouterOs::IosXr) => "Interface state down",
            (AdjChangeDetail::AdjacencyReset, RouterOs::Ios) => "adjacency reset",
            (AdjChangeDetail::AdjacencyReset, RouterOs::IosXr) => "Adjacency reset",
            (AdjChangeDetail::Other, _) => "unknown",
        }
    }

    /// Recover the detail from its rendered text (case-insensitive on the
    /// first letter, since IOS and IOS XR capitalize differently).
    /// Allocation-free: this runs once per ADJCHANGE message on the parse
    /// hot path.
    pub fn from_text(text: &str) -> AdjChangeDetail {
        if text.eq_ignore_ascii_case("new adjacency") {
            AdjChangeDetail::NewAdjacency
        } else if text.eq_ignore_ascii_case("hold time expired") {
            AdjChangeDetail::HoldTimeExpired
        } else if text.eq_ignore_ascii_case("interface down")
            || text.eq_ignore_ascii_case("interface state down")
        {
            AdjChangeDetail::InterfaceDown
        } else if text.eq_ignore_ascii_case("adjacency reset") {
            AdjChangeDetail::AdjacencyReset
        } else {
            AdjChangeDetail::Other
        }
    }
}

/// The three message families the study is built on (§3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkEventKind {
    /// IS-IS adjacency change (`%CLNS-5-ADJCHANGE` /
    /// `%ROUTING-ISIS-4-ADJCHANGE`).
    IsisAdjacency {
        /// Hostname of the adjacent router as the local router knows it.
        neighbor: String,
        /// Why the adjacency changed.
        detail: AdjChangeDetail,
    },
    /// Physical interface state (`%LINK-3-UPDOWN`).
    Link,
    /// Line protocol state (`%LINEPROTO-5-UPDOWN`).
    LineProtocol,
}

/// A structured link-state event, the unit the analysis pipeline consumes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkEvent {
    /// Router-local timestamp (what appears in the message text).
    pub at: Timestamp,
    /// Reporting router's hostname.
    pub host: String,
    /// Local interface the event concerns.
    pub interface: InterfaceName,
    /// Which message family.
    pub kind: LinkEventKind,
    /// New state: `true` = Up.
    pub up: bool,
}

/// A complete syslog message: a [`LinkEvent`] plus wire metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyslogMessage {
    /// Per-router sequence number (`service sequence-numbers`).
    pub seq: u64,
    /// The structured event.
    pub event: LinkEvent,
    /// OS family of the reporting router; selects the grammar.
    pub os: RouterOs,
}

/// RFC 3164 facility used by Cisco by default (local7 = 23).
const FACILITY: u8 = 23;

impl SyslogMessage {
    /// Severity code for this message family (the number embedded in the
    /// mnemonic, e.g. the `5` of `%CLNS-5-ADJCHANGE`).
    pub fn severity(&self) -> u8 {
        match (&self.event.kind, self.os) {
            (LinkEventKind::IsisAdjacency { .. }, RouterOs::Ios) => 5,
            (LinkEventKind::IsisAdjacency { .. }, RouterOs::IosXr) => 4,
            (LinkEventKind::Link, _) => 3,
            (LinkEventKind::LineProtocol, _) => 5,
        }
    }

    /// RFC 3164 PRI value.
    pub fn pri(&self) -> u8 {
        FACILITY * 8 + self.severity()
    }

    /// Render the full line as it would arrive at the collector.
    pub fn render(&self) -> String {
        let ts = caltime::render(self.event.at);
        let body = self.render_body();
        format!(
            "<{}>{}: {}: {}: {}",
            self.pri(),
            self.seq,
            self.event.host,
            ts,
            body
        )
    }

    fn render_body(&self) -> String {
        let iface = &self.event.interface;
        match &self.event.kind {
            LinkEventKind::IsisAdjacency { neighbor, detail } => match self.os {
                RouterOs::Ios => format!(
                    "%CLNS-5-ADJCHANGE: ISIS: Adjacency to {} ({}) {}, {}",
                    neighbor,
                    iface,
                    if self.event.up { "Up" } else { "Down" },
                    detail.text(self.os),
                ),
                RouterOs::IosXr => format!(
                    "%ROUTING-ISIS-4-ADJCHANGE: Adjacency to {} ({}) (L2) {}, {}",
                    neighbor,
                    iface,
                    if self.event.up { "Up" } else { "Down" },
                    detail.text(self.os),
                ),
            },
            LinkEventKind::Link => format!(
                "%LINK-3-UPDOWN: Interface {}, changed state to {}",
                iface,
                if self.event.up { "Up" } else { "Down" },
            ),
            LinkEventKind::LineProtocol => format!(
                "%LINEPROTO-5-UPDOWN: Line protocol on Interface {}, changed state to {}",
                iface,
                if self.event.up { "up" } else { "down" },
            ),
        }
    }
}

impl fmt::Display for SyslogMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: LinkEventKind, up: bool) -> LinkEvent {
        LinkEvent {
            at: Timestamp::from_millis(15_153_123),
            host: "lax-agg-01".into(),
            interface: InterfaceName::ten_gig(3),
            kind,
            up,
        }
    }

    #[test]
    fn ios_adjchange_format() {
        let m = SyslogMessage {
            seq: 287,
            event: event(
                LinkEventKind::IsisAdjacency {
                    neighbor: "sac-agg-01".into(),
                    detail: AdjChangeDetail::HoldTimeExpired,
                },
                false,
            ),
            os: RouterOs::Ios,
        };
        assert_eq!(
            m.render(),
            "<189>287: lax-agg-01: Oct 20 2010 04:12:33.123: %CLNS-5-ADJCHANGE: \
             ISIS: Adjacency to sac-agg-01 (TenGigE0/0/0/3) Down, hold time expired"
        );
    }

    #[test]
    fn iosxr_adjchange_format() {
        let m = SyslogMessage {
            seq: 1,
            event: event(
                LinkEventKind::IsisAdjacency {
                    neighbor: "sac-agg-01".into(),
                    detail: AdjChangeDetail::NewAdjacency,
                },
                true,
            ),
            os: RouterOs::IosXr,
        };
        let text = m.render();
        assert!(text.contains("%ROUTING-ISIS-4-ADJCHANGE:"));
        assert!(text.contains("(L2) Up, New adjacency"));
        assert!(
            text.starts_with("<188>"),
            "XR adjacency severity is 4: {text}"
        );
    }

    #[test]
    fn link_and_lineproto_formats() {
        let m = SyslogMessage {
            seq: 2,
            event: event(LinkEventKind::Link, false),
            os: RouterOs::Ios,
        };
        assert!(m
            .render()
            .ends_with("%LINK-3-UPDOWN: Interface TenGigE0/0/0/3, changed state to Down"));
        let m = SyslogMessage {
            seq: 3,
            event: event(LinkEventKind::LineProtocol, true),
            os: RouterOs::Ios,
        };
        assert!(m.render().ends_with(
            "%LINEPROTO-5-UPDOWN: Line protocol on Interface TenGigE0/0/0/3, changed state to up"
        ));
    }

    #[test]
    fn pri_encodes_facility_and_severity() {
        let m = SyslogMessage {
            seq: 0,
            event: event(LinkEventKind::Link, true),
            os: RouterOs::Ios,
        };
        assert_eq!(m.pri(), 23 * 8 + 3);
    }

    #[test]
    fn detail_text_round_trips() {
        for d in [
            AdjChangeDetail::NewAdjacency,
            AdjChangeDetail::HoldTimeExpired,
            AdjChangeDetail::InterfaceDown,
            AdjChangeDetail::AdjacencyReset,
        ] {
            for os in [RouterOs::Ios, RouterOs::IosXr] {
                assert_eq!(AdjChangeDetail::from_text(d.text(os)), d);
            }
        }
        assert_eq!(
            AdjChangeDetail::from_text("something else"),
            AdjChangeDetail::Other
        );
    }
}
