//! Parser recovering structured [`LinkEvent`]s from raw syslog lines.
//!
//! The paper's pipeline receives *"the subset of these messages that
//! pertain to the link, link protocol, and IS-IS routing protocol"*
//! (§3.3). Production logs contain plenty of other mnemonics, so the
//! parser distinguishes three outcomes: a structured link-state event, a
//! recognizable-but-irrelevant message, and garbage.

use crate::caltime;
use crate::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
use faultline_topology::interface::InterfaceName;
use faultline_topology::router::RouterOs;

/// Outcome of parsing one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A link-state message the study uses.
    Event(SyslogMessage),
    /// Well-formed syslog, but not one of the studied mnemonics.
    Irrelevant,
    /// Not parseable as a syslog line.
    Garbage,
}

/// Parse one raw line as produced by [`SyslogMessage::render`].
///
/// # Examples
///
/// A rendered message survives the round-trip back through the parser:
///
/// ```
/// use faultline_syslog::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
/// use faultline_syslog::parse::{parse_line, Parsed};
/// use faultline_topology::interface::InterfaceName;
/// use faultline_topology::router::RouterOs;
/// use faultline_topology::time::Timestamp;
///
/// let msg = SyslogMessage {
///     seq: 7,
///     event: LinkEvent {
///         at: Timestamp::from_secs(86_400 + 3_723),
///         host: "lax-agg-01".to_string(),
///         interface: InterfaceName::ten_gig(3),
///         kind: LinkEventKind::IsisAdjacency {
///             neighbor: "sac-agg-01".to_string(),
///             detail: AdjChangeDetail::HoldTimeExpired,
///         },
///         up: false,
///     },
///     os: RouterOs::Ios,
/// };
///
/// match parse_line(&msg.render()) {
///     Parsed::Event(back) => assert_eq!(back, msg),
///     other => panic!("expected an event, got {other:?}"),
/// }
/// ```
pub fn parse_line(line: &str) -> Parsed {
    // <PRI>SEQ: HOST: TIMESTAMP: %BODY
    let Some(rest) = line.strip_prefix('<') else {
        return Parsed::Garbage;
    };
    let Some((pri, rest)) = rest.split_once('>') else {
        return Parsed::Garbage;
    };
    if pri.parse::<u8>().is_err() {
        return Parsed::Garbage;
    }
    let Some((seq, rest)) = rest.split_once(": ") else {
        return Parsed::Garbage;
    };
    let Ok(seq) = seq.parse::<u64>() else {
        return Parsed::Garbage;
    };
    let Some((host, rest)) = rest.split_once(": ") else {
        return Parsed::Garbage;
    };
    // ": %" separates the timestamp from the body in every rendered
    // message (the HH:MM:SS colons are never followed by " %").
    let (ts_text, body) = match rest.split_once(": %") {
        Some((t, b)) => (t, b),
        None => return Parsed::Garbage,
    };
    let Some(at) = caltime::parse(ts_text) else {
        return Parsed::Garbage;
    };

    parse_body(at, host, body, seq)
}

fn parse_body(at: faultline_topology::time::Timestamp, host: &str, body: &str, seq: u64) -> Parsed {
    if let Some(rest) = body.strip_prefix("CLNS-5-ADJCHANGE: ISIS: Adjacency to ") {
        return parse_adjchange(at, host, rest, seq, RouterOs::Ios);
    }
    if let Some(rest) = body.strip_prefix("ROUTING-ISIS-4-ADJCHANGE: Adjacency to ") {
        return parse_adjchange(at, host, rest, seq, RouterOs::IosXr);
    }
    if let Some(rest) = body.strip_prefix("LINK-3-UPDOWN: Interface ") {
        // "IFACE, changed state to Down"
        let Some((iface, state)) = rest.split_once(", changed state to ") else {
            return Parsed::Garbage;
        };
        let up = match state {
            "Up" | "up" => true,
            "Down" | "down" => false,
            _ => return Parsed::Garbage,
        };
        return Parsed::Event(SyslogMessage {
            seq,
            event: LinkEvent {
                at,
                host: host.to_string(),
                interface: InterfaceName::expand(iface),
                kind: LinkEventKind::Link,
                up,
            },
            os: RouterOs::Ios,
        });
    }
    if let Some(rest) = body.strip_prefix("LINEPROTO-5-UPDOWN: Line protocol on Interface ") {
        let Some((iface, state)) = rest.split_once(", changed state to ") else {
            return Parsed::Garbage;
        };
        let up = match state {
            "Up" | "up" => true,
            "Down" | "down" => false,
            _ => return Parsed::Garbage,
        };
        return Parsed::Event(SyslogMessage {
            seq,
            event: LinkEvent {
                at,
                host: host.to_string(),
                interface: InterfaceName::expand(iface),
                kind: LinkEventKind::LineProtocol,
                up,
            },
            os: RouterOs::Ios,
        });
    }
    // Anything else with a plausible mnemonic shape is irrelevant, not
    // garbage.
    if body.split(':').next().is_some_and(|m| {
        let mut parts = m.split('-');
        matches!(
            (parts.next(), parts.next(), parts.next()),
            (Some(f), Some(s), Some(_)) if !f.is_empty() && s.parse::<u8>().is_ok()
        )
    }) {
        return Parsed::Irrelevant;
    }
    Parsed::Garbage
}

fn parse_adjchange(
    at: faultline_topology::time::Timestamp,
    host: &str,
    rest: &str,
    seq: u64,
    os: RouterOs,
) -> Parsed {
    // IOS:    "NEIGHBOR (IFACE) Up, detail"
    // IOS XR: "NEIGHBOR (IFACE) (L2) Up, detail"
    let Some((neighbor, rest)) = rest.split_once(" (") else {
        return Parsed::Garbage;
    };
    let Some((iface, rest)) = rest.split_once(") ") else {
        return Parsed::Garbage;
    };
    let rest = match os {
        RouterOs::IosXr => match rest.strip_prefix("(L2) ") {
            Some(r) => r,
            None => return Parsed::Garbage,
        },
        RouterOs::Ios => rest,
    };
    let Some((state, detail)) = rest.split_once(", ") else {
        return Parsed::Garbage;
    };
    let up = match state {
        "Up" => true,
        "Down" => false,
        _ => return Parsed::Garbage,
    };
    Parsed::Event(SyslogMessage {
        seq,
        event: LinkEvent {
            at,
            host: host.to_string(),
            interface: InterfaceName::expand(iface),
            kind: LinkEventKind::IsisAdjacency {
                neighbor: neighbor.to_string(),
                detail: AdjChangeDetail::from_text(detail),
            },
            up,
        },
        os,
    })
}

/// Parse a whole archive of lines, dropping everything that is not a
/// studied link-state event. Returns `(events, irrelevant, garbage)`
/// counts alongside the events.
pub fn parse_archive<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> (Vec<SyslogMessage>, u64, u64) {
    let mut events = Vec::new();
    let mut irrelevant = 0;
    let mut garbage = 0;
    for line in lines {
        match parse_line(line) {
            Parsed::Event(m) => events.push(m),
            Parsed::Irrelevant => irrelevant += 1,
            Parsed::Garbage => garbage += 1,
        }
    }
    (events, irrelevant, garbage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_topology::time::Timestamp;

    fn sample(os: RouterOs, kind: LinkEventKind, up: bool) -> SyslogMessage {
        SyslogMessage {
            seq: 42,
            event: LinkEvent {
                at: Timestamp::from_millis(86_400_000 + 3_723_456),
                host: "lax-agg-01".into(),
                interface: InterfaceName::ten_gig(5),
                kind,
                up,
            },
            os,
        }
    }

    #[test]
    fn round_trips_every_message_family() {
        let cases = vec![
            sample(
                RouterOs::Ios,
                LinkEventKind::IsisAdjacency {
                    neighbor: "sac-agg-01".into(),
                    detail: AdjChangeDetail::HoldTimeExpired,
                },
                false,
            ),
            sample(
                RouterOs::IosXr,
                LinkEventKind::IsisAdjacency {
                    neighbor: "cust001-gw1".into(),
                    detail: AdjChangeDetail::NewAdjacency,
                },
                true,
            ),
            sample(RouterOs::Ios, LinkEventKind::Link, false),
            sample(RouterOs::Ios, LinkEventKind::LineProtocol, true),
        ];
        for m in cases {
            let line = m.render();
            match parse_line(&line) {
                Parsed::Event(back) => assert_eq!(back, m, "line: {line}"),
                other => panic!("expected event for {line}, got {other:?}"),
            }
        }
    }

    #[test]
    fn irrelevant_mnemonics_classified() {
        let line = "<189>7: lax-agg-01: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured from console";
        assert_eq!(parse_line(line), Parsed::Irrelevant);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(parse_line(""), Parsed::Garbage);
        assert_eq!(parse_line("not syslog at all"), Parsed::Garbage);
        assert_eq!(
            parse_line("<abc>1: h: Oct 21 2010 00:00:00.000: %LINK-3-UPDOWN: x"),
            Parsed::Garbage
        );
        assert_eq!(
            parse_line(
                "<189>1: h: BADTIME: %LINK-3-UPDOWN: Interface Gi0/0, changed state to Down"
            ),
            Parsed::Garbage
        );
        // ADJCHANGE with mangled structure.
        assert_eq!(
            parse_line(
                "<189>1: h: Oct 21 2010 00:00:00.000: %CLNS-5-ADJCHANGE: ISIS: Adjacency to x"
            ),
            Parsed::Garbage
        );
    }

    #[test]
    fn archive_parse_counts() {
        let m = sample(RouterOs::Ios, LinkEventKind::Link, true);
        let line = m.render();
        let lines = vec![
            line.as_str(),
            "<189>7: h: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured",
            "garbage",
        ];
        let (events, irrelevant, garbage) = parse_archive(lines);
        assert_eq!(events.len(), 1);
        assert_eq!(irrelevant, 1);
        assert_eq!(garbage, 1);
    }

    #[test]
    fn short_interface_names_expanded() {
        let line = "<189>1: h: Oct 21 2010 00:00:00.000: %LINK-3-UPDOWN: Interface Te0/0/0/5, changed state to Down";
        match parse_line(line) {
            Parsed::Event(m) => {
                assert_eq!(m.event.interface.as_str(), "TenGigE0/0/0/5");
            }
            other => panic!("{other:?}"),
        }
    }
}
