//! Parser recovering structured [`LinkEvent`]s from raw syslog lines.
//!
//! The paper's pipeline receives *"the subset of these messages that
//! pertain to the link, link protocol, and IS-IS routing protocol"*
//! (§3.3). Production logs contain plenty of other mnemonics, so the
//! parser distinguishes three outcomes: a structured link-state event, a
//! recognizable-but-irrelevant message, and garbage.

use crate::caltime;
use crate::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
use faultline_topology::interface::InterfaceName;
use faultline_topology::router::RouterOs;
use faultline_topology::time::Timestamp;
use serde::{Deserialize, Serialize};

/// Outcome of parsing one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A link-state message the study uses.
    Event(SyslogMessage),
    /// Well-formed syslog, but not one of the studied mnemonics.
    Irrelevant,
    /// Not parseable as a syslog line.
    Garbage,
}

/// Why a line could not be parsed. Real collection paths truncate,
/// corrupt, and interleave lines; the taxonomy makes each failure mode
/// countable instead of collapsing everything into one "garbage" bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParseError {
    /// No `<PRI>` prefix (or the closing `>` is missing).
    MissingPri,
    /// The `<PRI>` field is present but not a valid priority octet.
    BadPri,
    /// The per-router sequence number is missing or not numeric.
    BadSeq,
    /// The `HOST: ` field separator never appears.
    MissingHost,
    /// The line ends before the `": %"` timestamp/body separator —
    /// the signature of mid-line truncation.
    MissingBody,
    /// The timestamp text does not parse as a calendar stamp.
    BadTimestamp,
    /// A studied mnemonic whose payload structure is mangled.
    MalformedBody,
    /// A body with no plausible `FAC-SEV-MNEMONIC` shape at all.
    UnrecognizedBody,
}

/// Typed outcome of parsing one line: total over all inputs, never
/// panicking. [`Parsed`] is the coarse legacy view of this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A link-state message the study uses.
    Event(SyslogMessage),
    /// Well-formed syslog, but not one of the studied mnemonics.
    Irrelevant,
    /// Not parseable; the error says which part failed first.
    Malformed(ParseError),
}

/// Borrowed view of [`LinkEventKind`]: the neighbor hostname points into
/// the input buffer instead of owning a `String`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEventKindRef<'a> {
    /// IS-IS adjacency change.
    IsisAdjacency {
        /// Hostname of the adjacent router, borrowed from the input.
        neighbor: &'a str,
        /// Why the adjacency changed.
        detail: AdjChangeDetail,
    },
    /// Physical interface state (`%LINK-3-UPDOWN`).
    Link,
    /// Line protocol state (`%LINEPROTO-5-UPDOWN`).
    LineProtocol,
}

impl LinkEventKindRef<'_> {
    /// Convert to the owning [`LinkEventKind`], allocating the neighbor
    /// hostname.
    pub fn to_owned(&self) -> LinkEventKind {
        match *self {
            LinkEventKindRef::IsisAdjacency { neighbor, detail } => LinkEventKind::IsisAdjacency {
                neighbor: neighbor.to_string(),
                detail,
            },
            LinkEventKindRef::Link => LinkEventKind::Link,
            LinkEventKindRef::LineProtocol => LinkEventKind::LineProtocol,
        }
    }
}

/// Borrowed view of [`SyslogMessage`], produced by [`parse_bytes`]: every
/// textual field is a `&str` slice of the input buffer, so parsing a line
/// performs **zero heap allocations**.
///
/// The interface field holds the text exactly as it appeared on the wire
/// (possibly in short form like `Te0/0/0/5`); [`SyslogMessageRef::to_owned`]
/// applies [`InterfaceName::expand`] so the owned form matches what
/// [`classify_line`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyslogMessageRef<'a> {
    /// Per-router sequence number.
    pub seq: u64,
    /// Router-local timestamp.
    pub at: Timestamp,
    /// Reporting router's hostname, borrowed from the input.
    pub host: &'a str,
    /// Local interface text as written on the wire (not yet expanded).
    pub interface: &'a str,
    /// Which message family.
    pub kind: LinkEventKindRef<'a>,
    /// New state: `true` = Up.
    pub up: bool,
    /// OS family of the reporting router.
    pub os: RouterOs,
}

impl SyslogMessageRef<'_> {
    /// Convert to the owning [`SyslogMessage`]. The result is identical to
    /// what [`classify_line`] produces for the same line (interface short
    /// forms are expanded here).
    pub fn to_owned(&self) -> SyslogMessage {
        SyslogMessage {
            seq: self.seq,
            event: LinkEvent {
                at: self.at,
                host: self.host.to_string(),
                interface: InterfaceName::expand(self.interface),
                kind: self.kind.to_owned(),
                up: self.up,
            },
            os: self.os,
        }
    }
}

/// Borrowed analogue of [`ParseOutcome`], returned by [`parse_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseOutcomeRef<'a> {
    /// A link-state message the study uses, borrowing from the input.
    Event(SyslogMessageRef<'a>),
    /// Well-formed syslog, but not one of the studied mnemonics.
    Irrelevant,
    /// Not parseable; the error says which part failed first.
    Malformed(ParseError),
}

impl ParseOutcomeRef<'_> {
    /// Convert to the owning [`ParseOutcome`]. For any valid-UTF-8 input,
    /// `parse_bytes(line).to_owned() == classify_line(line)` — the
    /// differential tests in `tests/fuzz_parse.rs` enforce this.
    pub fn to_owned(&self) -> ParseOutcome {
        match self {
            ParseOutcomeRef::Event(m) => ParseOutcome::Event(m.to_owned()),
            ParseOutcomeRef::Irrelevant => ParseOutcome::Irrelevant,
            ParseOutcomeRef::Malformed(e) => ParseOutcome::Malformed(*e),
        }
    }
}

/// Per-category parse accounting over an archive. The invariant
/// [`ParseStats::is_balanced`] checks — every line lands in exactly one
/// bucket — is what the chaos harness asserts to prove no input is
/// silently dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseStats {
    /// Lines offered to the parser.
    pub lines: u64,
    /// Lines parsed into studied link-state events.
    pub events: u64,
    /// Well-formed lines with non-studied mnemonics.
    pub irrelevant: u64,
    /// Lines rejected; the fields below break this down by cause.
    pub malformed: u64,
    /// [`ParseError::MissingPri`] count.
    pub missing_pri: u64,
    /// [`ParseError::BadPri`] count.
    pub bad_pri: u64,
    /// [`ParseError::BadSeq`] count.
    pub bad_seq: u64,
    /// [`ParseError::MissingHost`] count.
    pub missing_host: u64,
    /// [`ParseError::MissingBody`] count.
    pub missing_body: u64,
    /// [`ParseError::BadTimestamp`] count.
    pub bad_timestamp: u64,
    /// [`ParseError::MalformedBody`] count.
    pub malformed_body: u64,
    /// [`ParseError::UnrecognizedBody`] count.
    pub unrecognized_body: u64,
}

impl ParseStats {
    /// Account for one classification.
    pub fn note(&mut self, outcome: &ParseOutcome) {
        self.lines += 1;
        match outcome {
            ParseOutcome::Event(_) => self.events += 1,
            ParseOutcome::Irrelevant => self.irrelevant += 1,
            ParseOutcome::Malformed(e) => {
                self.malformed += 1;
                match e {
                    ParseError::MissingPri => self.missing_pri += 1,
                    ParseError::BadPri => self.bad_pri += 1,
                    ParseError::BadSeq => self.bad_seq += 1,
                    ParseError::MissingHost => self.missing_host += 1,
                    ParseError::MissingBody => self.missing_body += 1,
                    ParseError::BadTimestamp => self.bad_timestamp += 1,
                    ParseError::MalformedBody => self.malformed_body += 1,
                    ParseError::UnrecognizedBody => self.unrecognized_body += 1,
                }
            }
        }
    }

    /// True when every line is accounted for exactly once: the three
    /// coarse buckets sum to `lines`, and the per-error counters sum to
    /// `malformed`.
    pub fn is_balanced(&self) -> bool {
        self.events + self.irrelevant + self.malformed == self.lines
            && self.missing_pri
                + self.bad_pri
                + self.bad_seq
                + self.missing_host
                + self.missing_body
                + self.bad_timestamp
                + self.malformed_body
                + self.unrecognized_body
                == self.malformed
    }
}

/// Parse one raw line as produced by [`SyslogMessage::render`].
///
/// # Examples
///
/// A rendered message survives the round-trip back through the parser:
///
/// ```
/// use faultline_syslog::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
/// use faultline_syslog::parse::{parse_line, Parsed};
/// use faultline_topology::interface::InterfaceName;
/// use faultline_topology::router::RouterOs;
/// use faultline_topology::time::Timestamp;
///
/// let msg = SyslogMessage {
///     seq: 7,
///     event: LinkEvent {
///         at: Timestamp::from_secs(86_400 + 3_723),
///         host: "lax-agg-01".to_string(),
///         interface: InterfaceName::ten_gig(3),
///         kind: LinkEventKind::IsisAdjacency {
///             neighbor: "sac-agg-01".to_string(),
///             detail: AdjChangeDetail::HoldTimeExpired,
///         },
///         up: false,
///     },
///     os: RouterOs::Ios,
/// };
///
/// match parse_line(&msg.render()) {
///     Parsed::Event(back) => assert_eq!(back, msg),
///     other => panic!("expected an event, got {other:?}"),
/// }
/// ```
pub fn parse_line(line: &str) -> Parsed {
    match classify_line(line) {
        ParseOutcome::Event(m) => Parsed::Event(m),
        ParseOutcome::Irrelevant => Parsed::Irrelevant,
        ParseOutcome::Malformed(_) => Parsed::Garbage,
    }
}

/// Parse one raw line into the typed [`ParseOutcome`] taxonomy. Total
/// over arbitrary input: every `&str` classifies as exactly one of
/// event / irrelevant / malformed-with-cause, and nothing panics.
pub fn classify_line(line: &str) -> ParseOutcome {
    // <PRI>SEQ: HOST: TIMESTAMP: %BODY
    let Some(rest) = line.strip_prefix('<') else {
        return ParseOutcome::Malformed(ParseError::MissingPri);
    };
    let Some((pri, rest)) = rest.split_once('>') else {
        return ParseOutcome::Malformed(ParseError::MissingPri);
    };
    if pri.parse::<u8>().is_err() {
        return ParseOutcome::Malformed(ParseError::BadPri);
    }
    let Some((seq, rest)) = rest.split_once(": ") else {
        return ParseOutcome::Malformed(ParseError::BadSeq);
    };
    let Ok(seq) = seq.parse::<u64>() else {
        return ParseOutcome::Malformed(ParseError::BadSeq);
    };
    let Some((host, rest)) = rest.split_once(": ") else {
        return ParseOutcome::Malformed(ParseError::MissingHost);
    };
    // ": %" separates the timestamp from the body in every rendered
    // message (the HH:MM:SS colons are never followed by " %").
    let (ts_text, body) = match rest.split_once(": %") {
        Some((t, b)) => (t, b),
        None => return ParseOutcome::Malformed(ParseError::MissingBody),
    };
    let Some(at) = caltime::parse(ts_text) else {
        return ParseOutcome::Malformed(ParseError::BadTimestamp);
    };

    parse_body(at, host, body, seq)
}

fn parse_body(
    at: faultline_topology::time::Timestamp,
    host: &str,
    body: &str,
    seq: u64,
) -> ParseOutcome {
    if let Some(rest) = body.strip_prefix("CLNS-5-ADJCHANGE: ISIS: Adjacency to ") {
        return parse_adjchange(at, host, rest, seq, RouterOs::Ios);
    }
    if let Some(rest) = body.strip_prefix("ROUTING-ISIS-4-ADJCHANGE: Adjacency to ") {
        return parse_adjchange(at, host, rest, seq, RouterOs::IosXr);
    }
    if let Some(rest) = body.strip_prefix("LINK-3-UPDOWN: Interface ") {
        // "IFACE, changed state to Down"
        let Some((iface, state)) = rest.split_once(", changed state to ") else {
            return ParseOutcome::Malformed(ParseError::MalformedBody);
        };
        let up = match state {
            "Up" | "up" => true,
            "Down" | "down" => false,
            _ => return ParseOutcome::Malformed(ParseError::MalformedBody),
        };
        return ParseOutcome::Event(SyslogMessage {
            seq,
            event: LinkEvent {
                at,
                host: host.to_string(),
                interface: InterfaceName::expand(iface),
                kind: LinkEventKind::Link,
                up,
            },
            os: RouterOs::Ios,
        });
    }
    if let Some(rest) = body.strip_prefix("LINEPROTO-5-UPDOWN: Line protocol on Interface ") {
        let Some((iface, state)) = rest.split_once(", changed state to ") else {
            return ParseOutcome::Malformed(ParseError::MalformedBody);
        };
        let up = match state {
            "Up" | "up" => true,
            "Down" | "down" => false,
            _ => return ParseOutcome::Malformed(ParseError::MalformedBody),
        };
        return ParseOutcome::Event(SyslogMessage {
            seq,
            event: LinkEvent {
                at,
                host: host.to_string(),
                interface: InterfaceName::expand(iface),
                kind: LinkEventKind::LineProtocol,
                up,
            },
            os: RouterOs::Ios,
        });
    }
    // Anything else with a plausible mnemonic shape is irrelevant, not
    // garbage.
    if body.split(':').next().is_some_and(|m| {
        let mut parts = m.split('-');
        matches!(
            (parts.next(), parts.next(), parts.next()),
            (Some(f), Some(s), Some(_)) if !f.is_empty() && s.parse::<u8>().is_ok()
        )
    }) {
        return ParseOutcome::Irrelevant;
    }
    ParseOutcome::Malformed(ParseError::UnrecognizedBody)
}

fn parse_adjchange(
    at: faultline_topology::time::Timestamp,
    host: &str,
    rest: &str,
    seq: u64,
    os: RouterOs,
) -> ParseOutcome {
    // IOS:    "NEIGHBOR (IFACE) Up, detail"
    // IOS XR: "NEIGHBOR (IFACE) (L2) Up, detail"
    let Some((neighbor, rest)) = rest.split_once(" (") else {
        return ParseOutcome::Malformed(ParseError::MalformedBody);
    };
    let Some((iface, rest)) = rest.split_once(") ") else {
        return ParseOutcome::Malformed(ParseError::MalformedBody);
    };
    let rest = match os {
        RouterOs::IosXr => match rest.strip_prefix("(L2) ") {
            Some(r) => r,
            None => return ParseOutcome::Malformed(ParseError::MalformedBody),
        },
        RouterOs::Ios => rest,
    };
    let Some((state, detail)) = rest.split_once(", ") else {
        return ParseOutcome::Malformed(ParseError::MalformedBody);
    };
    let up = match state {
        "Up" => true,
        "Down" => false,
        _ => return ParseOutcome::Malformed(ParseError::MalformedBody),
    };
    ParseOutcome::Event(SyslogMessage {
        seq,
        event: LinkEvent {
            at,
            host: host.to_string(),
            interface: InterfaceName::expand(iface),
            kind: LinkEventKind::IsisAdjacency {
                neighbor: neighbor.to_string(),
                detail: AdjChangeDetail::from_text(detail),
            },
            up,
        },
        os,
    })
}

/// Parse one raw line from its wire bytes without allocating.
///
/// This is the zero-copy twin of [`classify_line`]: it walks the same
/// `<PRI>SEQ: HOST: TIMESTAMP: %BODY` grammar over `&[u8]` and returns a
/// [`ParseOutcomeRef`] whose string fields borrow from `line`. Because
/// every grammar separator is ASCII, byte-wise splitting agrees exactly
/// with the `&str` splitting in [`classify_line`]; for any input that is
/// valid UTF-8, `parse_bytes(line).to_owned() == classify_line(line)`.
///
/// Inputs that are *not* valid UTF-8 are still classified totally: a field
/// whose bytes cannot be decoded reports the same [`ParseError`] that an
/// unparseable value of that field would (a non-UTF-8 sequence number is
/// [`ParseError::BadSeq`], a non-UTF-8 timestamp is
/// [`ParseError::BadTimestamp`], and so on). Nothing panics.
///
/// # Examples
///
/// ```
/// use faultline_syslog::parse::{classify_line, parse_bytes, ParseOutcomeRef};
///
/// let line = "<189>1: lax-agg-01: Oct 21 2010 00:00:00.000: \
///             %LINK-3-UPDOWN: Interface Te0/0/0/5, changed state to Down";
/// let ParseOutcomeRef::Event(m) = parse_bytes(line.as_bytes()) else {
///     panic!("expected an event");
/// };
/// assert_eq!(m.host, "lax-agg-01");
/// assert_eq!(m.interface, "Te0/0/0/5"); // borrowed: still in wire form
/// assert!(!m.up);
/// // The owned conversion matches the string-path parser exactly.
/// assert_eq!(
///     parse_bytes(line.as_bytes()).to_owned(),
///     classify_line(line),
/// );
/// ```
pub fn parse_bytes(line: &[u8]) -> ParseOutcomeRef<'_> {
    // <PRI>SEQ: HOST: TIMESTAMP: %BODY
    let Some(rest) = line.strip_prefix(b"<") else {
        return ParseOutcomeRef::Malformed(ParseError::MissingPri);
    };
    let Some((pri, rest)) = split_once_bytes(rest, b">") else {
        return ParseOutcomeRef::Malformed(ParseError::MissingPri);
    };
    if std::str::from_utf8(pri)
        .ok()
        .and_then(|p| p.parse::<u8>().ok())
        .is_none()
    {
        return ParseOutcomeRef::Malformed(ParseError::BadPri);
    }
    let Some((seq, rest)) = split_once_bytes(rest, b": ") else {
        return ParseOutcomeRef::Malformed(ParseError::BadSeq);
    };
    let Some(seq) = std::str::from_utf8(seq)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    else {
        return ParseOutcomeRef::Malformed(ParseError::BadSeq);
    };
    let Some((host, rest)) = split_once_bytes(rest, b": ") else {
        return ParseOutcomeRef::Malformed(ParseError::MissingHost);
    };
    let Ok(host) = std::str::from_utf8(host) else {
        return ParseOutcomeRef::Malformed(ParseError::MissingHost);
    };
    // ": %" separates the timestamp from the body in every rendered
    // message (the HH:MM:SS colons are never followed by " %").
    let Some((ts_text, body)) = split_once_bytes(rest, b": %") else {
        return ParseOutcomeRef::Malformed(ParseError::MissingBody);
    };
    let Some(at) = std::str::from_utf8(ts_text).ok().and_then(caltime::parse) else {
        return ParseOutcomeRef::Malformed(ParseError::BadTimestamp);
    };

    parse_body_bytes(at, host, body, seq)
}

/// Byte-slice analogue of `str::split_once` for an ASCII needle. On valid
/// UTF-8 input this agrees with `str::split_once` because an ASCII needle
/// can never match starting inside a multi-byte sequence.
fn split_once_bytes<'a>(haystack: &'a [u8], needle: &[u8]) -> Option<(&'a [u8], &'a [u8])> {
    let pos = haystack.windows(needle.len()).position(|w| w == needle)?;
    Some((&haystack[..pos], &haystack[pos + needle.len()..]))
}

fn parse_body_bytes<'a>(
    at: Timestamp,
    host: &'a str,
    body: &'a [u8],
    seq: u64,
) -> ParseOutcomeRef<'a> {
    if let Some(rest) = body.strip_prefix(b"CLNS-5-ADJCHANGE: ISIS: Adjacency to ") {
        return parse_adjchange_bytes(at, host, rest, seq, RouterOs::Ios);
    }
    if let Some(rest) = body.strip_prefix(b"ROUTING-ISIS-4-ADJCHANGE: Adjacency to ") {
        return parse_adjchange_bytes(at, host, rest, seq, RouterOs::IosXr);
    }
    if let Some(rest) = body.strip_prefix(b"LINK-3-UPDOWN: Interface ") {
        // "IFACE, changed state to Down"
        let Some((iface, up)) = parse_updown_bytes(rest) else {
            return ParseOutcomeRef::Malformed(ParseError::MalformedBody);
        };
        return ParseOutcomeRef::Event(SyslogMessageRef {
            seq,
            at,
            host,
            interface: iface,
            kind: LinkEventKindRef::Link,
            up,
            os: RouterOs::Ios,
        });
    }
    if let Some(rest) = body.strip_prefix(b"LINEPROTO-5-UPDOWN: Line protocol on Interface ") {
        let Some((iface, up)) = parse_updown_bytes(rest) else {
            return ParseOutcomeRef::Malformed(ParseError::MalformedBody);
        };
        return ParseOutcomeRef::Event(SyslogMessageRef {
            seq,
            at,
            host,
            interface: iface,
            kind: LinkEventKindRef::LineProtocol,
            up,
            os: RouterOs::Ios,
        });
    }
    // Anything else with a plausible mnemonic shape is irrelevant, not
    // garbage.
    let mnemonic_end = body.iter().position(|&b| b == b':').unwrap_or(body.len());
    let mut parts = body[..mnemonic_end].split(|&b| b == b'-');
    if matches!(
        (parts.next(), parts.next(), parts.next()),
        (Some(f), Some(s), Some(_))
            if !f.is_empty()
                && std::str::from_utf8(s)
                    .ok()
                    .and_then(|s| s.parse::<u8>().ok())
                    .is_some()
    ) {
        return ParseOutcomeRef::Irrelevant;
    }
    ParseOutcomeRef::Malformed(ParseError::UnrecognizedBody)
}

/// Parse the shared `"IFACE, changed state to STATE"` tail of the two
/// UPDOWN families, returning the borrowed interface text and the state.
fn parse_updown_bytes(rest: &[u8]) -> Option<(&str, bool)> {
    let (iface, state) = split_once_bytes(rest, b", changed state to ")?;
    let up = match state {
        b"Up" | b"up" => true,
        b"Down" | b"down" => false,
        _ => return None,
    };
    let iface = std::str::from_utf8(iface).ok()?;
    Some((iface, up))
}

fn parse_adjchange_bytes<'a>(
    at: Timestamp,
    host: &'a str,
    rest: &'a [u8],
    seq: u64,
    os: RouterOs,
) -> ParseOutcomeRef<'a> {
    // IOS:    "NEIGHBOR (IFACE) Up, detail"
    // IOS XR: "NEIGHBOR (IFACE) (L2) Up, detail"
    let Some((neighbor, rest)) = split_once_bytes(rest, b" (") else {
        return ParseOutcomeRef::Malformed(ParseError::MalformedBody);
    };
    let Some((iface, rest)) = split_once_bytes(rest, b") ") else {
        return ParseOutcomeRef::Malformed(ParseError::MalformedBody);
    };
    let rest = match os {
        RouterOs::IosXr => match rest.strip_prefix(b"(L2) ") {
            Some(r) => r,
            None => return ParseOutcomeRef::Malformed(ParseError::MalformedBody),
        },
        RouterOs::Ios => rest,
    };
    let Some((state, detail)) = split_once_bytes(rest, b", ") else {
        return ParseOutcomeRef::Malformed(ParseError::MalformedBody);
    };
    let up = match state {
        b"Up" => true,
        b"Down" => false,
        _ => return ParseOutcomeRef::Malformed(ParseError::MalformedBody),
    };
    let (Ok(neighbor), Ok(iface), Ok(detail)) = (
        std::str::from_utf8(neighbor),
        std::str::from_utf8(iface),
        std::str::from_utf8(detail),
    ) else {
        return ParseOutcomeRef::Malformed(ParseError::MalformedBody);
    };
    ParseOutcomeRef::Event(SyslogMessageRef {
        seq,
        at,
        host,
        interface: iface,
        kind: LinkEventKindRef::IsisAdjacency {
            neighbor,
            detail: AdjChangeDetail::from_text(detail),
        },
        up,
        os,
    })
}

/// Parse a whole archive of lines, dropping everything that is not a
/// studied link-state event. Returns `(events, irrelevant, garbage)`
/// counts alongside the events.
pub fn parse_archive<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> (Vec<SyslogMessage>, u64, u64) {
    let (events, stats) = parse_archive_stats(lines);
    (events, stats.irrelevant, stats.malformed)
}

/// Parse a whole archive of lines with full per-cause accounting.
pub fn parse_archive_stats<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> (Vec<SyslogMessage>, ParseStats) {
    let mut events = Vec::new();
    let mut stats = ParseStats::default();
    for line in lines {
        let outcome = classify_line(line);
        stats.note(&outcome);
        if let ParseOutcome::Event(m) = outcome {
            events.push(m);
        }
    }
    (events, stats)
}

/// Parse a whole archive from raw line *bytes* with full per-cause
/// accounting, on the zero-copy [`parse_bytes`] fast path: a line only
/// touches the heap if it classifies as a studied event (for the owned
/// conversion). For valid-UTF-8 archives the result is identical to
/// [`parse_archive_stats`]; non-UTF-8 lines are counted under the
/// [`ParseError`] of the field that failed to decode instead of being
/// dropped.
///
/// # Examples
///
/// ```
/// use faultline_syslog::parse::parse_archive_stats_bytes;
///
/// let lines: [&[u8]; 2] = [
///     b"<189>1: lax-agg-01: Oct 21 2010 00:00:00.000: \
///       %LINK-3-UPDOWN: Interface Gi0/2, changed state to Down",
///     b"not syslog \xff at all",
/// ];
/// let (events, stats) = parse_archive_stats_bytes(lines);
/// assert_eq!(events.len(), 1);
/// assert_eq!(stats.lines, 2);
/// assert_eq!(stats.malformed, 1);
/// assert!(stats.is_balanced());
/// ```
pub fn parse_archive_stats_bytes<'a>(
    lines: impl IntoIterator<Item = &'a [u8]>,
) -> (Vec<SyslogMessage>, ParseStats) {
    let mut events = Vec::new();
    let mut stats = ParseStats::default();
    for line in lines {
        match parse_bytes(line) {
            ParseOutcomeRef::Event(m) => {
                stats.lines += 1;
                stats.events += 1;
                events.push(m.to_owned());
            }
            outcome => stats.note(&outcome.to_owned()),
        }
    }
    (events, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_topology::time::Timestamp;

    fn sample(os: RouterOs, kind: LinkEventKind, up: bool) -> SyslogMessage {
        SyslogMessage {
            seq: 42,
            event: LinkEvent {
                at: Timestamp::from_millis(86_400_000 + 3_723_456),
                host: "lax-agg-01".into(),
                interface: InterfaceName::ten_gig(5),
                kind,
                up,
            },
            os,
        }
    }

    #[test]
    fn round_trips_every_message_family() {
        let cases = vec![
            sample(
                RouterOs::Ios,
                LinkEventKind::IsisAdjacency {
                    neighbor: "sac-agg-01".into(),
                    detail: AdjChangeDetail::HoldTimeExpired,
                },
                false,
            ),
            sample(
                RouterOs::IosXr,
                LinkEventKind::IsisAdjacency {
                    neighbor: "cust001-gw1".into(),
                    detail: AdjChangeDetail::NewAdjacency,
                },
                true,
            ),
            sample(RouterOs::Ios, LinkEventKind::Link, false),
            sample(RouterOs::Ios, LinkEventKind::LineProtocol, true),
        ];
        for m in cases {
            let line = m.render();
            match parse_line(&line) {
                Parsed::Event(back) => assert_eq!(back, m, "line: {line}"),
                other => panic!("expected event for {line}, got {other:?}"),
            }
        }
    }

    #[test]
    fn irrelevant_mnemonics_classified() {
        let line = "<189>7: lax-agg-01: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured from console";
        assert_eq!(parse_line(line), Parsed::Irrelevant);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(parse_line(""), Parsed::Garbage);
        assert_eq!(parse_line("not syslog at all"), Parsed::Garbage);
        assert_eq!(
            parse_line("<abc>1: h: Oct 21 2010 00:00:00.000: %LINK-3-UPDOWN: x"),
            Parsed::Garbage
        );
        assert_eq!(
            parse_line(
                "<189>1: h: BADTIME: %LINK-3-UPDOWN: Interface Gi0/0, changed state to Down"
            ),
            Parsed::Garbage
        );
        // ADJCHANGE with mangled structure.
        assert_eq!(
            parse_line(
                "<189>1: h: Oct 21 2010 00:00:00.000: %CLNS-5-ADJCHANGE: ISIS: Adjacency to x"
            ),
            Parsed::Garbage
        );
    }

    #[test]
    fn archive_parse_counts() {
        let m = sample(RouterOs::Ios, LinkEventKind::Link, true);
        let line = m.render();
        let lines = vec![
            line.as_str(),
            "<189>7: h: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured",
            "garbage",
        ];
        let (events, irrelevant, garbage) = parse_archive(lines);
        assert_eq!(events.len(), 1);
        assert_eq!(irrelevant, 1);
        assert_eq!(garbage, 1);
    }

    #[test]
    fn taxonomy_names_the_first_failing_field() {
        use ParseError::*;
        let cases = [
            ("", MissingPri),
            ("no angle bracket", MissingPri),
            ("<189 unterminated", MissingPri),
            ("<abc>1: h: Oct 21 2010 00:00:00.000: %X-1-Y: z", BadPri),
            ("<189>notanum: h: t: %X-1-Y: z", BadSeq),
            ("<189>1", BadSeq),
            ("<189>1: host-without-sep", MissingHost),
            ("<189>1: h: Oct 21 2010 00:00:0", MissingBody),
            ("<189>1: h: BADTIME: %X-1-Y: z", BadTimestamp),
            (
                "<189>1: h: Oct 21 2010 00:00:00.000: %LINK-3-UPDOWN: Interface Gi0/0, changed",
                MalformedBody,
            ),
            (
                "<189>1: h: Oct 21 2010 00:00:00.000: %no mnemonic here",
                UnrecognizedBody,
            ),
        ];
        for (line, want) in cases {
            assert_eq!(
                classify_line(line),
                ParseOutcome::Malformed(want),
                "line: {line:?}"
            );
        }
    }

    #[test]
    fn archive_stats_balance() {
        let m = sample(RouterOs::Ios, LinkEventKind::Link, true);
        let line = m.render();
        let lines = vec![
            line.as_str(),
            "<189>7: h: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured",
            "garbage",
            "<189>1: h: Oct 21 2010 00:00:0",
        ];
        let (events, stats) = parse_archive_stats(lines);
        assert_eq!(events.len(), 1);
        assert_eq!(stats.lines, 4);
        assert_eq!(stats.irrelevant, 1);
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.missing_pri, 1);
        assert_eq!(stats.missing_body, 1);
        assert!(stats.is_balanced());
    }

    #[test]
    fn short_interface_names_expanded() {
        let line = "<189>1: h: Oct 21 2010 00:00:00.000: %LINK-3-UPDOWN: Interface Te0/0/0/5, changed state to Down";
        match parse_line(line) {
            Parsed::Event(m) => {
                assert_eq!(m.event.interface.as_str(), "TenGigE0/0/0/5");
            }
            other => panic!("{other:?}"),
        }
    }
}
