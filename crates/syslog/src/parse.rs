//! Parser recovering structured [`LinkEvent`]s from raw syslog lines.
//!
//! The paper's pipeline receives *"the subset of these messages that
//! pertain to the link, link protocol, and IS-IS routing protocol"*
//! (§3.3). Production logs contain plenty of other mnemonics, so the
//! parser distinguishes three outcomes: a structured link-state event, a
//! recognizable-but-irrelevant message, and garbage.

use crate::caltime;
use crate::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
use faultline_topology::interface::InterfaceName;
use faultline_topology::router::RouterOs;
use serde::{Deserialize, Serialize};

/// Outcome of parsing one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A link-state message the study uses.
    Event(SyslogMessage),
    /// Well-formed syslog, but not one of the studied mnemonics.
    Irrelevant,
    /// Not parseable as a syslog line.
    Garbage,
}

/// Why a line could not be parsed. Real collection paths truncate,
/// corrupt, and interleave lines; the taxonomy makes each failure mode
/// countable instead of collapsing everything into one "garbage" bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParseError {
    /// No `<PRI>` prefix (or the closing `>` is missing).
    MissingPri,
    /// The `<PRI>` field is present but not a valid priority octet.
    BadPri,
    /// The per-router sequence number is missing or not numeric.
    BadSeq,
    /// The `HOST: ` field separator never appears.
    MissingHost,
    /// The line ends before the `": %"` timestamp/body separator —
    /// the signature of mid-line truncation.
    MissingBody,
    /// The timestamp text does not parse as a calendar stamp.
    BadTimestamp,
    /// A studied mnemonic whose payload structure is mangled.
    MalformedBody,
    /// A body with no plausible `FAC-SEV-MNEMONIC` shape at all.
    UnrecognizedBody,
}

/// Typed outcome of parsing one line: total over all inputs, never
/// panicking. [`Parsed`] is the coarse legacy view of this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A link-state message the study uses.
    Event(SyslogMessage),
    /// Well-formed syslog, but not one of the studied mnemonics.
    Irrelevant,
    /// Not parseable; the error says which part failed first.
    Malformed(ParseError),
}

/// Per-category parse accounting over an archive. The invariant
/// [`ParseStats::is_balanced`] checks — every line lands in exactly one
/// bucket — is what the chaos harness asserts to prove no input is
/// silently dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseStats {
    /// Lines offered to the parser.
    pub lines: u64,
    /// Lines parsed into studied link-state events.
    pub events: u64,
    /// Well-formed lines with non-studied mnemonics.
    pub irrelevant: u64,
    /// Lines rejected; the fields below break this down by cause.
    pub malformed: u64,
    /// [`ParseError::MissingPri`] count.
    pub missing_pri: u64,
    /// [`ParseError::BadPri`] count.
    pub bad_pri: u64,
    /// [`ParseError::BadSeq`] count.
    pub bad_seq: u64,
    /// [`ParseError::MissingHost`] count.
    pub missing_host: u64,
    /// [`ParseError::MissingBody`] count.
    pub missing_body: u64,
    /// [`ParseError::BadTimestamp`] count.
    pub bad_timestamp: u64,
    /// [`ParseError::MalformedBody`] count.
    pub malformed_body: u64,
    /// [`ParseError::UnrecognizedBody`] count.
    pub unrecognized_body: u64,
}

impl ParseStats {
    /// Account for one classification.
    pub fn note(&mut self, outcome: &ParseOutcome) {
        self.lines += 1;
        match outcome {
            ParseOutcome::Event(_) => self.events += 1,
            ParseOutcome::Irrelevant => self.irrelevant += 1,
            ParseOutcome::Malformed(e) => {
                self.malformed += 1;
                match e {
                    ParseError::MissingPri => self.missing_pri += 1,
                    ParseError::BadPri => self.bad_pri += 1,
                    ParseError::BadSeq => self.bad_seq += 1,
                    ParseError::MissingHost => self.missing_host += 1,
                    ParseError::MissingBody => self.missing_body += 1,
                    ParseError::BadTimestamp => self.bad_timestamp += 1,
                    ParseError::MalformedBody => self.malformed_body += 1,
                    ParseError::UnrecognizedBody => self.unrecognized_body += 1,
                }
            }
        }
    }

    /// True when every line is accounted for exactly once: the three
    /// coarse buckets sum to `lines`, and the per-error counters sum to
    /// `malformed`.
    pub fn is_balanced(&self) -> bool {
        self.events + self.irrelevant + self.malformed == self.lines
            && self.missing_pri
                + self.bad_pri
                + self.bad_seq
                + self.missing_host
                + self.missing_body
                + self.bad_timestamp
                + self.malformed_body
                + self.unrecognized_body
                == self.malformed
    }
}

/// Parse one raw line as produced by [`SyslogMessage::render`].
///
/// # Examples
///
/// A rendered message survives the round-trip back through the parser:
///
/// ```
/// use faultline_syslog::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
/// use faultline_syslog::parse::{parse_line, Parsed};
/// use faultline_topology::interface::InterfaceName;
/// use faultline_topology::router::RouterOs;
/// use faultline_topology::time::Timestamp;
///
/// let msg = SyslogMessage {
///     seq: 7,
///     event: LinkEvent {
///         at: Timestamp::from_secs(86_400 + 3_723),
///         host: "lax-agg-01".to_string(),
///         interface: InterfaceName::ten_gig(3),
///         kind: LinkEventKind::IsisAdjacency {
///             neighbor: "sac-agg-01".to_string(),
///             detail: AdjChangeDetail::HoldTimeExpired,
///         },
///         up: false,
///     },
///     os: RouterOs::Ios,
/// };
///
/// match parse_line(&msg.render()) {
///     Parsed::Event(back) => assert_eq!(back, msg),
///     other => panic!("expected an event, got {other:?}"),
/// }
/// ```
pub fn parse_line(line: &str) -> Parsed {
    match classify_line(line) {
        ParseOutcome::Event(m) => Parsed::Event(m),
        ParseOutcome::Irrelevant => Parsed::Irrelevant,
        ParseOutcome::Malformed(_) => Parsed::Garbage,
    }
}

/// Parse one raw line into the typed [`ParseOutcome`] taxonomy. Total
/// over arbitrary input: every `&str` classifies as exactly one of
/// event / irrelevant / malformed-with-cause, and nothing panics.
pub fn classify_line(line: &str) -> ParseOutcome {
    // <PRI>SEQ: HOST: TIMESTAMP: %BODY
    let Some(rest) = line.strip_prefix('<') else {
        return ParseOutcome::Malformed(ParseError::MissingPri);
    };
    let Some((pri, rest)) = rest.split_once('>') else {
        return ParseOutcome::Malformed(ParseError::MissingPri);
    };
    if pri.parse::<u8>().is_err() {
        return ParseOutcome::Malformed(ParseError::BadPri);
    }
    let Some((seq, rest)) = rest.split_once(": ") else {
        return ParseOutcome::Malformed(ParseError::BadSeq);
    };
    let Ok(seq) = seq.parse::<u64>() else {
        return ParseOutcome::Malformed(ParseError::BadSeq);
    };
    let Some((host, rest)) = rest.split_once(": ") else {
        return ParseOutcome::Malformed(ParseError::MissingHost);
    };
    // ": %" separates the timestamp from the body in every rendered
    // message (the HH:MM:SS colons are never followed by " %").
    let (ts_text, body) = match rest.split_once(": %") {
        Some((t, b)) => (t, b),
        None => return ParseOutcome::Malformed(ParseError::MissingBody),
    };
    let Some(at) = caltime::parse(ts_text) else {
        return ParseOutcome::Malformed(ParseError::BadTimestamp);
    };

    parse_body(at, host, body, seq)
}

fn parse_body(
    at: faultline_topology::time::Timestamp,
    host: &str,
    body: &str,
    seq: u64,
) -> ParseOutcome {
    if let Some(rest) = body.strip_prefix("CLNS-5-ADJCHANGE: ISIS: Adjacency to ") {
        return parse_adjchange(at, host, rest, seq, RouterOs::Ios);
    }
    if let Some(rest) = body.strip_prefix("ROUTING-ISIS-4-ADJCHANGE: Adjacency to ") {
        return parse_adjchange(at, host, rest, seq, RouterOs::IosXr);
    }
    if let Some(rest) = body.strip_prefix("LINK-3-UPDOWN: Interface ") {
        // "IFACE, changed state to Down"
        let Some((iface, state)) = rest.split_once(", changed state to ") else {
            return ParseOutcome::Malformed(ParseError::MalformedBody);
        };
        let up = match state {
            "Up" | "up" => true,
            "Down" | "down" => false,
            _ => return ParseOutcome::Malformed(ParseError::MalformedBody),
        };
        return ParseOutcome::Event(SyslogMessage {
            seq,
            event: LinkEvent {
                at,
                host: host.to_string(),
                interface: InterfaceName::expand(iface),
                kind: LinkEventKind::Link,
                up,
            },
            os: RouterOs::Ios,
        });
    }
    if let Some(rest) = body.strip_prefix("LINEPROTO-5-UPDOWN: Line protocol on Interface ") {
        let Some((iface, state)) = rest.split_once(", changed state to ") else {
            return ParseOutcome::Malformed(ParseError::MalformedBody);
        };
        let up = match state {
            "Up" | "up" => true,
            "Down" | "down" => false,
            _ => return ParseOutcome::Malformed(ParseError::MalformedBody),
        };
        return ParseOutcome::Event(SyslogMessage {
            seq,
            event: LinkEvent {
                at,
                host: host.to_string(),
                interface: InterfaceName::expand(iface),
                kind: LinkEventKind::LineProtocol,
                up,
            },
            os: RouterOs::Ios,
        });
    }
    // Anything else with a plausible mnemonic shape is irrelevant, not
    // garbage.
    if body.split(':').next().is_some_and(|m| {
        let mut parts = m.split('-');
        matches!(
            (parts.next(), parts.next(), parts.next()),
            (Some(f), Some(s), Some(_)) if !f.is_empty() && s.parse::<u8>().is_ok()
        )
    }) {
        return ParseOutcome::Irrelevant;
    }
    ParseOutcome::Malformed(ParseError::UnrecognizedBody)
}

fn parse_adjchange(
    at: faultline_topology::time::Timestamp,
    host: &str,
    rest: &str,
    seq: u64,
    os: RouterOs,
) -> ParseOutcome {
    // IOS:    "NEIGHBOR (IFACE) Up, detail"
    // IOS XR: "NEIGHBOR (IFACE) (L2) Up, detail"
    let Some((neighbor, rest)) = rest.split_once(" (") else {
        return ParseOutcome::Malformed(ParseError::MalformedBody);
    };
    let Some((iface, rest)) = rest.split_once(") ") else {
        return ParseOutcome::Malformed(ParseError::MalformedBody);
    };
    let rest = match os {
        RouterOs::IosXr => match rest.strip_prefix("(L2) ") {
            Some(r) => r,
            None => return ParseOutcome::Malformed(ParseError::MalformedBody),
        },
        RouterOs::Ios => rest,
    };
    let Some((state, detail)) = rest.split_once(", ") else {
        return ParseOutcome::Malformed(ParseError::MalformedBody);
    };
    let up = match state {
        "Up" => true,
        "Down" => false,
        _ => return ParseOutcome::Malformed(ParseError::MalformedBody),
    };
    ParseOutcome::Event(SyslogMessage {
        seq,
        event: LinkEvent {
            at,
            host: host.to_string(),
            interface: InterfaceName::expand(iface),
            kind: LinkEventKind::IsisAdjacency {
                neighbor: neighbor.to_string(),
                detail: AdjChangeDetail::from_text(detail),
            },
            up,
        },
        os,
    })
}

/// Parse a whole archive of lines, dropping everything that is not a
/// studied link-state event. Returns `(events, irrelevant, garbage)`
/// counts alongside the events.
pub fn parse_archive<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> (Vec<SyslogMessage>, u64, u64) {
    let (events, stats) = parse_archive_stats(lines);
    (events, stats.irrelevant, stats.malformed)
}

/// Parse a whole archive of lines with full per-cause accounting.
pub fn parse_archive_stats<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> (Vec<SyslogMessage>, ParseStats) {
    let mut events = Vec::new();
    let mut stats = ParseStats::default();
    for line in lines {
        let outcome = classify_line(line);
        stats.note(&outcome);
        if let ParseOutcome::Event(m) = outcome {
            events.push(m);
        }
    }
    (events, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_topology::time::Timestamp;

    fn sample(os: RouterOs, kind: LinkEventKind, up: bool) -> SyslogMessage {
        SyslogMessage {
            seq: 42,
            event: LinkEvent {
                at: Timestamp::from_millis(86_400_000 + 3_723_456),
                host: "lax-agg-01".into(),
                interface: InterfaceName::ten_gig(5),
                kind,
                up,
            },
            os,
        }
    }

    #[test]
    fn round_trips_every_message_family() {
        let cases = vec![
            sample(
                RouterOs::Ios,
                LinkEventKind::IsisAdjacency {
                    neighbor: "sac-agg-01".into(),
                    detail: AdjChangeDetail::HoldTimeExpired,
                },
                false,
            ),
            sample(
                RouterOs::IosXr,
                LinkEventKind::IsisAdjacency {
                    neighbor: "cust001-gw1".into(),
                    detail: AdjChangeDetail::NewAdjacency,
                },
                true,
            ),
            sample(RouterOs::Ios, LinkEventKind::Link, false),
            sample(RouterOs::Ios, LinkEventKind::LineProtocol, true),
        ];
        for m in cases {
            let line = m.render();
            match parse_line(&line) {
                Parsed::Event(back) => assert_eq!(back, m, "line: {line}"),
                other => panic!("expected event for {line}, got {other:?}"),
            }
        }
    }

    #[test]
    fn irrelevant_mnemonics_classified() {
        let line = "<189>7: lax-agg-01: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured from console";
        assert_eq!(parse_line(line), Parsed::Irrelevant);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(parse_line(""), Parsed::Garbage);
        assert_eq!(parse_line("not syslog at all"), Parsed::Garbage);
        assert_eq!(
            parse_line("<abc>1: h: Oct 21 2010 00:00:00.000: %LINK-3-UPDOWN: x"),
            Parsed::Garbage
        );
        assert_eq!(
            parse_line(
                "<189>1: h: BADTIME: %LINK-3-UPDOWN: Interface Gi0/0, changed state to Down"
            ),
            Parsed::Garbage
        );
        // ADJCHANGE with mangled structure.
        assert_eq!(
            parse_line(
                "<189>1: h: Oct 21 2010 00:00:00.000: %CLNS-5-ADJCHANGE: ISIS: Adjacency to x"
            ),
            Parsed::Garbage
        );
    }

    #[test]
    fn archive_parse_counts() {
        let m = sample(RouterOs::Ios, LinkEventKind::Link, true);
        let line = m.render();
        let lines = vec![
            line.as_str(),
            "<189>7: h: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured",
            "garbage",
        ];
        let (events, irrelevant, garbage) = parse_archive(lines);
        assert_eq!(events.len(), 1);
        assert_eq!(irrelevant, 1);
        assert_eq!(garbage, 1);
    }

    #[test]
    fn taxonomy_names_the_first_failing_field() {
        use ParseError::*;
        let cases = [
            ("", MissingPri),
            ("no angle bracket", MissingPri),
            ("<189 unterminated", MissingPri),
            ("<abc>1: h: Oct 21 2010 00:00:00.000: %X-1-Y: z", BadPri),
            ("<189>notanum: h: t: %X-1-Y: z", BadSeq),
            ("<189>1", BadSeq),
            ("<189>1: host-without-sep", MissingHost),
            ("<189>1: h: Oct 21 2010 00:00:0", MissingBody),
            ("<189>1: h: BADTIME: %X-1-Y: z", BadTimestamp),
            (
                "<189>1: h: Oct 21 2010 00:00:00.000: %LINK-3-UPDOWN: Interface Gi0/0, changed",
                MalformedBody,
            ),
            (
                "<189>1: h: Oct 21 2010 00:00:00.000: %no mnemonic here",
                UnrecognizedBody,
            ),
        ];
        for (line, want) in cases {
            assert_eq!(
                classify_line(line),
                ParseOutcome::Malformed(want),
                "line: {line:?}"
            );
        }
    }

    #[test]
    fn archive_stats_balance() {
        let m = sample(RouterOs::Ios, LinkEventKind::Link, true);
        let line = m.render();
        let lines = vec![
            line.as_str(),
            "<189>7: h: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured",
            "garbage",
            "<189>1: h: Oct 21 2010 00:00:0",
        ];
        let (events, stats) = parse_archive_stats(lines);
        assert_eq!(events.len(), 1);
        assert_eq!(stats.lines, 4);
        assert_eq!(stats.irrelevant, 1);
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.missing_pri, 1);
        assert_eq!(stats.missing_body, 1);
        assert!(stats.is_balanced());
    }

    #[test]
    fn short_interface_names_expanded() {
        let line = "<189>1: h: Oct 21 2010 00:00:00.000: %LINK-3-UPDOWN: Interface Te0/0/0/5, changed state to Down";
        match parse_line(line) {
            Parsed::Event(m) => {
                assert_eq!(m.event.interface.as_str(), "TenGigE0/0/0/5");
            }
            other => panic!("{other:?}"),
        }
    }
}
