//! The lossy path from a router's syslog subsystem to the collector.
//!
//! §3.3: *"Because syslog messages are transmitted via UDP and the syslog
//! process runs with low priority, message generation and delivery is far
//! from certain."* Three mechanisms produce every syslog artifact the
//! paper reports:
//!
//! 1. **Base loss** — every message is independently dropped with a small
//!    probability (UDP on a congested path, collector overload).
//! 2. **Overload loss during flapping** — when an interface generates
//!    messages rapidly, the low-priority syslog process falls behind and
//!    sheds load in *bursts*: a failure's Down and its matching Up are
//!    usually dropped (or kept) together, because the queue overflows for
//!    stretches longer than a short flap cycle. The model makes this
//!    pair-fate explicit (`flap_pair_loss`), plus a small independent
//!    per-message component (`flap_msg_loss`). Pair-fate is why §4.1
//!    finds *"less than half of all syslog state transitions are
//!    matched"* during flapping while the delivered stream still mostly
//!    alternates Down/Up; the independent component is what occasionally
//!    orphans a Down — the paper's lost-message double-downs and the
//!    handful of multi-day false positives the ticket check removes
//!    (§4.2–4.3).
//! 3. **Spurious retransmission** — routers occasionally re-emit a
//!    message restating current link state (§4.3: 52% of double-downs).
//!
//! Delivery applies a small jitter; the *message text* timestamp (what
//! the analysis reads) is the router-local generation time.

use crate::message::{LinkEventKind, SyslogMessage};
use faultline_topology::interface::InterfaceName;
use faultline_topology::time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Tunable parameters of the lossy path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Independent per-message drop probability in quiet conditions.
    pub base_loss: f64,
    /// Window over which messages about one interface are counted for
    /// overload detection.
    pub flap_window: Duration,
    /// Messages within the window at which the interface counts as
    /// flapping (overloaded).
    pub flap_threshold: usize,
    /// Probability, while overloaded, that a failure's Down+Up message
    /// pair is dropped together.
    pub flap_pair_loss: f64,
    /// Additional independent per-message drop probability while
    /// overloaded (orphans an occasional Down or Up).
    pub flap_msg_loss: f64,
    /// Maximum uniform delivery jitter added to the arrival time.
    pub jitter_max: Duration,
    /// Probability that a delivered state-change message is followed by a
    /// spurious retransmission restating the same state.
    pub spurious_prob: f64,
    /// Maximum delay of a spurious retransmission after the original.
    pub spurious_delay_max: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            base_loss: 0.008,
            flap_window: Duration::from_secs(600),
            flap_threshold: 4,
            flap_pair_loss: 0.48,
            flap_msg_loss: 0.02,
            jitter_max: Duration::from_millis(400),
            // The scenario generates spurious reminders itself (it knows
            // failure durations, so reminders restate a *persisting*
            // state, as §4.3 observes); the transport-level mechanism
            // stays available for stress tests.
            spurious_prob: 0.0,
            spurious_delay_max: Duration::from_secs(45),
            seed: 0xfa71,
        }
    }
}

impl TransportConfig {
    /// A perfectly reliable transport (for differential tests: with no
    /// loss, syslog and IS-IS reconstructions must closely agree).
    pub fn lossless(seed: u64) -> Self {
        TransportConfig {
            base_loss: 0.0,
            flap_pair_loss: 0.0,
            flap_msg_loss: 0.0,
            jitter_max: Duration::ZERO,
            spurious_prob: 0.0,
            seed,
            ..TransportConfig::default()
        }
    }
}

/// A message delivered to the collector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Arrival time at the collector (generation time + jitter).
    pub arrived_at: Timestamp,
    /// The message (its embedded timestamp is the generation time).
    pub message: SyslogMessage,
    /// True if this copy is a spurious retransmission.
    pub spurious: bool,
}

/// Counters describing what the transport did; used to validate the
/// calibration targets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Messages offered by routers.
    pub offered: u64,
    /// Messages delivered (excluding spurious copies).
    pub delivered: u64,
    /// Messages dropped by independent quiet-time loss.
    pub dropped_random: u64,
    /// Messages dropped as part of a pair-fate overload drop.
    pub dropped_overload_pair: u64,
    /// Messages dropped by the independent overload component.
    pub dropped_overload_msg: u64,
    /// Spurious retransmissions generated.
    pub spurious: u64,
}

/// Overload bookkeeping families: ADJCHANGE and physical-media messages
/// queue in different logging subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Family {
    Adjacency,
    Physical,
}

#[derive(Debug, Default)]
struct IfaceState {
    recent: VecDeque<Timestamp>,
    /// Fate drawn at the current state-run's first Down: `true` = the
    /// whole pair is dropped.
    pair_dropped: Option<bool>,
    last_was_down: bool,
}

/// The lossy router-to-collector path.
#[derive(Debug)]
pub struct LossyTransport {
    cfg: TransportConfig,
    rng: StdRng,
    ifaces: HashMap<(String, InterfaceName, Family), IfaceState>,
    stats: TransportStats,
}

impl LossyTransport {
    /// Create a transport with the given configuration.
    pub fn new(cfg: TransportConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        LossyTransport {
            cfg,
            rng,
            ifaces: HashMap::new(),
            stats: TransportStats::default(),
        }
    }

    /// Offer one message from a router. Returns zero, one, or two
    /// deliveries (the second being a spurious retransmission, whose
    /// message text carries a later generation timestamp).
    pub fn send(&mut self, message: SyslogMessage) -> Vec<Delivery> {
        self.stats.offered += 1;
        let now = message.event.at;
        let family = match message.event.kind {
            LinkEventKind::IsisAdjacency { .. } => Family::Adjacency,
            LinkEventKind::Link | LinkEventKind::LineProtocol => Family::Physical,
        };
        let key = (
            message.event.host.clone(),
            message.event.interface.clone(),
            family,
        );
        let st = self.ifaces.entry(key).or_default();

        // Overload detection: sliding count of attempts per interface.
        while let Some(&front) = st.recent.front() {
            if now
                .checked_duration_since(front)
                .map(|d| d > self.cfg.flap_window)
                == Some(true)
            {
                st.recent.pop_front();
            } else {
                break;
            }
        }
        st.recent.push_back(now);
        let overloaded = st.recent.len() >= self.cfg.flap_threshold;

        // Pair-fate: a fresh Down (re-)draws the fate; Ups (and repeated
        // same-direction messages, e.g. %LINK + %LINEPROTO) inherit it.
        let is_down = !message.event.up;
        if is_down && !st.last_was_down {
            st.pair_dropped =
                Some(overloaded && self.rng.random::<f64>() < self.cfg.flap_pair_loss);
        }
        st.last_was_down = is_down;
        // An Up with no recorded fate (stream starts mid-failure) passes.
        let pair_dropped = *st.pair_dropped.get_or_insert(false);
        if pair_dropped {
            self.stats.dropped_overload_pair += 1;
            return Vec::new();
        }

        // Independent components.
        if overloaded
            && self.cfg.flap_msg_loss > 0.0
            && self.rng.random::<f64>() < self.cfg.flap_msg_loss
        {
            self.stats.dropped_overload_msg += 1;
            return Vec::new();
        }
        if self.cfg.base_loss > 0.0 && self.rng.random::<f64>() < self.cfg.base_loss {
            self.stats.dropped_random += 1;
            return Vec::new();
        }

        self.stats.delivered += 1;
        let jitter = Duration::from_millis(if self.cfg.jitter_max.as_millis() == 0 {
            0
        } else {
            self.rng.random_range(0..=self.cfg.jitter_max.as_millis())
        });
        let mut out = vec![Delivery {
            arrived_at: now + jitter,
            message: message.clone(),
            spurious: false,
        }];

        // Spurious retransmission: the router restates the same link state
        // a little later. A dropped spurious copy is observationally
        // identical to no spurious copy, so it is delivered directly.
        if self.cfg.spurious_prob > 0.0 && self.rng.random::<f64>() < self.cfg.spurious_prob {
            let delay = Duration::from_millis(
                self.rng
                    .random_range(1_000..=self.cfg.spurious_delay_max.as_millis().max(1_001)),
            );
            let mut copy = message;
            copy.event.at = now + delay;
            copy.seq += 1_000_000; // visibly out-of-band sequence number
            self.stats.spurious += 1;
            out.push(Delivery {
                arrived_at: copy.event.at + jitter,
                message: copy,
                spurious: true,
            });
        }
        out
    }

    /// Counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{LinkEvent, LinkEventKind};
    use faultline_topology::router::RouterOs;

    fn msg(host: &str, iface: u32, at_ms: u64, up: bool) -> SyslogMessage {
        SyslogMessage {
            seq: 1,
            event: LinkEvent {
                at: Timestamp::from_millis(at_ms),
                host: host.into(),
                interface: InterfaceName::gig(iface),
                kind: LinkEventKind::IsisAdjacency {
                    neighbor: "peer".into(),
                    detail: crate::message::AdjChangeDetail::HoldTimeExpired,
                },
                up,
            },
            os: RouterOs::Ios,
        }
    }

    #[test]
    fn lossless_transport_delivers_everything() {
        let mut t = LossyTransport::new(TransportConfig::lossless(1));
        for i in 0..1_000 {
            let d = t.send(msg("r1", 0, i * 1_000, i % 2 == 1));
            assert_eq!(d.len(), 1);
            assert!(!d[0].spurious);
            assert_eq!(d[0].arrived_at, Timestamp::from_millis(i * 1_000));
        }
        assert_eq!(t.stats().delivered, 1_000);
        assert_eq!(t.stats().offered, 1_000);
    }

    #[test]
    fn base_loss_rate_is_respected() {
        let cfg = TransportConfig {
            base_loss: 0.2,
            flap_pair_loss: 0.0,
            flap_msg_loss: 0.0,
            spurious_prob: 0.0,
            seed: 7,
            ..TransportConfig::default()
        };
        let mut t = LossyTransport::new(cfg);
        let mut delivered = 0;
        for i in 0..20_000u64 {
            if !t.send(msg("r1", 0, i * 300_000, i % 2 == 1)).is_empty() {
                delivered += 1;
            }
        }
        let rate = delivered as f64 / 20_000.0;
        assert!((rate - 0.8).abs() < 0.02, "delivery rate {rate}");
    }

    #[test]
    fn flap_overload_drops_whole_pairs() {
        let cfg = TransportConfig {
            base_loss: 0.0,
            flap_pair_loss: 0.6,
            flap_msg_loss: 0.0,
            spurious_prob: 0.0,
            seed: 3,
            ..TransportConfig::default()
        };
        let mut t = LossyTransport::new(cfg);
        // A rapid flap: down/up every 5 seconds for 10 minutes.
        let mut delivered = Vec::new();
        for i in 0..120u64 {
            let m = msg("r1", 0, i * 5_000, i % 2 == 1);
            if !t.send(m.clone()).is_empty() {
                delivered.push(m.event.up);
            }
        }
        assert!(
            delivered.len() < 100,
            "a good chunk of the burst dropped, got {}",
            delivered.len()
        );
        // Pair-fate: the delivered subsequence still alternates down/up.
        for w in delivered.windows(2) {
            assert_ne!(w[0], w[1], "delivered stream must alternate");
        }
        assert!(t.stats().dropped_overload_pair > 20);
        assert!(
            t.stats().dropped_overload_pair.is_multiple_of(2),
            "pairs drop whole"
        );
    }

    #[test]
    fn quiet_interfaces_see_no_overload() {
        let cfg = TransportConfig {
            base_loss: 0.0,
            spurious_prob: 0.0,
            seed: 5,
            ..TransportConfig::default()
        };
        let mut t = LossyTransport::new(cfg);
        // One failure pair every 10 minutes: never overloaded.
        for i in 0..500u64 {
            let d = t.send(msg("r1", 0, i * 600_000, i % 2 == 1));
            assert_eq!(d.len(), 1);
        }
        assert_eq!(t.stats().dropped_overload_pair, 0);
        assert_eq!(t.stats().dropped_overload_msg, 0);
    }

    #[test]
    fn overload_is_per_interface_and_family() {
        let cfg = TransportConfig {
            base_loss: 0.0,
            flap_pair_loss: 1.0,
            flap_msg_loss: 0.0,
            flap_threshold: 2,
            spurious_prob: 0.0,
            seed: 3,
            ..TransportConfig::default()
        };
        let mut t = LossyTransport::new(cfg);
        // Flap iface 0 into overload.
        for i in 0..10u64 {
            t.send(msg("r1", 0, i * 5_000, i % 2 == 1));
        }
        // Iface 1 and another router are unaffected.
        assert_eq!(t.send(msg("r1", 1, 51_000, false)).len(), 1);
        assert_eq!(t.send(msg("r2", 0, 52_000, false)).len(), 1);
        // A %LINK message about iface 0 is a different family: only its
        // own history counts.
        let phys = SyslogMessage {
            seq: 1,
            event: LinkEvent {
                at: Timestamp::from_millis(53_000),
                host: "r1".into(),
                interface: InterfaceName::gig(0),
                kind: LinkEventKind::Link,
                up: false,
            },
            os: RouterOs::Ios,
        };
        assert_eq!(t.send(phys).len(), 1);
    }

    #[test]
    fn flap_msg_loss_can_orphan_a_down() {
        let cfg = TransportConfig {
            base_loss: 0.0,
            flap_pair_loss: 0.0,
            flap_msg_loss: 0.5,
            flap_threshold: 2,
            spurious_prob: 0.0,
            seed: 9,
            ..TransportConfig::default()
        };
        let mut t = LossyTransport::new(cfg);
        let mut downs = 0;
        let mut ups = 0;
        for i in 0..2_000u64 {
            let m = msg("r1", 0, i * 5_000, i % 2 == 1);
            if !t.send(m.clone()).is_empty() {
                if m.event.up {
                    ups += 1;
                } else {
                    downs += 1;
                }
            }
        }
        // Independent loss breaks pair symmetry sometimes.
        assert_ne!(downs, ups, "independent overload loss orphans messages");
        assert!(t.stats().dropped_overload_msg > 300);
    }

    #[test]
    fn spurious_copies_restate_same_state() {
        let cfg = TransportConfig {
            base_loss: 0.0,
            flap_pair_loss: 0.0,
            flap_msg_loss: 0.0,
            spurious_prob: 1.0,
            jitter_max: Duration::ZERO,
            seed: 11,
            ..TransportConfig::default()
        };
        let mut t = LossyTransport::new(cfg);
        let original = msg("r1", 0, 1_000, false);
        let d = t.send(original.clone());
        assert_eq!(d.len(), 2);
        assert!(d[1].spurious);
        assert_eq!(d[1].message.event.up, original.event.up);
        assert!(d[1].message.event.at > original.event.at);
        assert_eq!(d[1].message.event.interface, original.event.interface);
        assert_eq!(t.stats().spurious, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut t = LossyTransport::new(TransportConfig {
                seed: 99,
                ..TransportConfig::default()
            });
            let mut n = 0;
            for i in 0..5_000u64 {
                n += t.send(msg("r1", 0, i * 7_000, i % 2 == 1)).len();
            }
            n
        };
        assert_eq!(run(), run());
    }
}
