//! # faultline-syslog
//!
//! Syslog substrate for the *faultline* reproduction of "A Comparison of
//! Syslog and IS-IS for Network Failure Analysis" (IMC 2013).
//!
//! §3.3 of the paper: every CENIC router sends syslog messages over UDP to
//! a central logging server; the study uses the subset describing link,
//! link-protocol, and IS-IS adjacency state. Because delivery is UDP and
//! the syslog process runs at low priority, *"message generation and
//! delivery is far from certain"* — that unreliability is the entire
//! subject of the paper, so this crate models it mechanistically:
//!
//! * [`caltime`] — calendar rendering/parsing of simulation timestamps in
//!   Cisco `datetime msec year` format;
//! * [`message`] — the structured link-state messages and their exact
//!   Cisco text grammars (`%CLNS-5-ADJCHANGE` for IOS,
//!   `%ROUTING-ISIS-4-ADJCHANGE` for IOS XR, `%LINK-3-UPDOWN`,
//!   `%LINEPROTO-5-UPDOWN`), rendered inside RFC 3164 framing;
//! * [`parse`] — the parser that recovers structured events from raw
//!   lines, tolerant of unknown mnemonics;
//! * [`transport`] — the lossy UDP path: base loss, *flap-amplified* loss
//!   (rate-limited emission during bursts, §4.1), delivery jitter, and
//!   spurious retransmissions (§4.3);
//! * [`collector`] — the central logging server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caltime;
pub mod collector;
pub mod message;
pub mod parse;
pub mod transport;

pub use collector::{Collector, LogRecord};
pub use message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
pub use parse::{
    parse_bytes, LinkEventKindRef, ParseError, ParseOutcome, ParseOutcomeRef, ParseStats,
    SyslogMessageRef,
};
pub use transport::{LossyTransport, TransportConfig};
