//! Fuzz corpus for the line parser: mutated *real* lines.
//!
//! `tests/props.rs` already proves totality on arbitrary garbage. The
//! corpus here is nastier in a more realistic way: it starts from
//! genuine rendered Cisco lines — including timestamps straddling the
//! year boundary and the leap day — and applies the corruptions a
//! collector actually sees (truncation, two lines spliced together,
//! characters replaced with separators, control bytes, and non-ASCII).
//! The contract under test:
//!
//! 1. [`classify_line`] never panics — every input maps to a
//!    [`ParseOutcome`];
//! 2. the per-cause accounting in [`ParseStats`] always balances;
//! 3. an *unmutated* rendered line still round-trips exactly.

use faultline_syslog::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
use faultline_syslog::parse::{
    classify_line, parse_archive_stats, parse_bytes, ParseOutcome, ParseStats,
};
use faultline_topology::interface::InterfaceName;
use faultline_topology::router::RouterOs;
use faultline_topology::time::Timestamp;
use proptest::prelude::*;

const DAY_MS: u64 = 86_400_000;

/// Replacement characters a corrupted feed plausibly produces: grammar
/// separators, control bytes, and non-ASCII.
const CORRUPT: &[char] = &[
    '<', '>', '%', ':', '#', ' ', '-', '\0', '\t', '\u{7f}', 'ÿ', '\u{fffd}',
];

fn arb_detail() -> impl Strategy<Value = AdjChangeDetail> {
    prop_oneof![
        Just(AdjChangeDetail::NewAdjacency),
        Just(AdjChangeDetail::HoldTimeExpired),
        Just(AdjChangeDetail::InterfaceDown),
        Just(AdjChangeDetail::AdjacencyReset),
    ]
}

fn arb_kind() -> impl Strategy<Value = LinkEventKind> {
    prop_oneof![
        ("[a-z][a-z0-9-]{0,12}", arb_detail()).prop_map(|(n, d)| LinkEventKind::IsisAdjacency {
            neighbor: n,
            detail: d,
        }),
        Just(LinkEventKind::Link),
        Just(LinkEventKind::LineProtocol),
    ]
}

/// Timestamps biased toward calendar trouble spots: the simulated
/// archive's first year boundary (Dec 31 → Jan 1) and the leap day of
/// the following year, plus a broad background range.
fn arb_at_ms() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Year boundary: one minute each side of midnight.
        (72 * DAY_MS - 60_000)..(73 * DAY_MS + 60_000),
        // Leap day, full span plus a minute each side.
        (497 * DAY_MS - 60_000)..(498 * DAY_MS + 60_000),
        0u64..(500 * DAY_MS),
    ]
}

fn arb_message() -> impl Strategy<Value = SyslogMessage> {
    (
        (any::<u64>(), arb_at_ms(), "[a-z][a-z0-9-]{0,12}"),
        (0u32..48, arb_kind(), any::<bool>(), any::<bool>()),
    )
        .prop_map(|((seq, at, host), (iface, kind, up, xr))| SyslogMessage {
            seq,
            event: LinkEvent {
                at: Timestamp::from_millis(at),
                host,
                interface: InterfaceName::gig(iface),
                kind,
                up,
            },
            os: if xr { RouterOs::IosXr } else { RouterOs::Ios },
        })
}

/// One corruption applied to a rendered line. Indices are taken modulo
/// the char count so every drawn value is meaningful.
#[derive(Debug, Clone)]
enum Mutation {
    /// Keep only the first `n mod len` characters.
    Truncate(usize),
    /// Replace the character at `i mod len` with a corrupt character.
    Substitute(usize, usize),
    /// Splice: prefix of this line + suffix of a second rendered line.
    Splice(usize),
    /// Leave the line untouched (the round-trip control arm).
    Identity,
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..256).prop_map(Mutation::Truncate),
        ((0usize..256), (0usize..CORRUPT.len())).prop_map(|(i, c)| Mutation::Substitute(i, c)),
        (0usize..256).prop_map(Mutation::Splice),
        Just(Mutation::Identity),
    ]
}

fn apply(line: &str, other: &str, m: &Mutation) -> String {
    let chars: Vec<char> = line.chars().collect();
    match *m {
        Mutation::Truncate(n) => chars[..n % (chars.len() + 1)].iter().collect(),
        Mutation::Substitute(i, c) => {
            let mut out = chars;
            let i = i % out.len();
            out[i] = CORRUPT[c];
            out.into_iter().collect()
        }
        Mutation::Splice(cut) => {
            let head: String = chars[..cut % (chars.len() + 1)].iter().collect();
            let tail_chars: Vec<char> = other.chars().collect();
            let tail: String = tail_chars[cut % (tail_chars.len() + 1)..].iter().collect();
            head + &tail
        }
        Mutation::Identity => line.to_string(),
    }
}

proptest! {
    /// Totality and classification: every mutated real line maps to an
    /// outcome, and untouched lines still parse to the original message.
    #[test]
    fn mutated_real_lines_are_always_classified(
        msg in arb_message(),
        other in arb_message(),
        mutation in arb_mutation(),
    ) {
        let line = msg.render();
        let mutated = apply(&line, &other.render(), &mutation);
        let outcome = classify_line(&mutated);
        if matches!(mutation, Mutation::Identity) {
            match outcome {
                ParseOutcome::Event(back) => {
                    // %LINK/%LINEPROTO don't encode the OS; normalize.
                    let mut expect = msg.clone();
                    if !matches!(expect.event.kind, LinkEventKind::IsisAdjacency { .. }) {
                        expect.os = RouterOs::Ios;
                    }
                    prop_assert_eq!(back, expect, "line: {}", mutated);
                }
                other => prop_assert!(false, "clean line {:?} -> {:?}", mutated, other),
            }
        } else {
            // Any outcome is acceptable for a mutated line; reaching
            // here at all is the property (no panic), and stats must
            // note it consistently.
            let mut stats = ParseStats::default();
            stats.note(&outcome);
            prop_assert!(stats.is_balanced(), "{:?} -> {:?}", mutated, outcome);
        }
    }

    /// Archive-level accounting balances over a whole mutated corpus:
    /// events + irrelevant + malformed == lines, and the per-cause
    /// breakdown sums to the malformed total.
    #[test]
    fn mutated_archive_stats_balance(
        specs in proptest::collection::vec((arb_message(), arb_mutation()), 1..40),
        spliced in arb_message(),
    ) {
        let donor = spliced.render();
        let lines: Vec<String> = specs
            .iter()
            .map(|(m, mu)| apply(&m.render(), &donor, mu))
            .collect();
        let (events, stats) = parse_archive_stats(lines.iter().map(String::as_str));
        prop_assert!(stats.is_balanced(), "{:?}", stats);
        prop_assert_eq!(stats.lines, lines.len() as u64);
        prop_assert_eq!(stats.events, events.len() as u64);
    }

    /// Truncation sweep: every prefix of a real line (char-boundary cuts
    /// included, since lines can carry multi-byte hostnames) classifies
    /// without panicking, and the full line is an event.
    #[test]
    fn every_prefix_classifies(msg in arb_message()) {
        let line = msg.render();
        let chars: Vec<char> = line.chars().collect();
        for n in 0..=chars.len() {
            let prefix: String = chars[..n].iter().collect();
            let outcome = classify_line(&prefix);
            if n == chars.len() {
                prop_assert!(matches!(outcome, ParseOutcome::Event(_)));
            }
        }
    }

    /// Differential property: over the whole mutated corpus (the same
    /// corruptions the string-path fuzz arm sees), the zero-copy byte
    /// parser agrees with [`classify_line`] exactly once its borrowed
    /// output is converted to the owning form.
    #[test]
    fn parse_bytes_matches_classify_line(
        msg in arb_message(),
        other in arb_message(),
        mutation in arb_mutation(),
    ) {
        let mutated = apply(&msg.render(), &other.render(), &mutation);
        prop_assert_eq!(
            parse_bytes(mutated.as_bytes()).to_owned(),
            classify_line(&mutated),
            "line: {:?}",
            mutated
        );
    }

    /// Totality over raw bytes: arbitrary byte strings — including
    /// invalid UTF-8, which the `&str` parser can never even see —
    /// classify without panicking, and the outcome feeds the accounting
    /// consistently.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let outcome = parse_bytes(&bytes).to_owned();
        let mut stats = ParseStats::default();
        stats.note(&outcome);
        prop_assert!(stats.is_balanced(), "{:?} -> {:?}", bytes, outcome);
    }

    /// Byte-level truncation sweep: every *byte* prefix of a real line —
    /// including cuts through the middle of a multi-byte character, which
    /// the char-level sweep above cannot produce — classifies without
    /// panicking, and agrees with the string parser whenever the prefix
    /// happens to be valid UTF-8.
    #[test]
    fn every_byte_prefix_classifies(msg in arb_message()) {
        let line = msg.render();
        let bytes = line.as_bytes();
        for n in 0..=bytes.len() {
            let outcome = parse_bytes(&bytes[..n]).to_owned();
            if let Ok(prefix) = std::str::from_utf8(&bytes[..n]) {
                prop_assert_eq!(outcome, classify_line(prefix), "prefix: {:?}", prefix);
            }
        }
    }
}
