//! Property-based tests for the syslog substrate.

use faultline_syslog::caltime;
use faultline_syslog::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
use faultline_syslog::parse::{parse_line, Parsed};
use faultline_syslog::transport::{LossyTransport, TransportConfig};
use faultline_topology::interface::InterfaceName;
use faultline_topology::router::RouterOs;
use faultline_topology::time::Timestamp;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = LinkEventKind> {
    prop_oneof![
        ("[a-z][a-z0-9-]{0,20}", arb_detail()).prop_map(|(n, d)| {
            LinkEventKind::IsisAdjacency {
                neighbor: n,
                detail: d,
            }
        }),
        Just(LinkEventKind::Link),
        Just(LinkEventKind::LineProtocol),
    ]
}

fn arb_detail() -> impl Strategy<Value = AdjChangeDetail> {
    prop_oneof![
        Just(AdjChangeDetail::NewAdjacency),
        Just(AdjChangeDetail::HoldTimeExpired),
        Just(AdjChangeDetail::InterfaceDown),
        Just(AdjChangeDetail::AdjacencyReset),
    ]
}

fn arb_iface() -> impl Strategy<Value = InterfaceName> {
    prop_oneof![
        (0u32..64).prop_map(InterfaceName::ten_gig),
        (0u32..64).prop_map(InterfaceName::gig),
    ]
}

proptest! {
    /// Calendar rendering round-trips for any instant within ~3 years of
    /// the epoch.
    #[test]
    fn caltime_round_trip(ms in 0u64..(1_000 * 86_400_000)) {
        let t = Timestamp::from_millis(ms);
        prop_assert_eq!(caltime::parse(&caltime::render(t)), Some(t));
    }

    /// Calendar conversion is strictly monotone.
    #[test]
    fn caltime_monotone(a in 0u64..(900 * 86_400_000), d in 1u64..86_400_000) {
        let ta = caltime::render(Timestamp::from_millis(a));
        let tb = caltime::render(Timestamp::from_millis(a + d));
        prop_assert_ne!(ta, tb);
    }

    /// Every renderable message parses back to itself, for both OS
    /// grammars and all message families.
    #[test]
    fn message_render_parse_round_trip(
        seq in any::<u64>(),
        at in 0u64..(500 * 86_400_000),
        host in "[a-z][a-z0-9-]{0,20}",
        iface in arb_iface(),
        kind in arb_kind(),
        up in any::<bool>(),
        xr in any::<bool>(),
    ) {
        let msg = SyslogMessage {
            seq,
            event: LinkEvent {
                at: Timestamp::from_millis(at),
                host,
                interface: iface,
                kind,
                up,
            },
            os: if xr { RouterOs::IosXr } else { RouterOs::Ios },
        };
        let line = msg.render();
        match parse_line(&line) {
            Parsed::Event(back) => {
                // %LINK/%LINEPROTO don't encode the OS; normalize it.
                let mut expect = msg.clone();
                if !matches!(expect.event.kind, LinkEventKind::IsisAdjacency { .. }) {
                    expect.os = RouterOs::Ios;
                }
                prop_assert_eq!(back, expect, "line: {}", line);
            }
            other => prop_assert!(false, "line {} -> {:?}", line, other),
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(line in ".{0,200}") {
        let _ = parse_line(&line);
    }

    /// The parser never panics on mutated valid lines either.
    #[test]
    fn parser_total_on_mutations(
        at in 0u64..(400 * 86_400_000),
        cut in 0usize..100,
    ) {
        let msg = SyslogMessage {
            seq: 1,
            event: LinkEvent {
                at: Timestamp::from_millis(at),
                host: "r1".into(),
                interface: InterfaceName::gig(0),
                kind: LinkEventKind::Link,
                up: true,
            },
            os: RouterOs::Ios,
        };
        let line = msg.render();
        let cut = cut.min(line.len());
        let _ = parse_line(&line[..cut]);
        let _ = parse_line(&line[cut..]);
    }

    /// Transport conservation: offered = delivered + all drop counters;
    /// and a lossless transport is the identity.
    #[test]
    fn transport_conserves_messages(seed in any::<u64>(), n in 1u64..300) {
        let mut t = LossyTransport::new(TransportConfig { seed, ..TransportConfig::default() });
        for i in 0..n {
            let m = SyslogMessage {
                seq: i,
                event: LinkEvent {
                    at: Timestamp::from_millis(i * 7_000),
                    host: "r1".into(),
                    interface: InterfaceName::gig(0),
                    kind: LinkEventKind::IsisAdjacency {
                        neighbor: "r2".into(),
                        detail: AdjChangeDetail::HoldTimeExpired,
                    },
                    up: i % 2 == 1,
                },
                os: RouterOs::Ios,
            };
            t.send(m);
        }
        let s = t.stats();
        prop_assert_eq!(
            s.offered,
            s.delivered + s.dropped_random + s.dropped_overload_pair + s.dropped_overload_msg
        );
    }
}
