//! Property-based tests for the syslog substrate.

use faultline_syslog::caltime;
use faultline_syslog::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
use faultline_syslog::parse::{parse_line, Parsed};
use faultline_syslog::transport::{LossyTransport, TransportConfig};
use faultline_topology::interface::InterfaceName;
use faultline_topology::router::RouterOs;
use faultline_topology::time::Timestamp;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = LinkEventKind> {
    prop_oneof![
        ("[a-z][a-z0-9-]{0,20}", arb_detail()).prop_map(|(n, d)| {
            LinkEventKind::IsisAdjacency {
                neighbor: n,
                detail: d,
            }
        }),
        Just(LinkEventKind::Link),
        Just(LinkEventKind::LineProtocol),
    ]
}

fn arb_detail() -> impl Strategy<Value = AdjChangeDetail> {
    prop_oneof![
        Just(AdjChangeDetail::NewAdjacency),
        Just(AdjChangeDetail::HoldTimeExpired),
        Just(AdjChangeDetail::InterfaceDown),
        Just(AdjChangeDetail::AdjacencyReset),
    ]
}

fn arb_iface() -> impl Strategy<Value = InterfaceName> {
    prop_oneof![
        (0u32..64).prop_map(InterfaceName::ten_gig),
        (0u32..64).prop_map(InterfaceName::gig),
    ]
}

proptest! {
    /// Calendar rendering round-trips for any instant within ~3 years of
    /// the epoch.
    #[test]
    fn caltime_round_trip(ms in 0u64..(1_000 * 86_400_000)) {
        let t = Timestamp::from_millis(ms);
        prop_assert_eq!(caltime::parse(&caltime::render(t)), Some(t));
    }

    /// Calendar conversion is strictly monotone.
    #[test]
    fn caltime_monotone(a in 0u64..(900 * 86_400_000), d in 1u64..86_400_000) {
        let ta = caltime::render(Timestamp::from_millis(a));
        let tb = caltime::render(Timestamp::from_millis(a + d));
        prop_assert_ne!(ta, tb);
    }

    /// Every renderable message parses back to itself, for both OS
    /// grammars and all message families.
    #[test]
    fn message_render_parse_round_trip(
        seq in any::<u64>(),
        at in 0u64..(500 * 86_400_000),
        host in "[a-z][a-z0-9-]{0,20}",
        iface in arb_iface(),
        kind in arb_kind(),
        up in any::<bool>(),
        xr in any::<bool>(),
    ) {
        let msg = SyslogMessage {
            seq,
            event: LinkEvent {
                at: Timestamp::from_millis(at),
                host,
                interface: iface,
                kind,
                up,
            },
            os: if xr { RouterOs::IosXr } else { RouterOs::Ios },
        };
        let line = msg.render();
        match parse_line(&line) {
            Parsed::Event(back) => {
                // %LINK/%LINEPROTO don't encode the OS; normalize it.
                let mut expect = msg.clone();
                if !matches!(expect.event.kind, LinkEventKind::IsisAdjacency { .. }) {
                    expect.os = RouterOs::Ios;
                }
                prop_assert_eq!(back, expect, "line: {}", line);
            }
            other => prop_assert!(false, "line {} -> {:?}", line, other),
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(line in ".{0,200}") {
        let _ = parse_line(&line);
    }

    /// The parser never panics on mutated valid lines either.
    #[test]
    fn parser_total_on_mutations(
        at in 0u64..(400 * 86_400_000),
        cut in 0usize..100,
    ) {
        let msg = SyslogMessage {
            seq: 1,
            event: LinkEvent {
                at: Timestamp::from_millis(at),
                host: "r1".into(),
                interface: InterfaceName::gig(0),
                kind: LinkEventKind::Link,
                up: true,
            },
            os: RouterOs::Ios,
        };
        let line = msg.render();
        let cut = cut.min(line.len());
        let _ = parse_line(&line[..cut]);
        let _ = parse_line(&line[cut..]);
    }

    /// Transport conservation: offered = delivered + all drop counters;
    /// and a lossless transport is the identity.
    #[test]
    fn transport_conserves_messages(seed in any::<u64>(), n in 1u64..300) {
        let mut t = LossyTransport::new(TransportConfig { seed, ..TransportConfig::default() });
        for i in 0..n {
            let m = SyslogMessage {
                seq: i,
                event: LinkEvent {
                    at: Timestamp::from_millis(i * 7_000),
                    host: "r1".into(),
                    interface: InterfaceName::gig(0),
                    kind: LinkEventKind::IsisAdjacency {
                        neighbor: "r2".into(),
                        detail: AdjChangeDetail::HoldTimeExpired,
                    },
                    up: i % 2 == 1,
                },
                os: RouterOs::Ios,
            };
            t.send(m);
        }
        let s = t.stats();
        prop_assert_eq!(
            s.offered,
            s.delivered + s.dropped_random + s.dropped_overload_pair + s.dropped_overload_msg
        );
    }
}

/// Arbitrary transport knobs (kept in ranges where every mechanism can
/// fire) and an arbitrary offered stream with unique sequence numbers.
fn arb_transport_cfg() -> impl Strategy<Value = TransportConfig> {
    (
        0.0f64..0.5,
        0.0f64..1.0,
        0.0f64..0.5,
        0.0f64..1.0,
        2usize..6,
        any::<u64>(),
    )
        .prop_map(
            |(base_loss, flap_pair_loss, flap_msg_loss, spurious_prob, flap_threshold, seed)| {
                TransportConfig {
                    base_loss,
                    flap_pair_loss,
                    flap_msg_loss,
                    spurious_prob,
                    flap_threshold,
                    seed,
                    ..TransportConfig::default()
                }
            },
        )
}

fn arb_offered(n: usize) -> impl Strategy<Value = Vec<SyslogMessage>> {
    proptest::collection::vec((0u64..86_400_000, 0u32..4, arb_kind(), any::<bool>()), 1..n)
        .prop_map(|specs| {
            let mut v: Vec<SyslogMessage> = specs
                .into_iter()
                .enumerate()
                .map(|(i, (at, iface, kind, up))| SyslogMessage {
                    seq: i as u64,
                    event: LinkEvent {
                        at: Timestamp::from_millis(at),
                        host: "r1".into(),
                        interface: InterfaceName::gig(iface),
                        kind,
                        up,
                    },
                    os: RouterOs::Ios,
                })
                .collect();
            v.sort_by_key(|m| m.event.at);
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delivered ⊆ sent: every primary delivery is one of the offered
    /// messages, unmodified, and no message is delivered twice as a
    /// primary copy. Spurious copies are flagged, carry an out-of-band
    /// sequence number, and restate the state of a message that *was*
    /// delivered.
    #[test]
    fn delivered_is_a_subset_of_sent(cfg in arb_transport_cfg(), offered in arb_offered(200)) {
        let mut t = LossyTransport::new(cfg);
        let mut primary_seqs = std::collections::HashSet::new();
        for m in &offered {
            for d in t.send(m.clone()) {
                if d.spurious {
                    prop_assert_eq!(d.message.seq, m.seq + 1_000_000);
                    prop_assert_eq!(d.message.event.up, m.event.up);
                    prop_assert!(d.message.event.at > m.event.at);
                } else {
                    prop_assert_eq!(&d.message, m, "primary copy must be unmodified");
                    prop_assert!(d.arrived_at >= m.event.at, "jitter only delays");
                    prop_assert!(primary_seqs.insert(d.message.seq), "duplicate primary");
                }
            }
        }
        let sent: std::collections::HashSet<u64> = offered.iter().map(|m| m.seq).collect();
        prop_assert!(primary_seqs.is_subset(&sent));
        prop_assert_eq!(primary_seqs.len() as u64, t.stats().delivered);
    }

    /// Duplication is bounded: one send yields at most two deliveries —
    /// at most one primary and at most one spurious copy — so the
    /// collector sees at most one duplicate per offered message.
    #[test]
    fn at_most_one_spurious_copy_per_message(
        cfg in arb_transport_cfg(),
        offered in arb_offered(200),
    ) {
        let mut t = LossyTransport::new(cfg);
        let mut spurious_total = 0u64;
        for m in &offered {
            let ds = t.send(m.clone());
            prop_assert!(ds.len() <= 2, "send produced {} deliveries", ds.len());
            let spurious = ds.iter().filter(|d| d.spurious).count();
            prop_assert!(spurious <= 1);
            if spurious == 1 {
                // A spurious copy only ever accompanies a primary one.
                prop_assert_eq!(ds.len(), 2);
                prop_assert!(!ds[0].spurious);
            }
            spurious_total += spurious as u64;
        }
        prop_assert_eq!(spurious_total, t.stats().spurious);
        prop_assert!(t.stats().spurious <= t.stats().delivered);
    }

    /// Deterministic replay: the same configuration (seed included) and
    /// the same offered stream reproduce the exact same deliveries and
    /// counters.
    #[test]
    fn replay_is_deterministic_for_fixed_seed(
        cfg in arb_transport_cfg(),
        offered in arb_offered(150),
    ) {
        let replay = |cfg: &TransportConfig| {
            let mut t = LossyTransport::new(cfg.clone());
            let out: Vec<_> = offered.iter().flat_map(|m| t.send(m.clone())).collect();
            (out, t.stats())
        };
        let (a, sa) = replay(&cfg);
        let (b, sb) = replay(&cfg);
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }
}
