//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's `harness = false` benches use:
//! `Criterion`, `benchmark_group` (with `sample_size` / `throughput`),
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples; median per-iteration time is
//! printed to stdout. No statistical analysis, plots, or baselines.

use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation attached to a group; reported alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier, e.g. `BenchmarkId::from_parameter(n)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few unrecorded runs so first-touch costs don't dominate.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: Option<&str>, name: &str, samples: &mut [Duration], tp: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let rate = match tp {
        Some(Throughput::Bytes(b)) if median.as_secs_f64() > 0.0 => {
            format!(
                "  {:.1} MiB/s",
                b as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench: {label:<48} median {median:>12.3?}{rate}");
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut (),
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(
            Some(&self.name),
            &id.to_string(),
            &mut b.samples,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        S: std::fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(
            Some(&self.name),
            &id.to_string(),
            &mut b.samples,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: &mut self.unit,
        }
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report(None, &id.to_string(), &mut b.samples, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("t");
        g.sample_size(3).throughput(Throughput::Bytes(64));
        g.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| black_box(1u64 + 1))
        });
        g.bench_with_input(BenchmarkId::new("f", 2), &2u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
