//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! deterministic strategies (`any`, integer/float ranges, `Just`,
//! `prop_oneof!`, tuples, `collection::vec`, regex-subset string
//! strategies, `prop_map`), the `proptest!` test macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert!` family.
//!
//! Differences from the real crate: no shrinking (failing inputs are
//! reported verbatim), and a fixed deterministic seed derived from the
//! test name so runs are reproducible without persistence files.
//! `*.proptest-regressions` files on disk are ignored.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG (xoshiro256++, seeded via SplitMix64 — self-contained, deterministic)
// ---------------------------------------------------------------------------

/// Deterministic RNG handed to strategies during generation.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in [0, bound) without modulo bias (128-bit widening multiply).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy, produced by [`Strategy::boxed`] and `prop_oneof!`.
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniformly picks one of several boxed strategies (see `prop_oneof!`).
pub struct OneOf<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.arms.len() as u64) as usize;
        self.arms[ix].generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly centred values — good enough for property tests.
        (rng.f64_unit() - 0.5) * 2e9
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_rangefrom_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as u64;
                let span = (<$t>::MAX as u64).wrapping_sub(lo);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span + 1)) as $t
            }
        }
    )*};
}
impl_rangefrom_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.f64_unit() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.f64_unit() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// collection::vec
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Size specification accepted by [`vec`].
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize); // inclusive
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    // Integer-literal size ranges without a usize suffix default to i32;
    // accept them too so `vec(s, 4..256)` works as it does upstream.
    impl IntoSizeRange for Range<i32> {
        fn bounds(&self) -> (usize, usize) {
            assert!(
                self.start < self.end && self.start >= 0,
                "bad vec size range"
            );
            (self.start as usize, (self.end - 1) as usize)
        }
    }

    impl IntoSizeRange for RangeInclusive<i32> {
        fn bounds(&self) -> (usize, usize) {
            assert!(*self.start() >= 0, "bad vec size range");
            (*self.start() as usize, *self.end() as usize)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy: `"pattern" : Strategy<Value = String>`
// ---------------------------------------------------------------------------

/// One atom of the supported regex subset: a set of candidate chars plus a
/// repetition range.
#[derive(Debug)]
struct RegexAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// `.` generates from this printable-ASCII pool (plus a few separators that
/// exercise parser edge cases).
fn dot_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    pool.push('\t');
    pool
}

/// Parse the regex subset used by the test suite: literal chars, `.`,
/// character classes `[a-z0-9.-]` (ranges + literals, no negation), and
/// quantifiers `{m,n}`, `{n}`, `?`, `*`, `+`.
fn parse_regex_subset(pattern: &str) -> Vec<RegexAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let pool: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                dot_pool()
            }
            '[' => {
                i += 1;
                let mut pool = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = chars[i];
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        pool.push(chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (c as u32, chars[i + 2] as u32);
                        assert!(lo <= hi, "bad class range in regex strategy {pattern:?}");
                        for cp in lo..=hi {
                            pool.push(char::from_u32(cp).unwrap());
                        }
                        i += 3;
                    } else {
                        pool.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // consume ']'
                pool
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                let c = chars[i + 1];
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        let lo: usize = lo.trim().parse().expect("bad quantifier");
                        let hi: usize = if hi.trim().is_empty() {
                            lo + 16
                        } else {
                            hi.trim().parse().expect("bad quantifier")
                        };
                        (lo, hi)
                    } else {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(RegexAtom {
            chars: pool,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex_subset(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.max - atom.min) as u64;
            let n = atom.min + rng.below(span + 1) as usize;
            for _ in 0..n {
                let ix = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[ix]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Error carried out of a failing property body by the `prop_assert!` family.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a hash used to derive a stable per-test seed from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  both: {:?}",
                ::std::format!($($fmt)+),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf {
            arms: ::std::vec![$($crate::Strategy::boxed($arm)),+],
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = $crate::fnv1a(::std::concat!(
                    ::std::module_path!(),
                    "::",
                    ::std::stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::from_seed(base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let mut __case_desc = ::std::string::String::new();
                    $(
                        let __gen = $crate::Strategy::generate(&($strat), &mut rng);
                        __case_desc.push_str(&::std::format!(
                            "{} = {:?}; ",
                            ::std::stringify!($arg),
                            &__gen
                        ));
                        let $arg = __gen;
                    )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            case,
                            e,
                            __case_desc
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w; // full range must not panic
            let f = (-1e3f64..1e3).generate(&mut rng);
            assert!((-1e3..1e3).contains(&f));
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,20}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 21);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            let t = ".{0,200}".generate(&mut rng);
            assert!(t.chars().count() <= 200);
            let u = "[A-Za-z0-9/]{1,10}".generate(&mut rng);
            assert!((1..=10).contains(&u.chars().count()));
        }
    }

    #[test]
    fn deterministic_generation() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        let strat = collection::vec(0u64..1000, 0..=20);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(mut xs in collection::vec(any::<u32>(), 0..16), k in 1usize..4) {
            xs.truncate(xs.len() / k.max(1));
            prop_assert!(xs.len() <= 16);
            let n = xs.iter().fold(0usize, |acc, _| acc + 1);
            prop_assert_eq!(xs.len(), n);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), (5u8..=9).prop_map(|x| x)]) {
            prop_assert!(v == 1 || v == 2 || (5..=9).contains(&v));
            prop_assert_ne!(v, 0);
        }
    }
}
