//! Offline stand-in for `serde_derive`.
//!
//! Dependency-free derive macros (no `syn`/`quote`) for the vendored
//! `serde`'s [`Serialize`]/[`Deserialize`] Value-tree traits. The item is
//! parsed directly from its token stream; generated impls follow
//! `serde_json`'s encoding conventions: named structs are objects, tuple
//! structs are arrays (newtypes transparent), unit enum variants are
//! strings, data-carrying variants externally tagged single-key objects.
//!
//! Supported field attributes: `#[serde(skip)]`, `#[serde(default)]`,
//! `#[serde(default = "path")]`. Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is handled during deserialization.
#[derive(Clone, Debug, PartialEq)]
enum MissingPolicy {
    /// Error out.
    Required,
    /// `Default::default()`.
    DefaultTrait,
    /// Call the named function.
    DefaultFn(String),
}

#[derive(Clone, Debug)]
struct Field {
    name: String,
    skip: bool,
    missing: MissingPolicy,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    data: Data,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consume leading `#[...]` attributes, returning serde attr contents.
    fn take_attrs(&mut self) -> Vec<TokenStream> {
        let mut serde_attrs = Vec::new();
        while self.is_punct('#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("expected [...] after #");
            };
            let mut inner = Cursor::new(g.stream());
            if inner.is_ident("serde") {
                inner.next();
                if let Some(TokenTree::Group(args)) = inner.next() {
                    serde_attrs.push(args.stream());
                }
            }
        }
        serde_attrs
    }

    /// Consume an optional `pub` / `pub(...)` visibility.
    fn take_vis(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consume a type up to a top-level `,` (tracking `<...>` nesting).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

/// Interpret collected `#[serde(...)]` argument streams for one field.
fn field_policy(attrs: &[TokenStream]) -> (bool, MissingPolicy) {
    let mut skip = false;
    let mut missing = MissingPolicy::Required;
    for stream in attrs {
        let mut c = Cursor::new(stream.clone());
        while !c.at_end() {
            let Some(TokenTree::Ident(word)) = c.next() else {
                continue;
            };
            match word.to_string().as_str() {
                "skip" => skip = true,
                "default" => {
                    if c.is_punct('=') {
                        c.next();
                        let Some(TokenTree::Literal(lit)) = c.next() else {
                            panic!("expected string after default =");
                        };
                        let raw = lit.to_string();
                        let path = raw.trim_matches('"').to_string();
                        missing = MissingPolicy::DefaultFn(path);
                    } else {
                        missing = MissingPolicy::DefaultTrait;
                    }
                }
                other => panic!("unsupported serde attribute `{other}`"),
            }
            if c.is_punct(',') {
                c.next();
            }
        }
    }
    (skip, missing)
}

/// Parse the `{ ... }` body of a named-field struct or struct variant.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.take_attrs();
        if c.at_end() {
            break;
        }
        c.take_vis();
        let Some(TokenTree::Ident(name)) = c.next() else {
            panic!("expected field name");
        };
        assert!(c.is_punct(':'), "expected : after field name");
        c.next();
        c.skip_type();
        if c.is_punct(',') {
            c.next();
        }
        let (skip, missing) = field_policy(&attrs);
        fields.push(Field {
            name: name.to_string(),
            skip,
            missing,
        });
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant `( ... )` body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    while !c.at_end() {
        c.take_attrs();
        c.take_vis();
        if c.at_end() {
            break;
        }
        count += 1;
        c.skip_type();
        if c.is_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.take_attrs();
    c.take_vis();
    let Some(TokenTree::Ident(kw)) = c.next() else {
        panic!("expected struct or enum");
    };
    let kw = kw.to_string();
    let Some(TokenTree::Ident(name)) = c.next() else {
        panic!("expected type name");
    };
    let name = name.to_string();
    if c.is_punct('<') {
        panic!("derive does not support generic types ({name})");
    }
    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                data: Data::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                data: Data::TupleStruct(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                data: Data::UnitStruct,
            },
            other => panic!("unexpected struct body {other:?}"),
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = c.next() else {
                panic!("expected enum body");
            };
            let mut vc = Cursor::new(g.stream());
            let mut variants = Vec::new();
            while !vc.at_end() {
                vc.take_attrs();
                if vc.at_end() {
                    break;
                }
                let Some(TokenTree::Ident(vname)) = vc.next() else {
                    panic!("expected variant name");
                };
                let kind = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vc.next();
                        VariantKind::Named(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        vc.next();
                        VariantKind::Tuple(arity)
                    }
                    _ => VariantKind::Unit,
                };
                // Skip an explicit discriminant, if any.
                if vc.is_punct('=') {
                    vc.next();
                    while !vc.at_end() && !vc.is_punct(',') {
                        vc.next();
                    }
                }
                if vc.is_punct(',') {
                    vc.next();
                }
                variants.push(Variant {
                    name: vname.to_string(),
                    kind,
                });
            }
            Item {
                name,
                data: Data::Enum(variants),
            }
        }
        other => panic!("cannot derive for {other}"),
    }
}

fn missing_expr(field: &Field) -> String {
    match &field.missing {
        MissingPolicy::Required => format!(
            "return ::core::result::Result::Err(::serde::Error::custom(\"missing field {}\"))",
            field.name
        ),
        MissingPolicy::DefaultTrait => "::core::default::Default::default()".to_string(),
        MissingPolicy::DefaultFn(path) => format!("{path}()"),
    }
}

/// `field: <lookup or missing-policy>,` lines for a named-field body.
fn named_de_body(fields: &[Field], obj: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
            continue;
        }
        out.push_str(&format!(
            "{name}: match {obj}.get(\"{name}\") {{\n\
             ::core::option::Option::Some(v) => ::serde::Deserialize::deserialize_value(v)?,\n\
             ::core::option::Option::None => {{ {missing} }},\n\
             }},\n",
            name = f.name,
            obj = obj,
            missing = missing_expr(f),
        ));
    }
    out
}

/// `object.insert("field", ...);` lines for a named-field body.
fn named_ser_body(fields: &[Field], map: &str, access_prefix: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            continue;
        }
        out.push_str(&format!(
            "{map}.insert(::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::serialize_value(&{prefix}{name}));\n",
            map = map,
            name = f.name,
            prefix = access_prefix,
        ));
    }
    out
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => format!(
            "let mut object = ::serde::Map::new();\n{}::serde::Value::Object(object)",
            named_ser_body(fields, "object", "self.")
        ),
        Data::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                         let mut object = ::serde::Map::new();\n\
                         object.insert(::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::serialize_value(__f0));\n\
                         ::serde::Value::Object(object)\n}},\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binders}) => {{\n\
                             let mut object = ::serde::Map::new();\n\
                             object.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(vec![{items}]));\n\
                             ::serde::Value::Object(object)\n}},\n",
                            binders = binders.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => {{\n\
                             let mut inner = ::serde::Map::new();\n\
                             {inner_body}\
                             let mut object = ::serde::Map::new();\n\
                             object.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(object)\n}},\n",
                            binders = binders.join(", "),
                            inner_body = named_ser_body(fields, "inner", ""),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => format!(
            "let object = value.as_object().ok_or_else(|| \
             ::serde::Error::custom(\"expected object for {name}\"))?;\n\
             ::core::result::Result::Ok({name} {{\n{fields_body}}})",
            fields_body = named_de_body(fields, "object"),
        ),
        Data::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(value)?))"
        ),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{\n\
                 return ::core::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\"));\n}}\n\
                 ::core::result::Result::Ok({name}({items}))",
                items = items.join(", "),
            )
        }
        Data::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize_value(&arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if arr.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple arity for {name}::{vn}\"));\n}}\n\
                             ::core::result::Result::Ok({name}::{vn}({items}))\n}},\n",
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let object = inner.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                         ::core::result::Result::Ok({name}::{vn} {{\n{fields_body}}})\n}},\n",
                        fields_body = named_de_body(fields, "object"),
                    )),
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{other}}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = m.iter().next().expect(\"len 1\");\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{other}}\"))),\n\
                 }}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected {name} enum encoding\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(value: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derive `serde::Serialize` (Value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (Value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
