//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` with the
//! non-poisoning `lock()` signature this workspace uses.

use std::sync::MutexGuard;

/// A mutual-exclusion primitive (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from a poisoned state.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
