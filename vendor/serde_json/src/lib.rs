//! Offline stand-in for `serde_json`, built on the vendored `serde`'s
//! [`Value`] tree: a recursive-descent JSON parser, compact and pretty
//! writers, and the [`json!`] macro. Output conventions follow upstream
//! `serde_json` (integral floats render with a trailing `.0`, pretty
//! printing indents two spaces).

use std::fmt;
use std::io;

pub use serde::{Map, Number, Value};

/// A JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if !v.is_finite() {
                out.push_str("null");
            } else if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => number_into(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                write_value(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push('}');
        }
    }
}

/// Serialize to a compact string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), false, 0);
    Ok(out)
}

/// Serialize to a pretty (2-space indented) string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), true, 0);
    Ok(out)
}

/// Serialize compactly into a writer.
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serialize prettily into a writer.
pub fn to_writer_pretty<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize_value(&value)?)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error::new(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| Error::new(e.to_string()))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        let number = if is_float {
            Number::Float(text.parse().map_err(|_| Error::new("invalid number"))?)
        } else if let Some(rest) = text.strip_prefix('-') {
            let _ = rest;
            match text.parse::<i64>() {
                Ok(v) => Number::NegInt(v),
                Err(_) => Number::Float(text.parse().map_err(|_| Error::new("invalid number"))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(text.parse().map_err(|_| Error::new("invalid number"))?),
            }
        };
        Ok(Value::Number(number))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::new(format!("bad array at {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(Error::new(format!("bad object at {other:?}"))),
            }
        }
    }
}

/// Parse a typed value from a JSON string.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing bytes at {}", p.pos)));
    }
    Ok(T::deserialize_value(&v)?)
}

/// Parse a typed value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

/// Parse a typed value from a reader.
pub fn from_reader<R: io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    from_slice(&buf)
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

macro_rules! from_impl {
    ($($t:ty => $variant:expr),*) => {$(
        impl From<$t> for JsonFrom {
            fn from(v: $t) -> Self {
                JsonFrom($variant(v))
            }
        }
    )*};
}

/// Conversion shim the [`json!`] macro funnels scalar expressions through.
#[doc(hidden)]
pub struct JsonFrom(pub Value);

from_impl! {
    bool => Value::Bool,
    String => Value::String,
    u8 => |v: u8| Value::Number(Number::PosInt(v as u64)),
    u16 => |v: u16| Value::Number(Number::PosInt(v as u64)),
    u32 => |v: u32| Value::Number(Number::PosInt(v as u64)),
    u64 => |v| Value::Number(Number::PosInt(v)),
    usize => |v: usize| Value::Number(Number::PosInt(v as u64)),
    f32 => |v: f32| Value::Number(Number::Float(v as f64)),
    f64 => |v| Value::Number(Number::Float(v)),
    Vec<Value> => Value::Array,
    Value => |v| v
}

macro_rules! from_int_impl {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonFrom {
            fn from(v: $t) -> Self {
                let wide = v as i64;
                JsonFrom(if wide >= 0 {
                    Value::Number(Number::PosInt(wide as u64))
                } else {
                    Value::Number(Number::NegInt(wide))
                })
            }
        }
    )*};
}
from_int_impl!(i8, i16, i32, i64, isize);

impl From<&str> for JsonFrom {
    fn from(v: &str) -> Self {
        JsonFrom(Value::String(v.to_string()))
    }
}

impl From<&String> for JsonFrom {
    fn from(v: &String) -> Self {
        JsonFrom(Value::String(v.clone()))
    }
}

/// Build a [`Value`] from a JSON-looking literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $( object.insert(::std::string::String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::JsonFrom::from($other).0
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = json!({
            "name": "faultline",
            "count": 3,
            "nested": { "pi": 3.5, "flag": true, "nothing": null },
            "list": [1, 2, 3],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["nested"]["pi"].as_f64(), Some(3.5));
    }

    #[test]
    fn floats_render_like_serde_json() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&7u64).unwrap(), "7");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" tab\t back\\slash \u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str(r#""😀""#).unwrap();
        assert_eq!(surrogate, "\u{1F600}");
    }

    #[test]
    fn pretty_is_parseable_and_indented() {
        let v = json!({"a": [1, 2], "b": {"c": "d"}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": ["));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn empty_object_from_str() {
        let v: Value = from_str("{}").unwrap();
        assert_eq!(v, Value::Object(Map::new()));
        let v: Value = from_str("  [ ]  ").unwrap();
        assert_eq!(v, Value::Array(vec![]));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn index_assignment() {
        let mut v: Value = from_str("{\"x\":1}").unwrap();
        v["label"] = json!("hello");
        assert_eq!(v["label"].as_str(), Some("hello"));
        v.as_object_mut().unwrap().remove("x");
        assert!(v["x"].is_null());
    }
}
