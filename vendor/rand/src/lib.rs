//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the *small* slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`] (here a xoshiro256++ generator seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::random`]/[`Rng::random_range`],
//! and [`seq::IndexedRandom::choose`]. The stream differs from upstream
//! `StdRng` (ChaCha12), but every consumer in this workspace only relies
//! on *determinism for a fixed seed*, which this implementation provides.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's domain; `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::random_range`] accepts, generic over the element type so
/// unsuffixed integer literals adopt the type expected at the call site
/// (matching upstream `rand`'s inference behaviour).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via 128-bit widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start() + u * (self.end() - self.start())
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty random_range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling, mirroring `rand::seq::IndexedRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.random_range(5u32..=5);
            assert_eq!(v, 5);
            let f = rng.random_range(0.2..0.9);
            assert!((0.2..0.9).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1u32, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
