//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a simplified serialization framework with serde's *spelling*: a
//! [`Serialize`]/[`Deserialize`] trait pair plus `#[derive(Serialize,
//! Deserialize)]` macros (feature `derive`, from the companion
//! `serde_derive` proc-macro crate). Instead of upstream's
//! visitor/serializer architecture, both traits convert through one
//! concrete JSON-shaped [`Value`] tree; `serde_json` then parses/renders
//! that tree. The encoding conventions match `serde_json`'s defaults:
//! structs are objects, unit enum variants are strings, data-carrying
//! variants are externally tagged single-key objects, newtype structs are
//! transparent, and maps serialize their keys as strings (sorted for
//! `HashMap`, so output is deterministic).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map (the object representation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert, replacing (in place) any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Remove an entry by key.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let ix = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(ix).1)
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Does the map contain the key?
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-shaped value tree: the interchange format between [`Serialize`],
/// [`Deserialize`], and `serde_json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// As `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As `u64`, if a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64`, if a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an array, if one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a mutable array, if one.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object, if one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As a mutable object, if one.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field, or `Null` for misses (mirrors `serde_json` indexing).
    #[allow(clippy::should_implement_trait)] // the `Index` impl below delegates here
    pub fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        Value::index(self, key)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifying object index, mirroring `serde_json::Value`.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Object(_)) {
            *self = Value::Object(Map::new());
        }
        let Value::Object(m) = self else {
            unreachable!()
        };
        if !m.contains_key(key) {
            m.insert(key.to_string(), Value::Null);
        }
        m.get_mut(key).expect("just inserted")
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(ix).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Construct from any message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Error helpers under serde's usual path.
pub mod de {
    pub use crate::Error;
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Convert to the interchange tree.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the interchange tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::sync::Arc<str> {
    fn serialize_value(&self) -> Value {
        Value::String(self.as_ref().to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(std::sync::Arc::from)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $ix:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($ix),+].len();
                if arr.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($t::deserialize_value(&arr[$ix])?,)+))
            }
        }
    )*};
}
tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Render a serialized key as an object-key string.
fn key_to_string(v: Value) -> String {
    match v {
        Value::String(s) => s,
        Value::Number(Number::PosInt(n)) => n.to_string(),
        Value::Number(Number::NegInt(n)) => n.to_string(),
        Value::Number(Number::Float(f)) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key {other:?}"),
    }
}

/// Recover a key type from its object-key string.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize_value(&Value::String(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        return K::deserialize_value(&Value::Number(Number::PosInt(n)));
    }
    if let Ok(n) = key.parse::<i64>() {
        return K::deserialize_value(&Value::Number(Number::NegInt(n)));
    }
    if let Ok(n) = key.parse::<f64>() {
        return K::deserialize_value(&Value::Number(Number::Float(n)));
    }
    Err(Error::custom(format!("cannot deserialize map key {key:?}")))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Hash iteration order is unstable; sort by rendered key so the
        // output is deterministic (golden files, differential tests).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.serialize_value()), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = HashMap::with_capacity_and_hasher(obj.len(), S::default());
        for (k, v) in obj.iter() {
            out.insert(key_from_string(k)?, V::deserialize_value(v)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.serialize_value()), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, v) in obj.iter() {
            out.insert(key_from_string(k)?, V::deserialize_value(v)?);
        }
        Ok(out)
    }
}

impl Serialize for std::time::Duration {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "secs".to_string(),
            Value::Number(Number::PosInt(self.as_secs())),
        );
        m.insert(
            "nanos".to_string(),
            Value::Number(Number::PosInt(self.subsec_nanos() as u64)),
        );
        Value::Object(m)
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected duration object"))?;
        let secs = obj
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("missing secs"))?;
        let nanos = obj.get("nanos").and_then(Value::as_u64).unwrap_or(0);
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let arr = value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        // Sort the rendered elements so hash iteration order can't leak into
        // the output (compact JSON comparison in tests).
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize_value).collect();
        items.sort_by_key(crate::to_sort_key);
        Value::Array(items)
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let arr = value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

/// Stable comparison key for a Value (used to canonicalize set ordering).
fn to_sort_key(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => format!("{n:?}"),
        Value::Bool(b) => b.to_string(),
        Value::Null => String::new(),
        other => format!("{other:?}"),
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected IPv4 address string"))?;
        s.parse()
            .map_err(|e| Error::custom(format!("bad IPv4 address {s:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize_value(&7u32.serialize_value()), Ok(7));
        assert_eq!(i64::deserialize_value(&(-3i64).serialize_value()), Ok(-3));
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Option::<u8>::deserialize_value(&Value::Null),
            Ok(None::<u8>)
        );
        let v: (u32, f64) =
            Deserialize::deserialize_value(&(4u32, 0.5f64).serialize_value()).unwrap();
        assert_eq!(v, (4, 0.5));
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u32);
        m.insert("a".to_string(), 2u32);
        let v = m.serialize_value();
        let obj = v.as_object().unwrap();
        let keys: Vec<&String> = obj.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
        let back: HashMap<String, u32> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_keyed_map_round_trips() {
        let mut m = BTreeMap::new();
        m.insert(10u64, "x".to_string());
        m.insert(9u64, "y".to_string());
        let back: BTreeMap<u64, String> =
            Deserialize::deserialize_value(&m.serialize_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn arrays_enforce_length() {
        let arr = [1u64, 2, 3];
        let v = arr.serialize_value();
        let back: [u64; 3] = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, arr);
        assert!(<[u64; 4]>::deserialize_value(&v).is_err());
    }

    #[test]
    fn index_mut_autovivifies() {
        let mut v = Value::Null;
        v["label"] = Value::String("x".to_string());
        assert_eq!(v["label"].as_str(), Some("x"));
        assert!(v["missing"].is_null());
    }
}
