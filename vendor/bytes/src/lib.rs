//! Offline stand-in for the `bytes` crate: the read ([`Buf`]) and write
//! ([`BufMut`]) cursor traits the IS-IS wire codec uses, network
//! (big-endian) byte order throughout.

/// Sequential big-endian reader over a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Skip `cnt` bytes. Panics if not available.
    fn advance(&mut self, cnt: usize);
    /// Copy `dst.len()` bytes out. Panics if not available.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential big-endian writer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trip_big_endian() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16(0x1234);
        out.put_u32(0xDEAD_BEEF);
        out.put_slice(&[1, 2, 3]);
        assert_eq!(out, [0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3]);

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 10);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xDEAD_BEEF);
        let mut tail = [0u8; 2];
        buf.copy_to_slice(&mut tail);
        assert_eq!(tail, [1, 2]);
        buf.advance(1);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut buf: &[u8] = &[1];
        let _ = buf.get_u16();
    }
}
