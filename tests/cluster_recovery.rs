//! Shard-crash recovery harness for the sharded cluster runtime.
//!
//! The contract (see `faultline-core::cluster`): kill one shard of a
//! durable cluster at an arbitrary event boundary, let the supervisor
//! recover it independently through the ordinary `DurableStream::recover`
//! ladder (its own `shard-{i}/` checkpoints + journal), and the final
//! merged report is **byte-identical** to both a healthy cluster run and
//! the single-process batch answer. Healthy shards are never restarted:
//! their durability counters report zero restores and their engines are
//! never rebuilt.

use faultline_core::cluster::{
    partition_events, run_cluster, run_durable_cluster, shard_dir, ClusterConfig,
};
use faultline_core::linktable::from_scenario;
use faultline_core::recovery::DurabilityPolicy;
use faultline_core::{scenario_event_stream, Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::{crash_points_seeded, shard_kill_seeded, ChaosConfig, ShardKill};
use std::fs;
use std::path::{Path, PathBuf};

/// Self-cleaning scratch directory (no tempfile crate in this offline
/// workspace).
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("faultline-cluster-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn tight_policy() -> DurabilityPolicy {
    DurabilityPolicy {
        checkpoint_interval: 7,
        segment_max_records: 16,
        retain_checkpoints: 2,
        ..DurabilityPolicy::default()
    }
}

/// Kill one seeded shard at several seeded event boundaries; after
/// supervisor recovery the merged output is byte-identical to batch, the
/// recovery ledger names exactly the killed shard, and every healthy
/// shard reports zero restores.
#[test]
fn killed_shard_recovers_byte_identical() {
    let data = run(&ScenarioParams::tiny(42));
    let events = scenario_event_stream(&data);
    let expected = {
        let batch = Analysis::run(&data, AnalysisConfig::default());
        serde_json::to_string(&batch.output).unwrap()
    };
    let cfg = ClusterConfig::new(4);
    let table = from_scenario(&data);
    let shard_events: Vec<u64> = partition_events(&table, &events, cfg.shards)
        .iter()
        .map(|s| s.len() as u64)
        .collect();
    for kill_seed in [1u64, 17, 99] {
        let kill = shard_kill_seeded(kill_seed, &shard_events)
            .expect("tiny scenario shards always hold >1 events");
        let tmp = TempDir::new(&format!("kill-{kill_seed}"));
        let durable =
            run_durable_cluster(tmp.path(), &data, &events, &cfg, &tight_policy(), &[kill])
                .expect("durable cluster run");
        assert_eq!(
            expected,
            serde_json::to_string(&durable.result.output).unwrap(),
            "merged output diverged after killing shard {} at {}",
            kill.shard,
            kill.after_events
        );
        assert_eq!(durable.recoveries.len(), 1, "exactly one recovery");
        assert_eq!(durable.recoveries[0].shard, kill.shard);
        assert_eq!(
            durable.recoveries[0].report.resumed_at_seq, kill.after_events,
            "journal-before-ingest: an in-process kill loses nothing"
        );
        for (i, &restores) in durable.shard_restores.iter().enumerate() {
            if i as u32 == kill.shard {
                assert_eq!(restores, 1, "killed shard restores exactly once");
            } else {
                assert_eq!(restores, 0, "healthy shard {i} must never restart");
            }
        }
        assert_eq!(
            durable
                .result
                .report
                .cluster
                .as_ref()
                .unwrap()
                .recovery_events,
            1
        );
    }
}

/// The same contract across arbitrary kill boundaries on one shard
/// (sampled via `crash_points_seeded`, the same generator the
/// single-process crash harness uses), under a chaos-mangled archive.
#[test]
fn arbitrary_kill_boundaries_under_chaos_stay_byte_identical() {
    let mut params = ScenarioParams::tiny(7);
    params.chaos = ChaosConfig::mild(7 * 31);
    let data = run(&params);
    let events = scenario_event_stream(&data);
    let expected = {
        let batch = Analysis::run(&data, AnalysisConfig::default());
        serde_json::to_string(&batch.output).unwrap()
    };
    let cfg = ClusterConfig::new(3);
    let table = from_scenario(&data);
    let shard_events: Vec<u64> = partition_events(&table, &events, cfg.shards)
        .iter()
        .map(|s| s.len() as u64)
        .collect();
    // Kill the busiest shard — the worst case for replay volume.
    let victim = (0..cfg.shards)
        .max_by_key(|&i| shard_events[i as usize])
        .unwrap();
    for point in crash_points_seeded(1234, shard_events[victim as usize], 4) {
        let tmp = TempDir::new(&format!("boundary-{point}"));
        let kill = ShardKill {
            shard: victim,
            after_events: point,
        };
        let durable =
            run_durable_cluster(tmp.path(), &data, &events, &cfg, &tight_policy(), &[kill])
                .expect("durable cluster run");
        assert_eq!(
            expected,
            serde_json::to_string(&durable.result.output).unwrap(),
            "kill at boundary {point} diverged"
        );
        assert_eq!(durable.recoveries.len(), 1);
        assert!(
            durable
                .shard_restores
                .iter()
                .enumerate()
                .all(|(i, &r)| (i as u32 == victim) == (r == 1)),
            "only the victim restores: {:?}",
            durable.shard_restores
        );
    }
}

/// Two shards killed in the same run: the supervisor recovers each from
/// its own directory; the merged answer still matches batch.
#[test]
fn two_simultaneous_shard_deaths_recover_independently() {
    let data = run(&ScenarioParams::tiny(11));
    let events = scenario_event_stream(&data);
    let expected = {
        let batch = Analysis::run(&data, AnalysisConfig::default());
        serde_json::to_string(&batch.output).unwrap()
    };
    let cfg = ClusterConfig::new(4);
    let table = from_scenario(&data);
    let shard_events: Vec<u64> = partition_events(&table, &events, cfg.shards)
        .iter()
        .map(|s| s.len() as u64)
        .collect();
    let mut victims: Vec<u32> = (0..cfg.shards).collect();
    victims.sort_by_key(|&i| std::cmp::Reverse(shard_events[i as usize]));
    let kills: Vec<ShardKill> = victims[..2]
        .iter()
        .map(|&shard| ShardKill {
            shard,
            after_events: shard_events[shard as usize] / 2,
        })
        .collect();
    let tmp = TempDir::new("double-kill");
    let durable = run_durable_cluster(tmp.path(), &data, &events, &cfg, &tight_policy(), &kills)
        .expect("durable cluster run");
    assert_eq!(
        expected,
        serde_json::to_string(&durable.result.output).unwrap()
    );
    assert_eq!(durable.recoveries.len(), 2);
    let restored: u64 = durable.shard_restores.iter().sum();
    assert_eq!(restored, 2, "exactly the two victims restore");
}

/// Durable-cluster mode with delta chains: the killed shard's newest
/// snapshot is arranged to be a *delta*, so its supervisor recovery must
/// walk a real base+delta chain — and the merged answer is still
/// byte-identical to batch, with the merged durability counters showing
/// both the deltas written and the chain walked.
#[test]
fn killed_shard_recovers_through_delta_chain() {
    let data = run(&ScenarioParams::tiny(23));
    let events = scenario_event_stream(&data);
    let expected = {
        let batch = Analysis::run(&data, AnalysisConfig::default());
        serde_json::to_string(&batch.output).unwrap()
    };
    let cfg = ClusterConfig::new(3);
    let table = from_scenario(&data);
    let shard_events: Vec<u64> = partition_events(&table, &events, cfg.shards)
        .iter()
        .map(|s| s.len() as u64)
        .collect();
    let victim = (0..cfg.shards)
        .max_by_key(|&i| shard_events[i as usize])
        .unwrap();
    // tight_policy inherits the delta defaults: fulls every 8th
    // snapshot. Land the kill just past a snapshot index k whose
    // (k - 1) % 8 != 0, so the newest snapshot at the kill is a delta.
    let interval = tight_policy().checkpoint_interval;
    let mut k = (shard_events[victim as usize] / interval)
        .saturating_sub(1)
        .max(2);
    if (k - 1).is_multiple_of(8) {
        k -= 1;
    }
    let kill = ShardKill {
        shard: victim,
        after_events: k * interval + interval / 2,
    };
    assert!(
        kill.after_events < shard_events[victim as usize],
        "fixture: busiest shard must be long enough ({} events)",
        shard_events[victim as usize]
    );
    let tmp = TempDir::new("delta-chain-kill");
    let durable = run_durable_cluster(tmp.path(), &data, &events, &cfg, &tight_policy(), &[kill])
        .expect("durable cluster run");
    assert_eq!(
        expected,
        serde_json::to_string(&durable.result.output).unwrap(),
        "merged output diverged recovering shard {victim} through a delta chain"
    );
    assert_eq!(durable.recoveries.len(), 1);
    assert!(
        durable.recoveries[0].report.chain_length >= 1,
        "the victim's recovery must walk at least one delta: {:?}",
        durable.recoveries[0].report
    );
    let d = durable
        .result
        .report
        .durability
        .expect("durable cluster reports durability");
    assert!(d.deltas_written > 0, "shards must write delta snapshots");
    assert!(
        d.chain_length_at_recovery >= 1,
        "the merged counters carry the recovered chain length"
    );
}

/// A healthy durable cluster (no kills) matches both the in-memory
/// cluster and batch, leaves every `shard-{i}/` directory populated, and
/// reports zero recoveries.
#[test]
fn healthy_durable_cluster_matches_in_memory_cluster() {
    let data = run(&ScenarioParams::tiny(42));
    let events = scenario_event_stream(&data);
    let cfg = ClusterConfig::new(3);
    let in_memory = run_cluster(&data, &events, &cfg).unwrap();
    let tmp = TempDir::new("healthy");
    let durable = run_durable_cluster(tmp.path(), &data, &events, &cfg, &tight_policy(), &[])
        .expect("durable cluster run");
    assert_eq!(
        serde_json::to_string(&in_memory.output).unwrap(),
        serde_json::to_string(&durable.result.output).unwrap(),
    );
    assert!(durable.recoveries.is_empty());
    assert!(durable.shard_restores.iter().all(|&r| r == 0));
    for i in 0..cfg.shards {
        assert!(
            shard_dir(tmp.path(), i).is_dir(),
            "shard {i} directory missing"
        );
    }
    let d = durable
        .result
        .report
        .durability
        .expect("durable cluster reports durability");
    assert_eq!(d.restores, 0);
    assert!(d.journal_records > 0, "shards journal their substreams");
}
