//! Differential graceful-degradation harness for the chaos layer.
//!
//! Three contracts, in increasing strength:
//!
//! 1. **Identity off.** `ChaosConfig::default()` is inert: a scenario
//!    run with it is byte-identical to one without, so the golden tables
//!    in `tests/golden/` keep pinning the clean pipeline.
//! 2. **No panic on.** Every preset, including the adversarial `severe`,
//!    flows through batch analysis, streaming analysis, and every
//!    table/figure without panicking, and batch and stream remain
//!    byte-equivalent on the mangled data.
//! 3. **Bounded drift.** Because chaos perturbs only the collection
//!    path, a chaotic run shares its ground truth with the clean run of
//!    the same scenario seed. Under the `mild` preset the headline
//!    metrics must stay inside documented drift bands (see
//!    ARCHITECTURE.md "Adversity model"); the IS-IS side, which `mild`
//!    does not touch at all, must not move one bit.
//!
//! Alongside, the accounting is checked exactly: chaos line
//! conservation, parse taxonomy balance, and the `RobustnessCounters`
//! surfaced on every `PipelineReport`.

use faultline_core::admission::{run_overloaded, AdmissionConfig, SimSchedule};
use faultline_core::{scenario_event_stream, Analysis, AnalysisConfig, StreamAnalysis};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::ChaosConfig;
use faultline_topology::time::Timestamp;

/// The analysis end of the period, with a day of slack for skewed
/// stamps that legitimately spill past it.
fn quarantine_horizon(data: &faultline_sim::ScenarioData) -> Timestamp {
    Timestamp::from_millis((data.period_days * 86_400_000.0) as u64 + 86_400_000)
}

fn chaotic(seed: u64, chaos: ChaosConfig) -> ScenarioParams {
    let mut params = ScenarioParams::tiny(seed);
    params.chaos = chaos;
    params
}

#[test]
fn chaos_off_is_byte_identical_to_a_clean_run() {
    let clean = run(&ScenarioParams::tiny(42));
    let mut params = ScenarioParams::tiny(42);
    params.chaos = ChaosConfig::default();
    assert!(!params.chaos.enabled());
    let off = run(&params);
    assert!(off.chaos.is_none(), "inert chaos must not be reported");
    assert_eq!(
        serde_json::to_string(&clean).unwrap(),
        serde_json::to_string(&off).unwrap(),
        "disabled chaos must leave the scenario byte-identical"
    );
    // And the analysis surface over it, stage counters included.
    let a = Analysis::run(&clean, AnalysisConfig::default());
    let b = Analysis::run(&off, AnalysisConfig::default());
    assert_eq!(
        serde_json::to_string(&a.output).unwrap(),
        serde_json::to_string(&b.output).unwrap()
    );
    assert_eq!(a.report.robustness, b.report.robustness);
}

/// Every preset at several seeds: the full batch surface (all tables,
/// figures, forensics) and the streaming engine must survive and agree.
#[test]
fn no_preset_panics_and_stream_stays_batch_equivalent() {
    for seed in [1u64, 2, 3] {
        for (name, chaos) in [
            ("mild", ChaosConfig::mild(seed * 31)),
            ("moderate", ChaosConfig::moderate(seed * 31)),
            ("severe", ChaosConfig::severe(seed * 31)),
        ] {
            let data = run(&chaotic(seed, chaos));
            let outcome = data.chaos.as_ref().expect("chaos ran");
            assert!(outcome.stats.is_balanced(), "{name}: {:?}", outcome.stats);
            assert_eq!(
                outcome.stats.lines_out, data.raw_syslog_lines as u64,
                "{name}: archive length must match chaos accounting"
            );
            assert_eq!(
                outcome.parse.lines, outcome.stats.lines_out,
                "{name}: every surviving line must be classified"
            );
            assert!(outcome.parse.is_balanced(), "{name}: {:?}", outcome.parse);

            let config = AnalysisConfig {
                quarantine_horizon: Some(quarantine_horizon(&data)),
                ..AnalysisConfig::default()
            };
            let batch = Analysis::try_run(&data, config.clone()).expect("chaotic data is valid");
            // The whole derived surface, not just the headline tables.
            let _ = batch.table1();
            let _ = batch.table2();
            let _ = batch.table3();
            let _ = batch.table4();
            let _ = batch.table5();
            let _ = batch.table6();
            let _ = batch.table7();
            let _ = batch.false_positives();
            let _ = batch.isolation_forensics();
            let _ = batch.ks_tests(faultline_topology::link::LinkClass::Cpe);
            let _ = batch.figure1();

            // Robustness accounting is recomputable from the outcome.
            let r = &batch.report.robustness;
            assert_eq!(r.raw_lines, data.raw_syslog_lines as u64, "{name}");
            assert_eq!(r.malformed_lines, outcome.parse.malformed, "{name}");
            assert_eq!(r.irrelevant_lines, outcome.parse.irrelevant, "{name}");

            // Stream equivalence holds on mangled data too.
            let mut stream = StreamAnalysis::try_new(&data, config).expect("valid");
            for chunk in scenario_event_stream(&data).chunks(97) {
                stream.ingest_batch(chunk);
            }
            let result = stream.flush();
            assert_eq!(
                serde_json::to_string(&batch.output).unwrap(),
                serde_json::to_string(&result.output).unwrap(),
                "{name} seed {seed}: stream must equal batch under chaos"
            );
            assert_eq!(result.report.robustness, batch.report.robustness, "{name}");
        }
    }
}

/// The mild preset leaves the IS-IS path untouched (no listener outages
/// are injected), so the IS-IS reconstruction must be bit-identical to
/// the clean run of the same scenario seed, while the syslog side stays
/// within the documented drift bands.
#[test]
fn mild_chaos_stays_within_drift_bands() {
    for seed in [42u64, 7, 19] {
        let clean_data = run(&ScenarioParams::tiny(seed));
        let chaotic_data = run(&chaotic(seed, ChaosConfig::mild(seed ^ 0xC0C0)));
        // Shared ground truth: chaos is strictly post-collection.
        assert_eq!(
            clean_data.truth.failures.len(),
            chaotic_data.truth.failures.len()
        );
        assert_eq!(clean_data.transitions, chaotic_data.transitions);

        let clean = Analysis::run(&clean_data, AnalysisConfig::default());
        let chaotic = Analysis::run(&chaotic_data, AnalysisConfig::default());
        let t4_clean = clean.table4();
        let t4_chaos = chaotic.table4();

        // Band 0 (exact): the untouched source does not move.
        assert_eq!(
            clean.output.isis_failures, chaotic.output.isis_failures,
            "seed {seed}"
        );
        assert_eq!(t4_clean.isis_failures, t4_chaos.isis_failures);

        // Band 1: syslog failure count within ±25% of clean.
        let rel = |a: f64, b: f64| if b == 0.0 { 0.0 } else { (a - b).abs() / b };
        let count_drift = rel(
            t4_chaos.syslog_failures as f64,
            t4_clean.syslog_failures as f64,
        );
        assert!(
            count_drift <= 0.25,
            "seed {seed}: syslog failure count drifted {:.1}% ({} -> {})",
            100.0 * count_drift,
            t4_clean.syslog_failures,
            t4_chaos.syslog_failures
        );

        // Band 2: syslog downtime hours within ±25% of clean.
        let downtime_drift = rel(
            t4_chaos.syslog_downtime_hours,
            t4_clean.syslog_downtime_hours,
        );
        assert!(
            downtime_drift <= 0.25,
            "seed {seed}: syslog downtime drifted {:.1}% ({:.1}h -> {:.1}h)",
            100.0 * downtime_drift,
            t4_clean.syslog_downtime_hours,
            t4_chaos.syslog_downtime_hours
        );

        // Band 3: cross-source matches within ±30% of clean (they
        // compound both sides' perturbations).
        let match_drift = rel(
            t4_chaos.overlap_failures as f64,
            t4_clean.overlap_failures as f64,
        );
        assert!(
            match_drift <= 0.30,
            "seed {seed}: matched failures drifted {:.1}% ({} -> {})",
            100.0 * match_drift,
            t4_clean.overlap_failures,
            t4_chaos.overlap_failures
        );
    }
}

/// Injected listener outages must reach the sanitization stage exactly
/// like organic ones: the offline-span record grows and failures
/// spanning the injected darkness are removed, not invented.
#[test]
fn injected_listener_outages_feed_sanitization() {
    let seed = 11u64;
    let clean_data = run(&ScenarioParams::tiny(seed));
    let chaotic_data = run(&chaotic(seed, ChaosConfig::moderate(5)));
    let injected = chaotic_data
        .chaos
        .as_ref()
        .expect("chaos ran")
        .stats
        .listener_outages_injected;
    assert!(injected > 0);
    assert_eq!(
        chaotic_data.offline_spans.len(),
        clean_data.offline_spans.len() + injected as usize
    );
    // The spans arrive sorted, as sanitization expects.
    for w in chaotic_data.offline_spans.windows(2) {
        assert!(w[0].from <= w[1].from);
    }
    let a = Analysis::run(&chaotic_data, AnalysisConfig::default());
    // No surviving IS-IS failure spans an offline period.
    for f in &a.output.isis_failures {
        for s in &chaotic_data.offline_spans {
            assert!(f.end < s.from || f.start > s.to);
        }
    }
}

/// A DST fall-back mid-period makes router text timestamps
/// non-monotonic. The replay path must still hand the pipeline a
/// sorted archive, and analysis must complete.
#[test]
fn dst_fall_back_keeps_the_pipeline_sorted_and_alive() {
    let chaos = ChaosConfig {
        dst_fall_back: true,
        ..ChaosConfig::default()
    };
    assert!(chaos.enabled());
    let data = run(&chaotic(13, chaos));
    let outcome = data.chaos.as_ref().expect("chaos ran");
    assert!(outcome.stats.dst_stepped > 0, "30-day tiny spans Nov 7");
    // parse_records re-sorts by text time, so the contract holds even
    // though wall clocks stepped backwards.
    for w in data.syslog.windows(2) {
        assert!(w[0].event.at <= w[1].event.at);
    }
    let a = Analysis::try_run(&data, AnalysisConfig::default()).expect("sorted");
    let _ = a.table4();
}

/// Arbitrary chaos knobs — including degenerate ones — must never make
/// configuration handling panic: zero-length ranges, full fractions,
/// over-unity probabilities clamped by sampling, and JSON round-trips.
#[test]
fn hostile_configurations_do_not_panic() {
    let spiky = ChaosConfig {
        seed: 9,
        truncate_prob: 1.0,
        corrupt_prob: 1.0,
        corrupt_chars_max: 1,
        garbage_rate: 0.5,
        duplicate_prob: 1.0,
        duplicate_burst_max: 1,
        reorder_prob: 1.0,
        reorder_max: faultline_topology::time::Duration::from_secs(1),
        skewed_router_fraction: 1.0,
        clock_skew_max: faultline_topology::time::Duration::from_secs(1),
        drift_max_per_day: faultline_topology::time::Duration::ZERO,
        dst_fall_back: true,
        collector_restarts: 1,
        restart_duration_range: (
            faultline_topology::time::Duration::ZERO,
            faultline_topology::time::Duration::ZERO,
        ),
        listener_outages: 1,
        listener_outage_range: (
            faultline_topology::time::Duration::ZERO,
            faultline_topology::time::Duration::ZERO,
        ),
        storm_bursts: 3,
        storm_burst_lines: 1,
        storm_span: faultline_topology::time::Duration::ZERO,
    };
    let json = serde_json::to_string(&spiky).unwrap();
    let back: ChaosConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(spiky, back);
    let data = run(&chaotic(17, spiky));
    let outcome = data.chaos.as_ref().expect("chaos ran");
    assert!(outcome.stats.is_balanced(), "{:?}", outcome.stats);
    let a = Analysis::run(&data, AnalysisConfig::default());
    let _ = a.table4();
}

/// The `burst_overload` preset — syslog message storms on top of the
/// moderate mangling knobs — must flow through the whole pipeline
/// without panicking, with the storm lines accounted for exactly, and
/// the admission layer must finish a 2× sustained replay of the stormy
/// stream with the overload ledger conserved to the event.
#[test]
fn burst_overload_degrades_gracefully_with_exact_accounting() {
    for seed in [3u64, 23] {
        let data = run(&chaotic(seed, ChaosConfig::burst_overload(seed * 13)));
        let outcome = data.chaos.as_ref().expect("chaos ran");
        assert!(
            outcome.stats.storm_injected > 0 && outcome.stats.storm_bursts_injected > 0,
            "storms must actually fire: {:?}",
            outcome.stats
        );
        assert!(outcome.stats.is_balanced(), "{:?}", outcome.stats);
        assert_eq!(
            outcome.stats.lines_out, data.raw_syslog_lines as u64,
            "archive length must match chaos accounting, storms included"
        );
        assert!(outcome.parse.is_balanced(), "{:?}", outcome.parse);

        // The full analysis surface survives the storm.
        let config = AnalysisConfig {
            quarantine_horizon: Some(quarantine_horizon(&data)),
            ..AnalysisConfig::default()
        };
        let batch = Analysis::try_run(&data, config.clone()).expect("stormy data is valid");
        let _ = batch.table4();
        let _ = batch.figure1();

        // And so does the admission layer under 2× sustained overload:
        // clean finish, exact conservation, ledger on the report.
        let events = scenario_event_stream(&data);
        let (result, counters) = run_overloaded(
            &data,
            config,
            &AdmissionConfig::shedding(64, seed),
            SimSchedule::new(16, 8),
            &events,
        )
        .expect("stormy overload run finishes");
        assert!(counters.conserved(), "seed {seed}: {counters:?}");
        assert_eq!(counters.offered, events.len() as u64);
        assert!(counters.shed > 0, "a storm at 2x must shed");
        assert!(counters.queue_high_water <= 64);
        assert_eq!(
            result.report.overload,
            Some(counters),
            "the merged report must carry the ledger"
        );
    }
}

/// The quarantine-horizon boundary is inclusive on both paths: an event
/// stamped *exactly* at `quarantine_horizon` is admitted by batch and
/// stream alike, the first strictly-later event is diverted by both, and
/// the two engines stay byte-equivalent with identical quarantine
/// accounting when the horizon sits right on an event timestamp.
#[test]
fn event_exactly_at_quarantine_horizon_is_classified_identically() {
    let data = run(&ScenarioParams::tiny(11));
    let events = scenario_event_stream(&data);
    // Put the horizon exactly on a mid-stream event's timestamp, chosen
    // so at least one event is stamped strictly later.
    let horizon = events[events.len() / 2].at();
    assert!(
        events.last().unwrap().at() > horizon,
        "seed must leave events past the horizon"
    );
    let config = AnalysisConfig {
        quarantine_horizon: Some(horizon),
        ..AnalysisConfig::default()
    };

    let batch = Analysis::try_run(&data, config.clone()).expect("valid");
    let mut stream = StreamAnalysis::try_new(&data, config).expect("valid");
    let mut quarantined_in_stream = 0u64;
    for e in &events {
        let summary = stream.ingest_batch(std::slice::from_ref(e));
        let expect_admitted = e.at() <= horizon;
        assert_eq!(
            summary.accepted == 1,
            expect_admitted,
            "boundary must be inclusive at {:?} (horizon {horizon:?})",
            e.at()
        );
        quarantined_in_stream += summary.quarantined;
    }
    assert!(quarantined_in_stream > 0, "events past the horizon exist");
    let result = stream.flush();
    assert_eq!(
        serde_json::to_string(&batch.output).unwrap(),
        serde_json::to_string(&result.output).unwrap(),
        "batch and stream must classify the boundary identically"
    );
    assert_eq!(result.report.robustness, batch.report.robustness);
    assert_eq!(
        batch.report.robustness.total_quarantined(),
        quarantined_in_stream,
        "per-event outcomes must sum to the batch's quarantine accounting"
    );
}
