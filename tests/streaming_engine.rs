//! Streaming-driver behavior tests: watermark discipline, admission
//! accounting, checkpoint/restore, and the chunking-invisibility corner
//! cases — exercised through the public API. The exhaustive
//! batch-vs-stream differential grid lives in
//! `tests/stream_equivalence.rs`; these tests pin the driver shell's own
//! contracts (offered-event counters, late handling, ingest summaries).

use faultline_core::{
    scenario_event_stream, AmbiguityStrategy, Analysis, AnalysisConfig, AnalysisError,
    IngestOutcome, IngestSummary, StreamAnalysis, StreamCheckpoint,
};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_topology::time::Duration;

fn batch_json(data: &faultline_sim::ScenarioData, config: &AnalysisConfig) -> String {
    let analysis = Analysis::run(data, config.clone());
    serde_json::to_string(&analysis.output).unwrap()
}

fn outputs_for(seed: u64, chunk: usize) -> (String, String) {
    let data = run(&ScenarioParams::tiny(seed));
    let config = AnalysisConfig::default();
    let batch = batch_json(&data, &config);

    let events = scenario_event_stream(&data);
    let mut stream = StreamAnalysis::new(&data, config);
    if chunk == 0 {
        for e in &events {
            stream.ingest(e);
        }
    } else {
        for c in events.chunks(chunk) {
            stream.ingest_batch(c);
        }
    }
    let result = stream.flush();
    let stream_json = serde_json::to_string(&result.output).unwrap();
    (batch, stream_json)
}

#[test]
fn event_stream_is_time_sorted_and_complete() {
    let data = run(&ScenarioParams::tiny(5));
    let events = scenario_event_stream(&data);
    assert_eq!(events.len(), data.syslog.len() + data.transitions.len());
    for w in events.windows(2) {
        assert!(w[0].at() <= w[1].at());
    }
}

#[test]
fn one_at_a_time_equals_batch() {
    let (batch, stream) = outputs_for(3, 0);
    assert_eq!(batch, stream);
}

#[test]
fn micro_batches_equal_batch() {
    let (batch, stream) = outputs_for(3, 64);
    assert_eq!(batch, stream);
}

#[test]
fn single_all_encompassing_batch_equals_batch() {
    let (batch, stream) = outputs_for(4, usize::MAX);
    assert_eq!(batch, stream);
}

#[test]
fn watermark_tracks_event_time_and_state_drains() {
    let data = run(&ScenarioParams::tiny(6));
    let events = scenario_event_stream(&data);
    let mut stream = StreamAnalysis::new(&data, AnalysisConfig::default());
    assert!(stream.watermark().is_none());
    for c in events.chunks(128) {
        stream.ingest_batch(c);
    }
    assert_eq!(stream.watermark(), Some(events.last().unwrap().at()));
    let hwm_events = stream.events_ingested();
    assert_eq!(hwm_events, events.len() as u64);
    let result = stream.flush();
    let s = result.report.streaming.expect("streaming counters");
    assert_eq!(s.events_ingested, events.len() as u64);
    assert!(s.segments_closed > 0, "quiet gaps must drain segments");
    assert!(s.open_state_high_water > 0);
    assert_eq!(s.late_events, 0, "scenario stream is in order");
}

#[test]
fn quarantine_horizon_matches_batch_and_is_accounted() {
    let data = run(&ScenarioParams::tiny(11));
    let events = scenario_event_stream(&data);
    // A horizon in the middle of the observation period quarantines a
    // real, nonzero share of both sources.
    let mid = events[events.len() / 2].at();
    let config = AnalysisConfig {
        quarantine_horizon: Some(mid),
        ..AnalysisConfig::default()
    };
    let batch = Analysis::run(&data, config.clone());
    assert!(batch.report.robustness.total_quarantined() > 0);
    let batch_json = serde_json::to_string(&batch.output).unwrap();

    let mut stream = StreamAnalysis::try_new(&data, config).expect("valid inputs");
    for c in events.chunks(57) {
        stream.ingest_batch(c);
    }
    let result = stream.flush();
    let stream_json = serde_json::to_string(&result.output).unwrap();
    assert_eq!(batch_json, stream_json);
    assert_eq!(result.report.robustness, batch.report.robustness);
    // Quarantined events are still offered events: the headline
    // ingest counter covers the whole archive on both sides.
    assert_eq!(
        result.output.counters.syslog_ingested,
        data.syslog.len() as u64
    );
}

#[test]
fn try_new_rejects_bad_config_and_unsorted_input() {
    let mut data = run(&ScenarioParams::tiny(12));
    let zero_window = AnalysisConfig {
        match_window: Duration::ZERO,
        ..AnalysisConfig::default()
    };
    assert!(matches!(
        StreamAnalysis::try_new(&data, zero_window).err(),
        Some(AnalysisError::InvalidConfig { .. })
    ));
    assert!(StreamAnalysis::try_new(&data, AnalysisConfig::default()).is_ok());
    data.syslog.reverse();
    assert_eq!(
        StreamAnalysis::try_new(&data, AnalysisConfig::default()).err(),
        Some(AnalysisError::UnsortedInput { dataset: "syslog" })
    );
}

#[test]
fn late_events_are_counted_and_dropped_never_regressing_the_watermark() {
    let data = run(&ScenarioParams::tiny(7));
    let events = scenario_event_stream(&data);
    let mut stream = StreamAnalysis::new(&data, AnalysisConfig::default());
    // Feed an in-order prefix, then re-offer an earlier event.
    let cut = events.len() / 2;
    for e in &events[..cut] {
        assert_eq!(stream.ingest(e), IngestOutcome::Accepted);
    }
    let w = stream.watermark().expect("prefix advanced the watermark");
    let late = events
        .iter()
        .find(|e| e.at() < w)
        .expect("prefix spans more than one timestamp");
    assert_eq!(stream.ingest(late), IngestOutcome::Late);
    assert_eq!(stream.watermark(), Some(w), "watermark must not regress");
    let offered = stream.events_ingested();
    assert_eq!(offered, cut as u64 + 1, "late events are still offered");
    // The batch path counts it identically.
    let summary = stream.ingest_batch(std::slice::from_ref(late));
    assert_eq!(summary.late, 1);
    assert_eq!(stream.watermark(), Some(w));
    let result = stream.flush();
    let s = result.report.streaming.expect("streaming counters");
    assert_eq!(s.late_events, 2);
}

#[test]
fn ingest_batch_summary_accounts_every_event() {
    let data = run(&ScenarioParams::tiny(11));
    let events = scenario_event_stream(&data);
    let mid = events[events.len() / 2].at();
    let config = AnalysisConfig {
        quarantine_horizon: Some(mid),
        ..AnalysisConfig::default()
    };
    let mut stream = StreamAnalysis::new(&data, config);
    let mut total = IngestSummary::default();
    for c in events.chunks(43) {
        let s = stream.ingest_batch(c);
        total.accepted += s.accepted;
        total.quarantined += s.quarantined;
        total.late += s.late;
    }
    assert_eq!(
        total.accepted + total.quarantined + total.late,
        events.len() as u64
    );
    assert!(total.quarantined > 0, "mid-stream horizon quarantines");
    assert_eq!(total.late, 0, "scenario stream is in order");
    assert_eq!(stream.events_ingested(), events.len() as u64);
}

#[test]
fn checkpoint_restore_at_any_cut_equals_uninterrupted() {
    let data = run(&ScenarioParams::tiny(3));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);

    let mut uninterrupted = StreamAnalysis::new(&data, config.clone());
    for e in &events {
        uninterrupted.ingest(e);
    }
    let reference = serde_json::to_string(&uninterrupted.flush().output).unwrap();

    for cut in [1usize, events.len() / 3, events.len() / 2, events.len() - 1] {
        let mut first = StreamAnalysis::new(&data, config.clone());
        for e in &events[..cut] {
            first.ingest(e);
        }
        let ckpt = first.checkpoint();
        assert_eq!(ckpt.seq(), cut as u64);
        drop(first); // the "crash"

        // Round-trip through JSON: what recovery actually reloads.
        let bytes = serde_json::to_string(&ckpt).unwrap();
        let reloaded: StreamCheckpoint = serde_json::from_str(&bytes).unwrap();
        let mut second = StreamAnalysis::restore(&data, reloaded).expect("valid checkpoint");
        assert_eq!(second.events_ingested(), cut as u64);
        for e in &events[cut..] {
            second.ingest(e);
        }
        let resumed = serde_json::to_string(&second.flush().output).unwrap();
        assert_eq!(reference, resumed, "cut at {cut}");
    }
}

#[test]
fn checkpoint_bytes_are_deterministic() {
    let data = run(&ScenarioParams::tiny(8));
    let events = scenario_event_stream(&data);
    let mut stream = StreamAnalysis::new(&data, AnalysisConfig::default());
    for e in &events[..events.len() / 2] {
        stream.ingest(e);
    }
    let a = serde_json::to_string(&stream.checkpoint()).unwrap();
    let b = serde_json::to_string(&stream.checkpoint()).unwrap();
    assert_eq!(a, b, "same state must serialize to the same bytes");
}

#[test]
fn all_strategies_stay_equivalent() {
    let data = run(&ScenarioParams::tiny(9));
    for strategy in [
        AmbiguityStrategy::PreviousState,
        AmbiguityStrategy::AssumeDown,
        AmbiguityStrategy::AssumeUp,
    ] {
        let config = AnalysisConfig {
            strategy,
            ..AnalysisConfig::default()
        };
        let expected = batch_json(&data, &config);
        let mut stream = StreamAnalysis::new(&data, config);
        for c in scenario_event_stream(&data).chunks(33) {
            stream.ingest_batch(c);
        }
        let stream_json = serde_json::to_string(&stream.flush().output).unwrap();
        assert_eq!(expected, stream_json, "{strategy:?}");
    }
}
