//! Overload-robustness contract: the admission controller in front of
//! the streaming kernel must (a) keep memory bounded under sustained
//! overload, (b) account for every offered event exactly
//! (`offered = admitted + shed + quarantined`), (c) shed deterministically
//! and priority-aware — IS-IS and DOWN/UP events outlive chatter — and
//! (d) produce the *same* degraded answer regardless of thread count or
//! shard count, because shedding runs upstream of classification,
//! threading, and partitioning.
//!
//! The deterministic grid pins the 2× sustained-overload acceptance
//! contract; property tests then randomize seed × queue capacity ×
//! overload factor across threads {1,4} and shards {1,4} and require
//! byte-identical output plus an identical overload ledger.

use faultline_core::admission::{
    run_overloaded, run_overloaded_cluster, shed_survivors, AdmissionConfig, EventClass,
    SimSchedule,
};
use faultline_core::cluster::ClusterConfig;
use faultline_core::{
    scenario_event_stream, AnalysisConfig, ParallelismConfig, StreamAnalysis, StreamEvent,
};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::ScenarioData;
use proptest::prelude::*;

const QUEUE: usize = 64;
const SERVICE_PER_TICK: usize = 8;

fn workload(seed: u64) -> (ScenarioData, Vec<StreamEvent>) {
    let data = run(&ScenarioParams::tiny(seed));
    let events = scenario_event_stream(&data);
    (data, events)
}

fn clean_flush(data: &ScenarioData, events: &[StreamEvent]) -> faultline_core::StreamResult {
    let mut engine = StreamAnalysis::new(data, AnalysisConfig::default());
    for chunk in events.chunks(1_024) {
        engine.ingest_batch(chunk);
    }
    engine.flush()
}

/// Relative drift of a degraded headline against the unshedded one.
fn rel(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (a - b).abs() / b
    }
}

/// The acceptance contract: 2× sustained overload in shed mode finishes
/// cleanly with bounded queue occupancy, an exactly conserved ledger,
/// and a populated [`OverloadCounters`] section on the report.
#[test]
fn two_x_sustained_overload_is_bounded_and_conserved() {
    let (data, events) = workload(42);
    let schedule = SimSchedule::new(2 * SERVICE_PER_TICK, SERVICE_PER_TICK);
    let admission = AdmissionConfig::shedding(QUEUE, 7);
    let (result, counters) = run_overloaded(
        &data,
        AnalysisConfig::default(),
        &admission,
        schedule,
        &events,
    )
    .expect("overloaded run finishes");

    assert_eq!(counters.offered, events.len() as u64, "every event offered");
    assert!(counters.conserved(), "exact conservation: {counters:?}");
    assert_eq!(
        counters.offered,
        counters.admitted + counters.shed + counters.quarantined,
        "the identity itself, spelled out"
    );
    assert!(
        counters.queue_high_water <= QUEUE as u64,
        "queue must never exceed its capacity: hwm {}",
        counters.queue_high_water
    );
    assert!(counters.shed > 0, "2x overload must actually shed");
    assert_eq!(
        counters.shed,
        counters.shed_critical + counters.shed_important + counters.shed_chatter,
        "per-class shed counts partition the total"
    );
    let report_counters = result.report.overload.expect("report carries the ledger");
    assert_eq!(report_counters, counters, "report and return value agree");

    // Engine-side satellites populated from the same run.
    let streaming = result.report.streaming.expect("streaming section");
    assert!(
        streaming.arena_events_high_water > 0,
        "arena high water tracked"
    );

    // The report renders the overload line.
    let rendered = result.report.to_string();
    assert!(
        rendered.contains("overload:") && rendered.contains("conserved"),
        "human-readable ledger:\n{rendered}"
    );
}

/// Priority-aware shedding: chatter is evicted before DOWN/UP, and
/// IS-IS (Critical) events are never shed while lower classes remain —
/// on this workload that means zero critical losses even at 2×, so the
/// degraded IS-IS answer is *identical* to the unshedded one.
#[test]
fn shedding_preserves_critical_events_and_isis_answer() {
    let (data, events) = workload(42);
    let schedule = SimSchedule::new(2 * SERVICE_PER_TICK, SERVICE_PER_TICK);
    let admission = AdmissionConfig::shedding(QUEUE, 7);
    let (result, counters) = run_overloaded(
        &data,
        AnalysisConfig::default(),
        &admission,
        schedule,
        &events,
    )
    .expect("overloaded run finishes");

    assert_eq!(
        counters.shed_critical, 0,
        "IS-IS events must outlive chatter: {counters:?}"
    );
    // Priority is about *rates*, not absolute counts (the class mix is
    // whatever the scenario produced): the fraction of each class shed
    // must fall as priority rises.
    let mut offered_by_class = [0u64; 3];
    for event in &events {
        offered_by_class[EventClass::of(event) as usize] += 1;
    }
    let frac = |shed: u64, class: EventClass| {
        let offered = offered_by_class[class as usize];
        if offered == 0 {
            0.0
        } else {
            shed as f64 / offered as f64
        }
    };
    let f_critical = frac(counters.shed_critical, EventClass::Critical);
    let f_important = frac(counters.shed_important, EventClass::Important);
    let f_chatter = frac(counters.shed_chatter, EventClass::Chatter);
    assert!(
        f_chatter >= f_important && f_important >= f_critical,
        "shed fractions must rank chatter >= important >= critical: \
         {f_chatter:.3} / {f_important:.3} / {f_critical:.3} ({counters:?})"
    );

    let clean = clean_flush(&data, &events);
    assert_eq!(
        serde_json::to_string(&result.output.isis_failures).unwrap(),
        serde_json::to_string(&clean.output.isis_failures).unwrap(),
        "with zero critical shed, the IS-IS failure record is unchanged"
    );

    // Degraded-mode drift vs the unshedded answer, measured and banded
    // (the syslog side *does* degrade — chatter carries its evidence).
    let drift_syslog = rel(
        result.output.syslog_failures.len() as f64,
        clean.output.syslog_failures.len() as f64,
    );
    assert!(
        drift_syslog <= 0.95,
        "syslog drift under 2x shed out of band: {drift_syslog:.3}"
    );
}

/// Backpressure mode: nothing is ever shed — the offered stream blocks
/// until the engine catches up, the ledger still balances, and the
/// answer is byte-identical to the unshedded run.
#[test]
fn block_policy_serves_everything_byte_identically() {
    let (data, events) = workload(42);
    let schedule = SimSchedule::new(2 * SERVICE_PER_TICK, SERVICE_PER_TICK);
    let admission = AdmissionConfig {
        queue_capacity: QUEUE,
        ..AdmissionConfig::default()
    };
    let (result, counters) = run_overloaded(
        &data,
        AnalysisConfig::default(),
        &admission,
        schedule,
        &events,
    )
    .expect("blocking run finishes");

    assert_eq!(counters.shed, 0, "backpressure never drops");
    assert!(counters.conserved());
    assert!(
        counters.backpressure_waits > 0,
        "2x overload must actually block"
    );
    assert!(counters.queue_high_water <= QUEUE as u64);

    let clean = clean_flush(&data, &events);
    assert_eq!(
        serde_json::to_string(&result.output).unwrap(),
        serde_json::to_string(&clean.output).unwrap(),
        "blocking admission is invisible in the answer"
    );
}

/// The shed decision depends only on (stream, config, schedule) — not
/// on wall time — so replaying the same overload twice is byte-identical
/// end to end, and a different seed may shed a different (but equally
/// well-formed) set.
#[test]
fn shed_replay_is_deterministic() {
    let (data, events) = workload(17);
    let schedule = SimSchedule::new(3 * SERVICE_PER_TICK, SERVICE_PER_TICK);
    let admission = AdmissionConfig::shedding(QUEUE, 99);
    let (a, ca) = run_overloaded(
        &data,
        AnalysisConfig::default(),
        &admission,
        schedule,
        &events,
    )
    .unwrap();
    let (b, cb) = run_overloaded(
        &data,
        AnalysisConfig::default(),
        &admission,
        schedule,
        &events,
    )
    .unwrap();
    assert_eq!(ca, cb, "ledger replays identically");
    assert_eq!(
        serde_json::to_string(&a.output).unwrap(),
        serde_json::to_string(&b.output).unwrap(),
        "degraded output replays byte-identically"
    );
}

/// Survivors are a plain subsequence of the offered stream, so feeding
/// them to the single-stream engine equals [`run_overloaded`]'s own
/// answer — the shed decision and the analysis are fully decoupled.
#[test]
fn survivors_replayed_standalone_equal_the_overloaded_run() {
    let (data, events) = workload(42);
    let schedule = SimSchedule::new(2 * SERVICE_PER_TICK, SERVICE_PER_TICK);
    let admission = AdmissionConfig::shedding(QUEUE, 7);
    let (survivors, shed_counters) = shed_survivors(&events, &admission, schedule);
    assert_eq!(
        shed_counters.offered - shed_counters.shed,
        survivors.len() as u64,
        "survivor count matches the ledger"
    );
    let standalone = clean_flush(&data, &survivors);
    let (overloaded, _) = run_overloaded(
        &data,
        AnalysisConfig::default(),
        &admission,
        schedule,
        &events,
    )
    .unwrap();
    assert_eq!(
        serde_json::to_string(&standalone.output).unwrap(),
        serde_json::to_string(&overloaded.output).unwrap(),
        "shedding is upstream of analysis"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shed-mode replay is invariant across threads {1,4} and shards
    /// {1,4}: same seed + same stream ⇒ byte-identical output and an
    /// identical [`OverloadCounters`] ledger, for random scenario seeds,
    /// admission seeds, queue capacities, and overload factors.
    #[test]
    fn shed_replay_is_thread_and_shard_invariant(
        scenario_seed in 0u64..10_000,
        admission_seed in 0u64..1_000,
        capacity in 16usize..256,
        overload_num in 2usize..5,
    ) {
        let (data, events) = workload(scenario_seed);
        let schedule = SimSchedule::new(overload_num * SERVICE_PER_TICK, SERVICE_PER_TICK);
        let admission = AdmissionConfig::shedding(capacity, admission_seed);

        let mut reference: Option<(String, faultline_core::OverloadCounters)> = None;
        for threads in [1usize, 4] {
            let config = AnalysisConfig {
                parallelism: ParallelismConfig { threads, ..ParallelismConfig::default() },
                ..AnalysisConfig::default()
            };
            let (result, counters) =
                run_overloaded(&data, config, &admission, schedule, &events).unwrap();
            prop_assert!(counters.conserved(), "threads {}: {:?}", threads, counters);
            prop_assert!(counters.queue_high_water <= capacity as u64);
            let bytes = serde_json::to_string(&result.output).unwrap();
            match &reference {
                None => reference = Some((bytes, counters)),
                Some((expected, expected_counters)) => {
                    prop_assert_eq!(expected, &bytes, "threads {} diverged", threads);
                    prop_assert_eq!(expected_counters, &counters, "threads {} ledger", threads);
                }
            }
        }
        let (expected, expected_counters) = reference.expect("reference run recorded");
        for shards in [1u32, 4] {
            let (result, counters) = run_overloaded_cluster(
                &data,
                &events,
                &ClusterConfig::new(shards),
                &admission,
                schedule,
            )
            .unwrap();
            prop_assert!(counters.conserved(), "shards {}: {:?}", shards, counters);
            let bytes = serde_json::to_string(&result.output).unwrap();
            prop_assert_eq!(&expected, &bytes, "shards {} diverged", shards);
            prop_assert_eq!(&expected_counters, &counters, "shards {} ledger", shards);
            prop_assert_eq!(
                result.report.overload.expect("merged report carries the ledger"),
                counters
            );
        }
    }
}
