//! Failure-injection tests: the pipeline must survive hostile or
//! degenerate inputs without panicking and produce bounded results.

use faultline_core::{Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::workload::WorkloadParams;
use faultline_topology::generator::CenicParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomly drop a third of the syslog archive *after* collection (log
/// rotation losing files): reconstruction must survive the mangled
/// stream and downtime can only move within sane bounds.
#[test]
fn survives_post_hoc_syslog_truncation() {
    let mut data = run(&ScenarioParams::tiny(601));
    let baseline = {
        let a = Analysis::new(&data, AnalysisConfig::default());
        a.output.syslog_failures.len()
    };
    let mut rng = StdRng::seed_from_u64(99);
    data.syslog.retain(|_| rng.random::<f64>() > 0.33);
    let a = Analysis::new(&data, AnalysisConfig::default());
    // No panic, and the reconstruction shrinks rather than explodes.
    assert!(a.output.syslog_failures.len() <= baseline + 10);
    // Every surviving failure is still well-formed.
    for f in &a.output.syslog_failures {
        assert!(f.end > f.start);
    }
}

/// Shuffle the listener's transition log (a badly merged archive): the
/// pipeline sorts internally where it matters and must not panic.
#[test]
fn survives_reordered_listener_log() {
    let mut data = run(&ScenarioParams::tiny(602));
    data.transitions.reverse();
    let a = Analysis::new(&data, AnalysisConfig::default());
    // Reversed raw transitions make the per-source diffs nonsensical, but
    // the merge counts every inconsistency instead of panicking.
    let _ = a.table4();
    let _ = a.table3();
    assert!(a.output.is_stats.raw > 0);
}

/// A scenario with a failure-free workload: everything is zero, nothing
/// divides by it.
#[test]
fn zero_failure_workload() {
    let mut params = ScenarioParams::tiny(603);
    let mut quiet = WorkloadParams::default();
    for p in [&mut quiet.core, &mut quiet.cpe] {
        p.standalone_rate_median = 1e-9;
        p.flap_episode_rate_median = 1e-9;
        p.maintenance_rate = 0.0;
        p.blip_rate = 0.0;
        p.pseudo_background_rate = 0.0;
        p.reset_after_failure_prob = 0.0;
        p.abort_per_flap_failure_prob = 0.0;
    }
    quiet.period_days = 30.0;
    quiet.seed = 603;
    params.workload = quiet;
    let data = run(&params);
    assert!(
        data.truth.failures.len() < 5,
        "{}",
        data.truth.failures.len()
    );
    let a = Analysis::new(&data, AnalysisConfig::default());
    let t4 = a.table4();
    assert!(t4.isis_downtime_hours >= 0.0);
    let t7 = a.table7();
    assert!(t7.isis_events <= data.truth.failures.len() as u64);
    // Statistics handle empty/singleton samples.
    let _ = a.table5();
}

/// A listener outage covering almost the whole period: nearly everything
/// is sanitized away, nothing panics.
#[test]
fn listener_offline_for_most_of_the_period() {
    let mut params = ScenarioParams::tiny(604);
    params.outages.count = 1;
    params.outages.duration_range = (
        faultline_topology::time::Duration::from_days(28),
        faultline_topology::time::Duration::from_days(29),
    );
    let data = run(&params);
    let a = Analysis::new(&data, AnalysisConfig::default());
    let t4 = a.table4();
    // Sanitization removed failures overlapping the giant outage.
    assert!(
        (a.output.isis_sanitize.removed_offline + a.output.syslog_sanitize.removed_offline) > 0
            || data.truth.failures.is_empty()
    );
    assert!(t4.overlap_failures <= t4.isis_failures.min(t4.syslog_failures));
}

/// A degenerate three-router topology still flows end to end.
#[test]
fn minimal_topology() {
    let mut params = ScenarioParams::tiny(605);
    params.topology = CenicParams {
        core_routers: 3,
        cpe_routers: 2,
        core_links: 3,
        cpe_links: 2,
        multi_link_pairs: 0,
        customers: 2,
        short_lifetime_fraction: 0.0,
        period_days: 30.0,
        seed: 605,
    };
    let data = run(&params);
    let a = Analysis::new(&data, AnalysisConfig::default());
    assert_eq!(a.table.len(), 5);
    let _ = a.table4();
    let _ = a.table7();
}
