//! Paper-shape regression tests: run the canonical full-scale scenario
//! (the one every experiment binary uses) and pin the qualitative
//! findings of every table. These are the reproduction's contract —
//! if a refactor breaks a paper-level conclusion, a test here fails.
//!
//! Absolute numbers are asserted as *bands* around the paper's values;
//! see EXPERIMENTS.md for the exact paper-vs-measured comparison.

use faultline_core::{Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioData, ScenarioParams};
use faultline_topology::link::LinkClass;
use std::sync::OnceLock;

/// The full 389-day scenario takes ~0.5 s; share it across tests.
fn data() -> &'static ScenarioData {
    static DATA: OnceLock<ScenarioData> = OnceLock::new();
    DATA.get_or_init(|| run(&ScenarioParams::default()))
}

fn analysis() -> Analysis<'static> {
    Analysis::new(data(), AnalysisConfig::default())
}

#[test]
fn table1_scale_matches_paper() {
    let a = analysis();
    let t1 = a.table1();
    assert_eq!(t1.core_routers, 60);
    assert_eq!(t1.cpe_routers, 175);
    assert_eq!(t1.core_links, 84);
    assert_eq!(t1.cpe_links, 215);
    assert_eq!(t1.multi_link_pairs, 26);
    // Paper: 47,371 ADJCHANGE messages over the period.
    assert!(
        (25_000..90_000).contains(&t1.syslog_adjacency_messages),
        "{}",
        t1.syslog_adjacency_messages
    );
}

#[test]
fn table2_is_reachability_beats_ip_for_adjacency_messages() {
    let a = analysis();
    let t2 = a.table2();
    // Paper: 82%/25% (down), 85%/23% (up) — IS reach matches ADJCHANGE
    // messages ~3x better than IP reach.
    assert!(t2.isis_down.0 > 70.0, "IS down match {}", t2.isis_down.0);
    assert!(t2.isis_up.0 > 70.0);
    assert!(t2.isis_down.1 < 45.0, "IP down match {}", t2.isis_down.1);
    assert!(t2.isis_down.0 > 2.0 * t2.isis_down.1);
    // Paper: physical-media messages match IP reach better than IS reach
    // (52%/31% down).
    assert!(
        t2.phys_down.1 > t2.phys_down.0,
        "physical media must track IP reachability: {t2:?}"
    );
}

#[test]
fn table3_unmatched_transitions_concentrate_in_flapping() {
    let a = analysis();
    let t3 = a.table3();
    let down_total = t3.down.total() as f64;
    let up_total = t3.up.total() as f64;
    // Paper: DOWN None 18%, UP None 15%.
    let down_none = t3.down.none as f64 / down_total;
    let up_none = t3.up.none as f64 / up_total;
    assert!((0.08..0.30).contains(&down_none), "down none {down_none}");
    assert!((0.08..0.30).contains(&up_none), "up none {up_none}");
    // Paper: the majority of unmatched transitions occur during flapping
    // (67% / 61%).
    assert!(t3.unmatched_down_in_flap_pct > 55.0);
    assert!(t3.unmatched_up_in_flap_pct > 55.0);
    // "One" is a large column (39%/48%) — not a both-or-nothing world.
    assert!(t3.down.one as f64 / down_total > 0.25);
    assert!(t3.up.one as f64 / up_total > 0.25);
}

#[test]
fn table4_syslog_counts_more_but_reports_less_downtime() {
    let a = analysis();
    let t4 = a.table4();
    // Paper: 11,213 vs 11,738 failures (+4.7%), 3,648 vs 2,714 hours
    // (-26%). Bands: counts within ±15% of each other with syslog >= 95%
    // of IS-IS; downtime clearly lower for syslog.
    let count_ratio = t4.syslog_failures as f64 / t4.isis_failures as f64;
    assert!(
        (0.95..1.20).contains(&count_ratio),
        "count ratio {count_ratio}"
    );
    let downtime_ratio = t4.syslog_downtime_hours / t4.isis_downtime_hours;
    assert!(
        (0.6..0.95).contains(&downtime_ratio),
        "downtime ratio {downtime_ratio}"
    );
    // Paper scale: ~10-12k failures, ~3-4k hours.
    assert!(
        (7_000..15_000).contains(&t4.isis_failures),
        "{}",
        t4.isis_failures
    );
    assert!((2_000.0..5_000.0).contains(&t4.isis_downtime_hours));
    // The ticket check removes a multi-thousand-hour block of spurious
    // downtime from a couple dozen long failures (paper: 25 / ~6,000 h).
    assert!((10..80).contains(&t4.syslog_long_removed));
    assert!(t4.syslog_long_removed_hours > 2_000.0);
}

#[test]
fn table5_medians_track_paper_orderings() {
    let a = analysis();
    let t5 = a.table5();
    // [0]=failures/link, [1]=duration, [2]=tbf, [3]=downtime; median field.
    // CPE links fail more often than Core links (12.3 vs 6.6 medians).
    assert!(t5.cpe_isis[0].median > t5.core_isis[0].median);
    // Core failures last longer than CPE failures (42 s vs 12 s medians).
    assert!(t5.core_isis[1].median > t5.cpe_isis[1].median);
    // Median time between failures is short (flapping dominated): under
    // an hour for both classes in both sources (paper: 0.2 h / 0.01-0.03 h).
    assert!(t5.core_isis[2].median < 1.0, "{}", t5.core_isis[2].median);
    assert!(t5.cpe_isis[2].median < 1.0);
    // Syslog under-reports annualized downtime in both classes.
    assert!(t5.core_syslog[3].median <= t5.core_isis[3].median);
    assert!(t5.cpe_syslog[3].median <= t5.cpe_isis[3].median);
    // Heavy tails: averages far exceed medians for durations.
    assert!(t5.cpe_isis[1].mean > 10.0 * t5.cpe_isis[1].median);
}

#[test]
fn ks_verdicts_match_paper() {
    let a = analysis();
    // Paper (§4.2): consistent for failures per link and link downtime,
    // NOT for failure duration. Check the CPE class (the paper's Figure 1
    // class) and Core.
    for class in [LinkClass::Core, LinkClass::Cpe] {
        let ks = a.ks_tests(class);
        assert!(
            ks.failures_per_link.consistent_at(0.05),
            "{class:?} failures/link p={}",
            ks.failures_per_link.p_value
        );
        assert!(
            ks.link_downtime.consistent_at(0.05),
            "{class:?} downtime p={}",
            ks.link_downtime.p_value
        );
        assert!(
            !ks.failure_duration.consistent_at(0.05),
            "{class:?} duration must be DISTINCT, p={}",
            ks.failure_duration.p_value
        );
    }
}

#[test]
fn table6_spurious_dominates_downs_lost_dominates_ups() {
    let a = analysis();
    let (t6, counts) = a.table6();
    // Paper: 461 double-downs, 202 double-ups; more downs than ups.
    assert!(counts.down_total() > counts.up_total());
    assert!(
        (150..900).contains(&counts.down_total()),
        "{}",
        counts.down_total()
    );
    assert!(
        (40..400).contains(&counts.up_total()),
        "{}",
        counts.up_total()
    );
    // Paper: spurious retransmission explains 52% of double-downs (vs 42%
    // lost); lost messages explain 86% of double-ups.
    assert!(
        counts.down[1] > counts.down[2],
        "spurious must beat unknown for downs: {counts:?}"
    );
    assert!(
        counts.up[0] > counts.up[1] + counts.up[2],
        "lost messages must dominate double-ups: {counts:?}"
    );
    assert_eq!(t6.total_ambiguous, counts.down_total() + counts.up_total());
}

#[test]
fn false_positive_taxonomy_matches_paper() {
    let a = analysis();
    let fp = a.false_positives();
    let total = fp.short_count + fp.long_count;
    // Paper: 2,440 FPs = 21% of syslog failures; 83% short.
    let share = total as f64 / a.output.syslog_failures.len() as f64;
    assert!((0.10..0.35).contains(&share), "FP share {share}");
    let short_share = fp.short_count as f64 / total as f64;
    assert!(short_share > 0.7, "short share {short_share}");
    // Paper: nearly all long FPs occur during flapping, and they carry
    // nearly all FP downtime.
    assert!(fp.long_in_flap as f64 >= 0.8 * fp.long_count as f64);
    assert!(fp.long_downtime_ms > 10 * fp.short_downtime_ms);
}

#[test]
fn table7_isolation_orderings() {
    let a = analysis();
    let t7 = a.table7();
    // Paper: IS-IS 1,401 events / 74 sites / 26.3 d; syslog 1,060 / 67 /
    // 22.3; intersection 1,002 / 66 / 19.8.
    assert!((700..2_200).contains(&t7.isis_events), "{}", t7.isis_events);
    assert!((50..=130).contains(&t7.isis_sites), "{}", t7.isis_sites);
    assert!((15.0..60.0).contains(&t7.isis_days), "{}", t7.isis_days);
    // Syslog reports less isolation downtime than IS-IS.
    assert!(t7.syslog_days < t7.isis_days);
    // Intersection below both.
    assert!(t7.intersection.intersection_days <= t7.syslog_days + 1e-9);
    assert!(t7.intersection.matched_events <= t7.isis_events.min(t7.syslog_events));
}

#[test]
fn flapping_share_of_failures_is_majority() {
    // Paper §4.1/§4.2: flapping dominates the failure count (median TBF
    // of minutes implies most consecutive failures are flap cycles).
    let d = data();
    let flap = d.truth.failures.iter().filter(|f| f.in_flap).count();
    assert!(
        flap * 2 > d.truth.failures.len(),
        "flap share {}/{}",
        flap,
        d.truth.failures.len()
    );
}
