//! Seed robustness: the paper-shape conclusions must hold across random
//! seeds, not just the canonical one. Bands here are wider than in
//! `paper_shape.rs` (which pins seed 42), but every *ordering* claim is
//! asserted for each seed.

use faultline_core::{Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_topology::link::LinkClass;

fn params_with_seed(seed: u64) -> ScenarioParams {
    let mut p = ScenarioParams {
        seed,
        ..ScenarioParams::default()
    };
    p.workload.seed = seed ^ 0x5EED;
    p.transport.seed = seed ^ 0x7777;
    p.topology.seed = seed;
    p
}

#[test]
fn orderings_hold_across_seeds() {
    for seed in [7u64, 1234, 0xDEADBEEF] {
        let data = run(&params_with_seed(seed));
        let a = Analysis::new(&data, AnalysisConfig::default());

        let t4 = a.table4();
        let count_ratio = t4.syslog_failures as f64 / t4.isis_failures as f64;
        assert!(
            (0.85..1.30).contains(&count_ratio),
            "seed {seed}: count ratio {count_ratio}"
        );
        assert!(
            t4.syslog_downtime_hours < t4.isis_downtime_hours,
            "seed {seed}: syslog must under-report downtime \
             ({:.0} vs {:.0})",
            t4.syslog_downtime_hours,
            t4.isis_downtime_hours
        );

        let t3 = a.table3();
        let none_share =
            (t3.down.none + t3.up.none) as f64 / (t3.down.total() + t3.up.total()) as f64;
        assert!(
            (0.05..0.35).contains(&none_share),
            "seed {seed}: none share {none_share}"
        );
        assert!(
            t3.unmatched_down_in_flap_pct > 50.0,
            "seed {seed}: unmatched must concentrate in flapping"
        );

        // KS verdicts are the paper's sharpest claim; they must be
        // seed-independent.
        for class in [LinkClass::Core, LinkClass::Cpe] {
            let ks = a.ks_tests(class);
            assert!(
                ks.failures_per_link.consistent_at(0.05),
                "seed {seed} {class:?}: failures/link p={}",
                ks.failures_per_link.p_value
            );
            assert!(
                !ks.failure_duration.consistent_at(0.05),
                "seed {seed} {class:?}: duration p={}",
                ks.failure_duration.p_value
            );
        }

        // Table 5 orderings.
        let t5 = a.table5();
        assert!(
            t5.cpe_isis[0].median > t5.core_isis[0].median,
            "seed {seed}: CPE links fail more often"
        );
        assert!(
            t5.core_isis[1].median > t5.cpe_isis[1].median,
            "seed {seed}: Core failures last longer"
        );

        // Isolation: intersection below both, syslog downtime below
        // IS-IS downtime.
        let t7 = a.table7();
        assert!(
            t7.syslog_days <= t7.isis_days * 1.05,
            "seed {seed}: isolation downtime ordering ({:.1} vs {:.1})",
            t7.syslog_days,
            t7.isis_days
        );
        assert!(t7.intersection.matched_events <= t7.isis_events.min(t7.syslog_events));
    }
}

#[test]
fn false_positive_taxonomy_holds_across_seeds() {
    for seed in [99u64, 31337] {
        let data = run(&params_with_seed(seed));
        let a = Analysis::new(&data, AnalysisConfig::default());
        let fp = a.false_positives();
        let total = (fp.short_count + fp.long_count).max(1);
        assert!(
            fp.short_count * 10 >= total * 7,
            "seed {seed}: short FPs must dominate ({}/{total})",
            fp.short_count
        );
        assert!(
            fp.long_in_flap * 10 >= fp.long_count * 7,
            "seed {seed}: long FPs concentrate in flapping ({}/{})",
            fp.long_in_flap,
            fp.long_count
        );
    }
}
