//! Differential crash-recovery harness for the durable streaming engine.
//!
//! The contract under test (see `faultline-core::recovery`): kill a
//! durable streaming run at *any* event boundary, recover from whatever
//! the checkpoint directory holds, feed the rest of the stream, and the
//! flushed `StreamOutput` is **byte-identical** (as JSON) to a run that
//! never stopped. Corruption — a flipped byte in the newest checkpoint, a
//! torn checkpoint write, a journal segment cut mid-record — degrades to
//! the previous valid snapshot (or a typed error when nothing is
//! recoverable), never a panic.
//!
//! Structure:
//! - an exhaustive kill-at-every-boundary sweep (k = 1) over a stream
//!   prefix, recovering after every single event;
//! - a seeds × chaos-presets × thread-counts × kill-points sweep over
//!   full streams, compared against the batch pipeline;
//! - the corruption ladder: corrupt newest → fall back; torn newest +
//!   stray temp file → fall back; torn journal tail → replay good
//!   prefix; mid-journal damage → typed `CorruptJournal`;
//! - chaos-injected transient checkpoint-write failures: retries absorb
//!   them, an exhausted budget surfaces `RetriesExhausted`.

use faultline_core::recovery::{DurabilityPolicy, DurableStream, RetryPolicy};
use faultline_core::{
    scenario_event_stream, Analysis, AnalysisConfig, ParallelismConfig, RecoveryError,
    StreamAnalysis, StreamEvent,
};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::{crash_points_seeded, ChainFault, ChaosConfig, DurabilityChaos};
use std::fs;
use std::path::{Path, PathBuf};

/// Self-cleaning scratch directory (no tempfile crate in this offline
/// workspace).
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("faultline-crash-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn chaotic(seed: u64, chaos: ChaosConfig) -> ScenarioParams {
    let mut params = ScenarioParams::tiny(seed);
    params.chaos = chaos;
    params
}

fn stream_json_over(
    data: &faultline_sim::ScenarioData,
    config: &AnalysisConfig,
    events: &[StreamEvent],
) -> String {
    let mut stream = StreamAnalysis::new(data, config.clone());
    for e in events {
        stream.ingest(e);
    }
    serde_json::to_string(&stream.flush().output).unwrap()
}

fn batch_json(data: &faultline_sim::ScenarioData, config: &AnalysisConfig) -> String {
    let batch = Analysis::run(data, config.clone());
    serde_json::to_string(&batch.output).unwrap()
}

/// Kill and recover at EVERY event boundary (k = 1): one chain of
/// `recover → ingest one event → drop` per event, so every boundary in
/// the prefix is a real crash point, then a final recover + flush. The
/// result must be byte-identical to an uninterrupted stream over the
/// same prefix.
#[test]
fn kill_at_every_event_boundary_recovers_byte_identical() {
    let data = run(&ScenarioParams::tiny(3));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    let n = events.len().min(240);
    let reference = stream_json_over(&data, &config, &events[..n]);

    let tmp = TempDir::new("every-boundary");
    let policy = DurabilityPolicy {
        checkpoint_interval: 7,
        segment_max_records: 16,
        retain_checkpoints: 2,
        ..DurabilityPolicy::default()
    };
    for (i, event) in events[..n].iter().enumerate() {
        let (mut durable, report) =
            DurableStream::recover(tmp.path(), &data, config.clone(), policy)
                .unwrap_or_else(|e| panic!("recover before event {i}: {e}"));
        assert_eq!(
            report.resumed_at_seq, i as u64,
            "recovery must land exactly at the crash boundary"
        );
        assert_eq!(report.checkpoints_rejected, 0);
        durable.ingest(event).unwrap();
        drop(durable); // the crash: no finish(), no final checkpoint
    }
    let (durable, report) = DurableStream::recover(tmp.path(), &data, config, policy).unwrap();
    assert_eq!(report.resumed_at_seq, n as u64);
    let result = durable.finish();
    assert_eq!(reference, serde_json::to_string(&result.output).unwrap());
    let d = result.report.durability.expect("durability counters");
    assert_eq!(d.restores, 1, "counters describe the final process");
}

/// Seeds × chaos presets × thread counts × seeded kill points, on full
/// streams, against the batch pipeline. The thread count of the
/// *resumed* process differs from the writer's on purpose: parallelism
/// must not leak into recovered state.
#[test]
fn crash_sweep_seeds_chaos_threads_matches_batch() {
    for seed in [3u64, 5] {
        for (name, chaos) in [
            ("none", ChaosConfig::default()),
            ("mild", ChaosConfig::mild(seed * 31)),
            ("severe", ChaosConfig::severe(seed * 31)),
        ] {
            let data = run(&chaotic(seed, chaos));
            for threads in [1usize, 0] {
                let config = AnalysisConfig {
                    parallelism: ParallelismConfig::with_threads(threads),
                    ..AnalysisConfig::default()
                };
                let reference = batch_json(&data, &config);
                let events = scenario_event_stream(&data);
                let policy = DurabilityPolicy {
                    checkpoint_interval: 97,
                    segment_max_records: 64,
                    ..DurabilityPolicy::default()
                };
                for kill_at in crash_points_seeded(seed, events.len() as u64, 3) {
                    let kill_at = kill_at as usize;
                    let tmp = TempDir::new(&format!("sweep-{seed}-{name}-{threads}-{kill_at}"));
                    {
                        let mut durable =
                            DurableStream::create(tmp.path(), &data, config.clone(), policy)
                                .unwrap();
                        for e in &events[..kill_at] {
                            durable.ingest(e).unwrap();
                        }
                    }
                    // Resume under the *other* parallelism.
                    let resume_config = AnalysisConfig {
                        parallelism: ParallelismConfig::with_threads(if threads == 1 {
                            0
                        } else {
                            1
                        }),
                        ..config.clone()
                    };
                    let (mut durable, report) =
                        DurableStream::recover(tmp.path(), &data, resume_config, policy).unwrap();
                    assert_eq!(
                        report.resumed_at_seq, kill_at as u64,
                        "seed {seed} chaos {name} threads {threads} kill {kill_at}"
                    );
                    for e in &events[kill_at..] {
                        durable.ingest(e).unwrap();
                    }
                    let recovered = serde_json::to_string(&durable.finish().output).unwrap();
                    assert_eq!(
                        reference, recovered,
                        "seed {seed} chaos {name} threads {threads} kill {kill_at}"
                    );
                }
            }
        }
    }
}

fn newest_checkpoint(dir: &Path) -> PathBuf {
    let mut ckpts: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    ckpts.sort();
    ckpts.pop().expect("at least one checkpoint on disk")
}

/// Run a durable stream to `kill_at`, crash, and hand back the state
/// directory for sabotage.
fn run_to_kill(
    tmp: &TempDir,
    data: &faultline_sim::ScenarioData,
    config: &AnalysisConfig,
    policy: DurabilityPolicy,
    events: &[StreamEvent],
    kill_at: usize,
) {
    let mut durable = DurableStream::create(tmp.path(), data, config.clone(), policy).unwrap();
    for e in &events[..kill_at] {
        durable.ingest(e).unwrap();
    }
}

/// Snapshot compaction: a successful recovery folds the replayed journal
/// prefix into a fresh checkpoint at the resume point, so a SECOND crash
/// at the same boundary recovers straight from the compacted dir —
/// checkpoint only, zero replay — and the finished output is still
/// byte-identical to batch.
#[test]
fn second_recovery_from_compacted_dir_is_byte_identical() {
    let data = run(&ScenarioParams::tiny(11));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    let reference = batch_json(&data, &config);
    let policy = DurabilityPolicy {
        checkpoint_interval: 60,
        segment_max_records: 32,
        ..DurabilityPolicy::default()
    };
    let kill_at = events.len() * 2 / 3;
    let tmp = TempDir::new("compaction");
    run_to_kill(&tmp, &data, &config, policy, &events, kill_at);

    // First recovery replays the journal tail and compacts it away.
    let (durable, first) =
        DurableStream::recover(tmp.path(), &data, config.clone(), policy).unwrap();
    assert!(first.events_replayed > 0, "kill point must leave a tail");
    assert!(first.compacted, "replayed prefix must be folded away");
    drop(durable); // crash again immediately, before any new event

    // Second recovery: the compaction checkpoint IS the resume point.
    let (mut durable, second) = DurableStream::recover(tmp.path(), &data, config, policy).unwrap();
    assert_eq!(second.checkpoint_seq, Some(kill_at as u64));
    assert_eq!(second.events_replayed, 0, "nothing left to re-replay");
    assert!(!second.compacted, "nothing replayed, nothing to compact");
    assert_eq!(second.resumed_at_seq, kill_at as u64);
    for e in &events[kill_at..] {
        durable.ingest(e).unwrap();
    }
    assert_eq!(
        reference,
        serde_json::to_string(&durable.finish().output).unwrap()
    );
}

#[test]
fn corrupted_newest_checkpoint_falls_back_to_previous() {
    let data = run(&ScenarioParams::tiny(5));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    let reference = stream_json_over(&data, &config, &events);
    let policy = DurabilityPolicy {
        checkpoint_interval: 50,
        segment_max_records: 32,
        retain_checkpoints: 3,
        // Full-only, synchronous snapshots: this test's contract is the
        // single-file fallback (corrupt ONE base, reject ONE ladder
        // entry). Chain behaviour has its own tests below.
        full_every_n_checkpoints: 0,
        offload_snapshots: false,
        ..DurabilityPolicy::default()
    };
    let kill_at = events.len().min(180);
    let tmp = TempDir::new("corrupt-newest");
    run_to_kill(&tmp, &data, &config, policy, &events, kill_at);

    // Flip one byte in the middle of the newest checkpoint's payload.
    let victim = newest_checkpoint(tmp.path());
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    fs::write(&victim, &bytes).unwrap();

    let (mut durable, report) = DurableStream::recover(tmp.path(), &data, config, policy).unwrap();
    assert_eq!(report.checkpoints_rejected, 1, "{:?}", report.rejected);
    assert!(
        report.rejected[0].contains("hash mismatch") || report.rejected[0].contains("unparseable"),
        "rejection names the cause: {}",
        report.rejected[0]
    );
    let fallback_seq = report.checkpoint_seq.expect("older checkpoint restored");
    assert!(fallback_seq < kill_at as u64);
    assert_eq!(
        report.resumed_at_seq, kill_at as u64,
        "journal replay covers the gap the corrupt checkpoint left"
    );
    for e in &events[kill_at..] {
        durable.ingest(e).unwrap();
    }
    assert_eq!(
        reference,
        serde_json::to_string(&durable.finish().output).unwrap()
    );
}

#[test]
fn torn_checkpoint_and_stray_tmp_fall_back_cleanly() {
    let data = run(&ScenarioParams::tiny(6));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    let reference = stream_json_over(&data, &config, &events);
    let policy = DurabilityPolicy {
        checkpoint_interval: 40,
        segment_max_records: 32,
        retain_checkpoints: 3,
        // Full-only, synchronous: see corrupted_newest_checkpoint above.
        full_every_n_checkpoints: 0,
        offload_snapshots: false,
        ..DurabilityPolicy::default()
    };
    let kill_at = events.len().min(150);
    let tmp = TempDir::new("torn-newest");
    run_to_kill(&tmp, &data, &config, policy, &events, kill_at);

    // Tear the newest checkpoint mid-payload and leave a half-written
    // temp file behind, as a crash inside the checkpoint writer would.
    let victim = newest_checkpoint(tmp.path());
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() * 2 / 3]).unwrap();
    fs::write(tmp.path().join("ckpt-999999999999.ckpt.tmp"), b"{\"half\":").unwrap();

    let (mut durable, report) = DurableStream::recover(tmp.path(), &data, config, policy).unwrap();
    assert_eq!(report.checkpoints_rejected, 1, "{:?}", report.rejected);
    assert!(report.checkpoint_seq.is_some());
    assert_eq!(report.resumed_at_seq, kill_at as u64);
    assert!(
        !tmp.path().join("ckpt-999999999999.ckpt.tmp").exists(),
        "stray temp files are swept during recovery"
    );
    for e in &events[kill_at..] {
        durable.ingest(e).unwrap();
    }
    assert_eq!(
        reference,
        serde_json::to_string(&durable.finish().output).unwrap()
    );
}

#[test]
fn torn_journal_tail_recovers_good_prefix_and_resumes() {
    let data = run(&ScenarioParams::tiny(7));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    let reference = stream_json_over(&data, &config, &events);
    let policy = DurabilityPolicy {
        checkpoint_interval: 0, // journal is the only durable state
        segment_max_records: 1_000_000,
        ..DurabilityPolicy::default()
    };
    let kill_at = events.len().min(120);
    let tmp = TempDir::new("torn-journal");
    run_to_kill(&tmp, &data, &config, policy, &events, kill_at);

    // Cut the single segment mid-record: drop the last line's tail and
    // leave the partial record behind.
    let journal = tmp.path().join("journal");
    let seg = fs::read_dir(&journal)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .next()
        .expect("one journal segment");
    let text = fs::read_to_string(&seg).unwrap();
    let cut = text.len() - text.len() / 10;
    fs::write(&seg, &text.as_bytes()[..cut]).unwrap();
    let whole_lines = text[..cut].matches('\n').count();
    assert!(whole_lines < kill_at, "the cut must tear real records");

    let (mut durable, report) =
        DurableStream::recover(tmp.path(), &data, config.clone(), policy).unwrap();
    assert!(report.started_fresh);
    assert_eq!(
        report.resumed_at_seq, whole_lines as u64,
        "every intact record replays, the torn one is discarded"
    );
    assert!(report.journal_truncated_records >= 1);
    // Re-feed everything the tear lost, then the rest of the stream.
    for e in &events[whole_lines..] {
        durable.ingest(e).unwrap();
    }
    let result = durable.finish();
    assert_eq!(reference, serde_json::to_string(&result.output).unwrap());
    // And the repaired-by-continuation journal recovers again cleanly.
    let (durable2, report2) = DurableStream::recover(tmp.path(), &data, config, policy).unwrap();
    assert_eq!(report2.resumed_at_seq, events.len() as u64);
    assert_eq!(
        reference,
        serde_json::to_string(&durable2.finish().output).unwrap()
    );
}

#[test]
fn mid_journal_damage_is_a_typed_error_not_a_panic() {
    let data = run(&ScenarioParams::tiny(8));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    let policy = DurabilityPolicy {
        checkpoint_interval: 0,
        segment_max_records: 20, // force several segments
        ..DurabilityPolicy::default()
    };
    let kill_at = events.len().min(100);
    let tmp = TempDir::new("mid-journal");
    run_to_kill(&tmp, &data, &config, policy, &events, kill_at);

    // Damage a record in the FIRST segment; the later segments cannot
    // bridge the hole, so the journal is unrecoverable and must say so.
    let first_seg = tmp.path().join("journal").join("seg-000000000001.jl");
    let text = fs::read_to_string(&first_seg).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3);
    lines[1] = "{\"seq\":2,\"fnv\":\"0000000000000000\",\"event\":null}";
    fs::write(&first_seg, format!("{}\n", lines.join("\n"))).unwrap();

    let err = match DurableStream::recover(tmp.path(), &data, config, policy) {
        Ok(_) => panic!("mid-journal damage must not recover silently"),
        Err(e) => e,
    };
    assert!(
        matches!(err, RecoveryError::CorruptJournal { seq: 2, .. }),
        "got: {err}"
    );
}

#[test]
fn chaos_injected_checkpoint_faults_are_retried_and_counted() {
    let data = run(&ScenarioParams::tiny(9));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    let reference = stream_json_over(&data, &config, &events);
    let tmp = TempDir::new("flaky-disk");
    let policy = DurabilityPolicy {
        checkpoint_interval: 25,
        segment_max_records: 64,
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0, // keep the test fast; cadence is covered above
        },
        ..DurabilityPolicy::default()
    };
    let mut durable = DurableStream::create(tmp.path(), &data, config.clone(), policy).unwrap();
    let mut plan = DurabilityChaos::flaky(13).plan();
    durable.set_fault_hook(Some(Box::new(move |seq, attempt| {
        plan.should_fail(seq, attempt)
    })));
    for e in &events {
        durable.ingest(e).unwrap();
    }
    let result = durable.finish();
    assert_eq!(reference, serde_json::to_string(&result.output).unwrap());
    let d = result.report.durability.expect("durability counters");
    assert!(
        d.checkpoint_retries > 0,
        "the flaky preset must actually exercise the retry path"
    );
    assert!(d.checkpoints_written > 0);

    // With a budget of one attempt, the same flakiness is fatal — but
    // typed, and the state on disk stays recoverable.
    let tmp2 = TempDir::new("flaky-exhausted");
    let policy2 = DurabilityPolicy {
        checkpoint_interval: 1,
        retry: RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
        },
        ..policy
    };
    let mut durable2 = DurableStream::create(tmp2.path(), &data, config.clone(), policy2).unwrap();
    durable2.set_fault_hook(Some(Box::new(|_, _| true)));
    let err = (|| -> Result<(), RecoveryError> {
        for e in &events {
            durable2.ingest(e)?;
        }
        Ok(())
    })()
    .unwrap_err();
    assert!(
        matches!(err, RecoveryError::RetriesExhausted { attempts: 1, .. }),
        "got: {err}"
    );
    drop(durable2);
    let (_durable3, report) = DurableStream::recover(tmp2.path(), &data, config, policy2).unwrap();
    assert!(report.started_fresh, "journal alone still rebuilds");
    assert_eq!(report.events_replayed, 1);
}

// ---------------------------------------------------------------------
// Delta-chain durability (base + incremental snapshots)
// ---------------------------------------------------------------------

/// Snapshot files with the given extension, sorted ascending by name
/// (and therefore by sequence — names embed zero-padded sequences).
fn snapshot_files(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == ext))
        .collect();
    files.sort();
    files
}

/// First line of a snapshot file, parsed as the JSON header.
fn header_json(path: &Path) -> serde_json::Value {
    let text = fs::read_to_string(path).unwrap();
    let line = text.lines().next().expect("header line");
    serde_json::from_str(line).expect("parseable header")
}

/// Rewrite a snapshot file's header in place (payload untouched).
fn rewrite_header(path: &Path, mutate: impl FnOnce(&mut serde_json::Value)) {
    let text = fs::read_to_string(path).unwrap();
    let (line, payload) = text.split_once('\n').expect("header + payload");
    let mut header: serde_json::Value = serde_json::from_str(line).unwrap();
    mutate(&mut header);
    fs::write(
        path,
        format!("{}\n{payload}", serde_json::to_string(&header).unwrap()),
    )
    .unwrap();
}

/// A policy that writes delta chains on the off-thread writer: fulls
/// every 3rd snapshot, chains up to 4 deltas, 3 bases retained.
fn chain_policy() -> DurabilityPolicy {
    DurabilityPolicy {
        checkpoint_interval: 15,
        segment_max_records: 32,
        retain_checkpoints: 3,
        full_every_n_checkpoints: 3,
        max_chain_len: 4,
        offload_snapshots: true,
        ..DurabilityPolicy::default()
    }
}

/// Kill-and-recover sweep with delta chains ENABLED: seeded kill points
/// over full streams, off-thread snapshots on. Recovery must restore
/// through delta chains (not just bases) at least once across the
/// sweep, and every resumed run must finish byte-identical to batch.
#[test]
fn delta_chain_kill_sweep_recovers_byte_identical() {
    let mut max_chain_seen = 0u64;
    let mut deltas_seen = false;
    for seed in [3u64, 9] {
        let data = run(&ScenarioParams::tiny(seed));
        let config = AnalysisConfig::default();
        let reference = batch_json(&data, &config);
        let events = scenario_event_stream(&data);
        let policy = chain_policy();
        for kill_at in crash_points_seeded(seed * 7, events.len() as u64, 3) {
            let kill_at = kill_at as usize;
            let tmp = TempDir::new(&format!("delta-sweep-{seed}-{kill_at}"));
            run_to_kill(&tmp, &data, &config, policy, &events, kill_at);
            deltas_seen |= !snapshot_files(tmp.path(), "dckpt").is_empty();

            let (mut durable, report) =
                DurableStream::recover(tmp.path(), &data, config.clone(), policy).unwrap();
            assert_eq!(
                report.resumed_at_seq, kill_at as u64,
                "seed {seed} kill {kill_at}"
            );
            assert_eq!(report.checkpoints_rejected, 0, "{:?}", report.rejected);
            max_chain_seen = max_chain_seen.max(report.chain_length);
            for e in &events[kill_at..] {
                durable.ingest(e).unwrap();
            }
            let result = durable.finish();
            assert_eq!(
                reference,
                serde_json::to_string(&result.output).unwrap(),
                "seed {seed} kill {kill_at}"
            );
        }
    }
    assert!(deltas_seen, "the sweep must actually write delta files");
    assert!(
        max_chain_seen >= 1,
        "at least one recovery must walk a real delta chain"
    );
}

/// Prepare a sabotage scenario: run with `chain_policy` to a kill point
/// chosen so the newest snapshot on disk is a DELTA with at least one
/// retained base below it. Returns (data, config, reference, events,
/// kill_at).
fn chain_fixture(
    seed: u64,
) -> (
    faultline_sim::ScenarioData,
    AnalysisConfig,
    String,
    Vec<StreamEvent>,
) {
    let data = run(&ScenarioParams::tiny(seed));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    let reference = stream_json_over(&data, &config, &events);
    (data, config, reference, events)
}

/// Every [`ChainFault`] — torn delta, missing base, reordered chain,
/// corrupt parent hash — degrades recovery to an older intact link or
/// base, with the damage counted in `checkpoints_rejected`, and the
/// resumed run still finishes byte-identical. Never a panic, never a
/// wrong answer.
#[test]
fn chain_faults_degrade_to_intact_links_byte_identical() {
    let (data, config, reference, events) = chain_fixture(5);
    let policy = chain_policy();
    // Land between snapshot boundaries so the newest snapshot is the
    // 12th (a delta under fulls-every-3rd: F D D F D D F D D F D D).
    let kill_at = (policy.checkpoint_interval as usize * 12 + 5).min(events.len());
    for fault in ChainFault::ALL {
        let tmp = TempDir::new(&format!("chain-fault-{fault:?}"));
        run_to_kill(&tmp, &data, &config, policy, &events, kill_at);
        let deltas = snapshot_files(tmp.path(), "dckpt");
        let bases = snapshot_files(tmp.path(), "ckpt");
        assert!(deltas.len() >= 2, "{fault:?}: fixture needs two deltas");
        assert!(bases.len() >= 2, "{fault:?}: fixture needs two bases");
        assert!(
            deltas.last() > bases.last(),
            "{fault:?}: the newest snapshot must be a delta"
        );

        match fault {
            ChainFault::TornDelta => {
                // Tear the newest delta mid-payload.
                let victim = deltas.last().unwrap();
                let bytes = fs::read(victim).unwrap();
                fs::write(victim, &bytes[..bytes.len() * 2 / 3]).unwrap();
            }
            ChainFault::MissingBase => {
                // Delete the newest base, orphaning every delta above it.
                fs::remove_file(bases.last().unwrap()).unwrap();
            }
            ChainFault::ReorderedChain => {
                // Swap the two newest delta files' contents wholesale:
                // every chain pointer now disagrees with the file it
                // lands on.
                let a = &deltas[deltas.len() - 2];
                let b = &deltas[deltas.len() - 1];
                let (ab, bb) = (fs::read(a).unwrap(), fs::read(b).unwrap());
                fs::write(a, bb).unwrap();
                fs::write(b, ab).unwrap();
            }
            ChainFault::CorruptParentHash => {
                // The newest delta's header lies about its parent hash;
                // both payloads stay intact.
                rewrite_header(deltas.last().unwrap(), |h| {
                    h["parent_fnv"] = serde_json::Value::String("deadbeefdeadbeef".into());
                });
            }
        }

        let (mut durable, report) =
            DurableStream::recover(tmp.path(), &data, config.clone(), policy)
                .unwrap_or_else(|e| panic!("{fault:?} must degrade, not abort: {e}"));
        assert!(
            report.checkpoints_rejected >= 1,
            "{fault:?}: the damage must be detected: {:?}",
            report.rejected
        );
        assert_eq!(
            report.resumed_at_seq, kill_at as u64,
            "{fault:?}: journal replay covers whatever the fault cost"
        );
        for e in &events[kill_at..] {
            durable.ingest(e).unwrap();
        }
        assert_eq!(
            reference,
            serde_json::to_string(&durable.finish().output).unwrap(),
            "{fault:?}"
        );
    }
}

/// Forward compatibility: a delta stamped with a FUTURE format version
/// sitting in an otherwise valid chain is skipped — recovery falls back
/// to an older link or base and replays the journal — rather than
/// aborting the whole recovery.
#[test]
fn future_version_delta_is_skipped_not_fatal() {
    let (data, config, reference, events) = chain_fixture(7);
    let policy = chain_policy();
    let kill_at = (policy.checkpoint_interval as usize * 12 + 5).min(events.len());
    let tmp = TempDir::new("future-delta");
    run_to_kill(&tmp, &data, &config, policy, &events, kill_at);
    let deltas = snapshot_files(tmp.path(), "dckpt");
    let victim = deltas.last().expect("fixture writes deltas");
    rewrite_header(victim, |h| h["version"] = serde_json::json!(99));

    let (mut durable, report) = DurableStream::recover(tmp.path(), &data, config, policy)
        .expect("a future-version delta must not abort recovery");
    assert!(report.checkpoints_rejected >= 1);
    assert!(
        report.rejected.iter().any(|r| r.contains("version")),
        "the rejection names the version mismatch: {:?}",
        report.rejected
    );
    assert_eq!(report.resumed_at_seq, kill_at as u64);
    for e in &events[kill_at..] {
        durable.ingest(e).unwrap();
    }
    assert_eq!(
        reference,
        serde_json::to_string(&durable.finish().output).unwrap()
    );
}

/// Chain-aware pruning regression: with chains on, retention keeps the
/// newest N *chains*, so more files than `retain_checkpoints` survive —
/// and every delta still on disk can walk to a base that is also on
/// disk. Naive newest-N-files pruning would orphan deltas.
#[test]
fn pruning_never_orphans_a_retained_delta() {
    let (data, config, _reference, events) = chain_fixture(11);
    let policy = DurabilityPolicy {
        retain_checkpoints: 2,
        ..chain_policy()
    };
    let tmp = TempDir::new("chain-prune");
    let mut durable = DurableStream::create(tmp.path(), &data, config.clone(), policy).unwrap();
    for e in &events {
        durable.ingest(e).unwrap();
    }
    let result = durable.finish();
    drop(result);

    let deltas = snapshot_files(tmp.path(), "dckpt");
    let bases = snapshot_files(tmp.path(), "ckpt");
    assert!(!deltas.is_empty(), "retention must keep chained deltas");
    assert!(
        deltas.len() + bases.len() > policy.retain_checkpoints,
        "chains keep more files than a naive newest-N prune would"
    );
    assert!(
        bases.len() <= policy.retain_checkpoints,
        "retention still bounds the number of bases"
    );
    // Every retained delta's transitive parent chain ends at an on-disk
    // base: follow parent_seq header pointers through the delta set.
    let delta_by_seq: std::collections::BTreeMap<u64, &PathBuf> = deltas
        .iter()
        .map(|p| (header_json(p)["seq"].as_u64().unwrap(), p))
        .collect();
    let base_seqs: std::collections::BTreeSet<u64> = bases
        .iter()
        .map(|p| header_json(p)["seq"].as_u64().unwrap())
        .collect();
    for path in &deltas {
        let mut cur = header_json(path)["parent_seq"].as_u64().unwrap();
        let mut hops = 0;
        while !base_seqs.contains(&cur) {
            let parent = delta_by_seq
                .get(&cur)
                .unwrap_or_else(|| panic!("{} orphaned: no snapshot at seq {cur}", path.display()));
            cur = header_json(parent)["parent_seq"].as_u64().unwrap();
            hops += 1;
            assert!(hops <= deltas.len(), "parent walk must terminate");
        }
    }
    // And the pruned directory still recovers cleanly at end-of-stream.
    let (_durable, report) = DurableStream::recover(tmp.path(), &data, config, policy).unwrap();
    assert_eq!(report.resumed_at_seq, events.len() as u64);
    assert_eq!(report.checkpoints_rejected, 0, "{:?}", report.rejected);
}
