//! Cross-crate substrate integration: the wire formats, the config
//! miner, and the naming layer must compose exactly.

use faultline_core::linktable::LinkTable;
use faultline_isis::listener::Listener;
use faultline_isis::lsp::Lsp;
use faultline_isis::tlv::{IpReachEntry, IsReachEntry};
use faultline_syslog::parse::{parse_line, Parsed};
use faultline_topology::config::{mine, render_archive};
use faultline_topology::generator::CenicParams;
use faultline_topology::osi::SystemId;
use faultline_topology::time::Timestamp;
use std::collections::HashMap;

/// Render a full CENIC-scale config archive, mine it, and build the
/// LinkTable: every topology link must resolve through every key space.
#[test]
fn mined_table_resolves_all_key_spaces() {
    let topo = CenicParams::default().generate();
    let archive = render_archive(&topo);
    assert_eq!(archive.len(), 235);
    let inventory = mine(archive.values().map(String::as_str));
    assert_eq!(inventory.links.len(), topo.links().len());

    let hostnames: HashMap<SystemId, String> = topo
        .routers()
        .iter()
        .map(|r| (r.system_id, r.hostname.clone()))
        .collect();
    let table = LinkTable::new(&inventory, &hostnames, |_| {
        (Timestamp::EPOCH, Timestamp::from_secs(86_400))
    });

    for l in topo.links() {
        // Syslog key space.
        for ep in [&l.a, &l.b] {
            let host = &topo.router(ep.router).hostname;
            assert!(table.by_interface(host, &ep.interface).is_some());
        }
        // IP reachability key space.
        assert!(table.by_subnet(l.subnet).is_some());
        // IS reachability key space.
        let sa = topo.router(l.a.router).system_id;
        let sb = topo.router(l.b.router).system_id;
        assert!(!table.by_sysid_pair(sa, sb).is_empty());
    }
}

/// Every router in a generated topology can originate an LSP that
/// round-trips the wire codec and lands in a listener.
#[test]
fn all_routers_lsps_round_trip() {
    let topo = CenicParams::tiny(42).generate();
    let mut listener = Listener::new();
    for r in topo.routers() {
        let neighbors: Vec<IsReachEntry> = topo
            .links_of(r.id)
            .iter()
            .map(|&lid| {
                let l = topo.link(lid);
                IsReachEntry {
                    neighbor: topo.router(l.other_end(r.id).unwrap()).system_id,
                    pseudonode: 0,
                    metric: l.metric,
                }
            })
            .collect();
        let prefixes: Vec<IpReachEntry> = topo
            .links_of(r.id)
            .iter()
            .map(|&lid| IpReachEntry::for_subnet(topo.link(lid).subnet, 10))
            .collect();
        let lsp = Lsp::originate(r.system_id, 1, &r.hostname, &neighbors, &prefixes);
        let wire = lsp.encode();
        let back = Lsp::decode(&wire).expect("round trip");
        assert_eq!(back, lsp);
        listener.receive_bytes(Timestamp::EPOCH, &wire).unwrap();
    }
    // Baselines only: no transitions, all hostnames learned.
    assert!(listener.transitions().is_empty());
    assert_eq!(listener.hostnames().len(), topo.routers().len());
}

/// The syslog grammar produced for any router/interface in a generated
/// topology parses back to the same structured event.
#[test]
fn syslog_grammar_round_trips_for_all_routers() {
    use faultline_syslog::message::{AdjChangeDetail, LinkEvent, LinkEventKind, SyslogMessage};
    let topo = CenicParams::tiny(9).generate();
    let mut count = 0;
    for l in topo.links() {
        for (ep, other) in [(&l.a, &l.b), (&l.b, &l.a)] {
            let r = topo.router(ep.router);
            let msg = SyslogMessage {
                seq: 1,
                event: LinkEvent {
                    at: Timestamp::from_millis(123_456_789),
                    host: r.hostname.clone(),
                    interface: ep.interface.clone(),
                    kind: LinkEventKind::IsisAdjacency {
                        neighbor: topo.router(other.router).hostname.clone(),
                        detail: AdjChangeDetail::HoldTimeExpired,
                    },
                    up: false,
                },
                os: r.os,
            };
            match parse_line(&msg.render()) {
                Parsed::Event(back) => assert_eq!(back, msg),
                other => panic!("unparsed: {other:?}"),
            }
            count += 1;
        }
    }
    assert_eq!(count, topo.links().len() * 2);
}
