//! Reproducibility contract: everything in the pipeline is a pure
//! function of its seeds. Re-running a scenario and its analysis must
//! yield byte-identical results; changing any seed must change them.

use faultline_core::{Analysis, AnalysisConfig, ParallelismConfig};
use faultline_sim::scenario::{run, ScenarioParams};

fn fingerprint(params: &ScenarioParams) -> String {
    let data = run(params);
    fingerprint_with(&Analysis::new(&data, AnalysisConfig::default()))
}

fn fingerprint_with(a: &Analysis<'_>) -> String {
    let t4 = a.table4();
    let t3 = a.table3();
    let (t6, _) = a.table6();
    format!(
        "{}|{}|{}|{:.3}|{:.3}|{}|{}|{}|{}",
        t4.isis_failures,
        t4.syslog_failures,
        t4.overlap_failures,
        t4.isis_downtime_hours,
        t4.syslog_downtime_hours,
        t3.down.none,
        t3.up.both,
        t6.total_ambiguous,
        a.data.raw_syslog_lines,
    )
}

#[test]
fn same_seed_same_results() {
    let params = ScenarioParams::tiny(301);
    assert_eq!(fingerprint(&params), fingerprint(&params));
}

#[test]
fn thread_count_does_not_change_results() {
    let data = run(&ScenarioParams::tiny(305));
    let serial = Analysis::run(
        &data,
        AnalysisConfig {
            parallelism: ParallelismConfig::SERIAL,
            ..AnalysisConfig::default()
        },
    );
    let baseline = fingerprint_with(&serial);
    // Every fan-out must be byte-identical to the serial pipeline,
    // including awkward chunk sizes. threads = 0 is "auto".
    for (threads, chunk_size) in [(0, 16), (2, 1), (4, 7), (8, 16)] {
        let config = AnalysisConfig {
            parallelism: ParallelismConfig {
                threads,
                chunk_size,
            },
            ..AnalysisConfig::default()
        };
        let parallel = Analysis::run(&data, config);
        assert_eq!(
            fingerprint_with(&parallel),
            baseline,
            "threads={threads} chunk_size={chunk_size} diverged"
        );
        assert_eq!(parallel.output.isis_failures, serial.output.isis_failures);
        assert_eq!(
            parallel.output.syslog_failures,
            serial.output.syslog_failures
        );
        assert_eq!(
            parallel.output.syslog_transitions,
            serial.output.syslog_transitions
        );
    }
}

#[test]
fn workload_seed_changes_results() {
    let a = ScenarioParams::tiny(302);
    let mut b = ScenarioParams::tiny(302);
    b.workload.seed ^= 1;
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn transport_seed_changes_syslog_only() {
    let a = ScenarioParams::tiny(303);
    let mut b = ScenarioParams::tiny(303);
    b.transport.seed ^= 1;
    let da = run(&a);
    let db = run(&b);
    // IS-IS view identical; syslog view differs... the scenario RNG is
    // shared, so only the transport decisions change.
    assert_eq!(da.transitions, db.transitions);
    assert_ne!(da.raw_syslog_lines, db.raw_syslog_lines);
}

#[test]
fn topology_seed_changes_everything() {
    let a = ScenarioParams::tiny(304);
    let mut b = ScenarioParams::tiny(304);
    b.topology.seed ^= 1;
    assert_ne!(fingerprint(&a), fingerprint(&b));
}
