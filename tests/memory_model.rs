//! Integration guards for the memory-shaped hot path: interned symbol
//! ids and the zero-copy byte parser.
//!
//! Two contracts are pinned here, both required for the representation
//! changes to be invisible in every observable output:
//!
//! 1. **Parser equivalence.** The zero-copy [`parse_bytes`] path must
//!    agree with the string-path [`classify_line`] reference on every
//!    line a *real* scenario archive renders (the fuzz corpus in
//!    `crates/syslog/tests/fuzz_parse.rs` covers mutated/adversarial
//!    lines; this file covers the golden production distribution), and
//!    the archive-level accounting must be identical.
//!
//! 2. **Id stability across checkpoint/restore.** Symbol ids are *not*
//!    persisted in a [`StreamCheckpoint`] — they are rebuilt
//!    deterministically from the scenario on restore. A checkpoint taken
//!    immediately after a restore must therefore serialize byte-identical
//!    to the checkpoint it was restored from, and a resumed run must
//!    flush byte-identical output to one that never stopped.

use faultline_core::linktable::from_scenario;
use faultline_core::{scenario_event_stream, AnalysisConfig, StreamAnalysis, StreamCheckpoint};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_syslog::parse::{
    classify_line, parse_archive_stats, parse_archive_stats_bytes, parse_bytes, ParseOutcome,
};

/// Every line of a rendered golden-scenario archive classifies the same
/// through the byte path and the string path, and the events recovered
/// are real (the archive is all studied mnemonics).
#[test]
fn golden_scenario_archive_parses_identically_by_bytes_and_str() {
    let data = run(&ScenarioParams::tiny(42));
    assert!(!data.syslog.is_empty(), "scenario must emit syslog");
    for msg in &data.syslog {
        let line = msg.render();
        let by_str = classify_line(&line);
        let by_bytes = parse_bytes(line.as_bytes()).to_owned();
        assert!(
            matches!(by_str, ParseOutcome::Event(_)),
            "rendered line must parse: {line}"
        );
        assert_eq!(by_bytes, by_str, "paths diverged on: {line}");
    }
}

/// Archive-level differential: events and per-cause stats are identical
/// across the two parse paths, including over irrelevant and malformed
/// lines mixed into the feed.
#[test]
fn archive_stats_identical_across_parse_paths() {
    let data = run(&ScenarioParams::tiny(7));
    let mut lines: Vec<String> = data.syslog.iter().map(|m| m.render()).collect();
    lines.push("<189>7: h: Oct 21 2010 01:02:03.004: %SYS-5-CONFIG_I: Configured".into());
    lines.push("not syslog at all".into());
    lines.push("<189>1: h: Oct 21 2010 00:00:0".into());
    let (by_str, stats_str) = parse_archive_stats(lines.iter().map(String::as_str));
    let (by_bytes, stats_bytes) = parse_archive_stats_bytes(lines.iter().map(|l| l.as_bytes()));
    assert_eq!(by_str, by_bytes);
    assert_eq!(stats_str, stats_bytes);
    assert!(stats_bytes.is_balanced());
    assert_eq!(stats_bytes.irrelevant, 1);
    assert_eq!(stats_bytes.malformed, 2);
}

/// Rebuilding the link table from the same scenario assigns the same
/// symbol ids: interning order is pinned to inventory order plus
/// system-ID-sorted hostname TLVs, never map iteration order.
#[test]
fn symbol_ids_are_deterministic_across_rebuilds() {
    let data = run(&ScenarioParams::tiny(21));
    let a = from_scenario(&data);
    let b = from_scenario(&data);
    assert!(!a.symbols().is_empty(), "table must intern something");
    assert_eq!(a.symbols(), b.symbols(), "id assignment must be stable");
}

/// Checkpoint → serialize → restore → checkpoint is byte-identical, and
/// the resumed run flushes byte-identical output to an uninterrupted
/// one. This is the proof that interned ids survive checkpoint/restore:
/// ids index every lane and map, so any drift in rebuilt ids would show
/// up in one of the two comparisons.
#[test]
fn interned_ids_survive_checkpoint_restore_byte_identically() {
    let data = run(&ScenarioParams::tiny(11));
    let config = AnalysisConfig::default();
    let events = scenario_event_stream(&data);
    assert!(events.len() > 10);

    let mut full = StreamAnalysis::new(&data, config.clone());
    full.ingest_batch(&events);
    let expected = serde_json::to_string(&full.flush().output).unwrap();

    for cut in [1, events.len() / 3, events.len() / 2, events.len() - 1] {
        let mut head = StreamAnalysis::new(&data, config.clone());
        head.ingest_batch(&events[..cut]);
        let ckpt_json = serde_json::to_string(&head.checkpoint()).unwrap();

        let revived: StreamCheckpoint = serde_json::from_str(&ckpt_json).unwrap();
        let mut resumed = StreamAnalysis::restore(&data, revived).expect("restore");
        let again = serde_json::to_string(&resumed.checkpoint()).unwrap();
        assert_eq!(
            ckpt_json, again,
            "checkpoint drifted across restore (cut {cut})"
        );

        resumed.ingest_batch(&events[cut..]);
        let got = serde_json::to_string(&resumed.flush().output).unwrap();
        assert_eq!(expected, got, "resumed output diverged (cut {cut})");
    }
}
