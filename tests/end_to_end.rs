//! End-to-end integration tests spanning every crate: topology generation
//! → config mining → failure simulation → IS-IS flooding + syslog
//! transport → the full comparative analysis.

use faultline_core::{Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_topology::link::LinkClass;

/// With a lossless transport and no listener outages, the syslog and
/// IS-IS reconstructions must agree closely: the only syslog-only
/// failures are deliberately injected pseudo-events, and the only
/// IS-IS-only failures are boundary artifacts.
#[test]
fn lossless_differential_baseline() {
    let data = run(&ScenarioParams::tiny(101).lossless());
    let a = Analysis::new(&data, AnalysisConfig::default());
    let matching = a.failure_matching();
    let isis_n = a.output.isis_failures.len();
    let matched = matching.matched.len();
    assert!(
        matched as f64 >= 0.9 * isis_n as f64,
        "lossless run must match >=90% of IS-IS failures: {matched}/{isis_n}"
    );
    // Transport accounting: everything offered was delivered.
    assert_eq!(data.transport_stats.offered, data.transport_stats.delivered);
}

/// The lossy pipeline must reproduce the paper's headline asymmetries
/// at reduced scale.
#[test]
fn lossy_run_shows_paper_asymmetries() {
    let mut params = ScenarioParams::tiny(103);
    params.workload.period_days = 180.0;
    // Link lifetimes are drawn against the topology's period; keep them
    // in sync so links live through the longer window.
    params.topology.period_days = 180.0;
    let data = run(&params);
    let a = Analysis::new(&data, AnalysisConfig::default());

    // Both sources reconstruct a meaningful number of failures. (The tiny
    // topology has few links and flapping is concentrated, so counts are
    // modest.)
    assert!(
        a.output.isis_failures.len() > 40,
        "{}",
        a.output.isis_failures.len()
    );
    assert!(
        a.output.syslog_failures.len() > 40,
        "{}",
        a.output.syslog_failures.len()
    );

    // Syslog downtime does not exceed IS-IS downtime by much (lost
    // messages and silent outages bias it down; small runs are noisy).
    let t4 = a.table4();
    assert!(
        t4.syslog_downtime_hours <= t4.isis_downtime_hours * 1.3,
        "syslog {:.0}h vs isis {:.0}h",
        t4.syslog_downtime_hours,
        t4.isis_downtime_hours
    );
    // Overlap is bounded by both sides.
    assert!(t4.overlap_failures <= t4.isis_failures.min(t4.syslog_failures));
    assert!(t4.overlap_downtime_hours <= t4.isis_downtime_hours + 1e-9);
    assert!(t4.overlap_downtime_hours <= t4.syslog_downtime_hours + 1e-9);
}

/// Every failure the analysis reports must lie on a resolvable link and
/// inside the measurement period.
#[test]
fn failures_are_well_formed() {
    let data = run(&ScenarioParams::tiny(104));
    let a = Analysis::new(&data, AnalysisConfig::default());
    let period_ms = (data.period_days * 86_400_000.0) as u64;
    for f in a
        .output
        .isis_failures
        .iter()
        .chain(a.output.syslog_failures.iter())
    {
        assert!(f.end > f.start, "non-positive duration: {f:?}");
        assert!(f.end.as_millis() <= period_ms + 3_600_000);
        assert!(a.table.is_resolvable(f.link));
    }
}

/// The mined link inventory must resolve every syslog message and every
/// IS-IS transition the simulator produces (full naming closure).
#[test]
fn naming_layer_is_closed() {
    let data = run(&ScenarioParams::tiny(105));
    let a = Analysis::new(&data, AnalysisConfig::default());
    assert_eq!(a.output.resolve_stats.unresolved, 0);
    assert_eq!(a.output.is_stats.unknown, 0);
    assert_eq!(a.output.ip_stats.unknown, 0);
    // IP reachability identifies every link uniquely (/31s).
    assert_eq!(a.output.ip_stats.unresolvable_multilink, 0);
}

/// Table 5 metric samples feed a KS test without panicking, for both
/// classes, and the distributions have sane supports.
#[test]
fn statistics_pipeline_runs() {
    let mut params = ScenarioParams::tiny(106);
    params.workload.period_days = 90.0;
    let data = run(&params);
    let a = Analysis::new(&data, AnalysisConfig::default());
    for class in [LinkClass::Core, LinkClass::Cpe] {
        let ks = a.ks_tests(class);
        for r in [ks.failures_per_link, ks.failure_duration, ks.link_downtime] {
            assert!((0.0..=1.0).contains(&r.statistic));
            assert!((0.0..=1.0).contains(&r.p_value));
        }
    }
    let fig = a.figure1();
    // ECDFs are monotone by construction; check the ends.
    assert_eq!(fig.duration_secs.0.at(f64::MAX), 1.0);
    assert_eq!(fig.duration_secs.1.at(-1.0), 0.0);
}

/// Sanitization invariants: nothing overlapping a listener outage
/// survives, and every long syslog failure that survives is chronicled
/// by a ticket.
#[test]
fn sanitization_invariants() {
    let data = run(&ScenarioParams::tiny(107));
    let a = Analysis::new(&data, AnalysisConfig::default());
    for f in a
        .output
        .isis_failures
        .iter()
        .chain(a.output.syslog_failures.iter())
    {
        for s in &data.offline_spans {
            assert!(f.end < s.from || f.start > s.to);
        }
    }
    let cfg = AnalysisConfig::default();
    for f in &a.output.syslog_failures {
        if f.duration() > cfg.long_threshold {
            let lid = a.link_of_ix[&f.link];
            assert!(
                data.tickets.verifies(lid, f.start, f.end, cfg.ticket_slack),
                "surviving long failure without ticket: {f:?}"
            );
        }
    }
}

/// Isolation results are consistent between the two entry points and
/// bounded by the topology.
#[test]
fn isolation_consistency() {
    let data = run(&ScenarioParams::tiny(108));
    let a = Analysis::new(&data, AnalysisConfig::default());
    let t7 = a.table7();
    let n_customers = data.topology.customers().len() as u64;
    assert!(t7.isis_sites <= n_customers);
    assert!(t7.syslog_sites <= n_customers);
    assert!(t7.intersection.matched_events <= t7.isis_events.min(t7.syslog_events));
    assert!(t7.intersection.common_sites <= t7.isis_sites.min(t7.syslog_sites));
    assert!(t7.intersection.intersection_days <= t7.isis_days + 1e-9);
    assert!(t7.intersection.intersection_days <= t7.syslog_days + 1e-9);
}
