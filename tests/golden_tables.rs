//! Golden-file regression: the paper tables computed from pinned seed
//! scenarios must not drift.
//!
//! The checked-in JSON under `tests/golden/` is the blessed output of
//! the analysis pipeline for two fixed scenarios. Any intentional change
//! to the pipeline (new counters, adjusted calibration, reordered
//! stages) that shifts a table must re-bless the goldens:
//!
//! ```sh
//! FAULTLINE_BLESS=1 cargo test --test golden_tables
//! git diff tests/golden/   # review the drift before committing
//! ```
//!
//! An unintentional mismatch is a regression: the test prints the
//! offending table's expected and actual JSON.

use faultline_core::{Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioParams};
use serde_json::Value;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    std::env::var_os("FAULTLINE_BLESS").is_some_and(|v| v != "0")
}

/// Every paper exhibit the analysis derives, as one JSON document.
fn tables_json(a: &Analysis<'_>) -> Value {
    let (table6, ambiguity) = a.table6();
    serde_json::json!({
        "table1": (serde_json::to_value(&a.table1()).unwrap()),
        "table2": (serde_json::to_value(&a.table2()).unwrap()),
        "table3": (serde_json::to_value(&a.table3()).unwrap()),
        "table4": (serde_json::to_value(&a.table4()).unwrap()),
        "table5": (serde_json::to_value(&a.table5()).unwrap()),
        "table6": (serde_json::to_value(&table6).unwrap()),
        "ambiguity": (serde_json::to_value(&ambiguity).unwrap()),
        "table7": (serde_json::to_value(&a.table7()).unwrap()),
        "counters": (serde_json::to_value(&a.report.counters).unwrap()),
    })
}

fn check_golden(name: &str, actual: &Value) {
    let path = golden_dir().join(format!("{name}.json"));
    let rendered = serde_json::to_string_pretty(actual).unwrap();
    if blessing() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, rendered + "\n").unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with FAULTLINE_BLESS=1 cargo test --test golden_tables",
            path.display()
        )
    });
    let expected: Value = serde_json::from_str(&blessed).expect("golden is valid JSON");
    if expected != *actual {
        for key in [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "ambiguity",
            "table7",
            "counters",
        ] {
            if expected[key] != actual[key] {
                panic!(
                    "golden `{name}` drifted at `{key}`:\n  expected: {}\n  actual:   {}\n\
                     If this change is intentional, re-bless with FAULTLINE_BLESS=1 cargo test --test golden_tables",
                    serde_json::to_string(&expected[key]).unwrap(),
                    serde_json::to_string(&actual[key]).unwrap()
                );
            }
        }
        panic!("golden `{name}` drifted (structural difference)");
    }
}

#[test]
fn tiny_seed_42_tables_are_pinned() {
    let data = run(&ScenarioParams::tiny(42));
    let a = Analysis::new(&data, AnalysisConfig::default());
    check_golden("tiny_seed42_tables", &tables_json(&a));
}

#[test]
fn tiny_seed_7_tables_are_pinned() {
    let data = run(&ScenarioParams::tiny(7));
    let a = Analysis::new(&data, AnalysisConfig::default());
    check_golden("tiny_seed7_tables", &tables_json(&a));
}

/// The lossless variant pins the §4.1 control condition: with a perfect
/// transport, syslog and IS-IS views nearly coincide, and any drift here
/// points at the substrate rather than the loss model.
#[test]
fn lossless_tiny_seed_42_tables_are_pinned() {
    let data = run(&ScenarioParams::tiny(42).lossless());
    let a = Analysis::new(&data, AnalysisConfig::default());
    check_golden("tiny_seed42_lossless_tables", &tables_json(&a));
}
