//! Differential harness for the sharded cluster runtime: the aggregated
//! N-shard answer must be **byte-identical** to the single-process
//! answer — the load-bearing deliverable of the cluster layer.
//!
//! Every shard runs the unmodified streaming driver over its substream;
//! the deterministic aggregator merges shard outputs. For every tested
//! shard count × seed × chaos preset, `serde_json::to_string` of the
//! merged [`StreamOutput`] must equal the batch [`Analysis::run`] JSON
//! exactly — not approximately, not up to reordering. The harness also
//! pins the merged headline counters against the checked-in golden
//! tables, so a cluster-side drift cannot hide behind a simultaneous
//! (and wrong) "re-bless both sides" change.

use faultline_core::cluster::{run_cluster, ClusterConfig};
use faultline_core::{scenario_event_stream, Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::{ChaosConfig, ScenarioData};
use serde_json::Value;
use std::path::PathBuf;

const SHARD_COUNTS: [u32; 6] = [1, 2, 3, 4, 7, 16];

fn batch_json(data: &ScenarioData, config: &AnalysisConfig) -> String {
    let analysis = Analysis::run(data, config.clone());
    serde_json::to_string(&analysis.output).unwrap()
}

fn cluster_json(data: &ScenarioData, config: &AnalysisConfig, shards: u32, chunk: usize) -> String {
    let events = scenario_event_stream(data);
    let cfg = ClusterConfig {
        shards,
        analysis: config.clone(),
        chunk,
    };
    let result = run_cluster(data, &events, &cfg).expect("valid cluster run");
    serde_json::to_string(&result.output).unwrap()
}

/// The pinned grid: every shard count × several seeds × the chaos
/// presets (clean, mild, moderate). One contract, no exceptions: the
/// merged output serializes byte-identical to batch.
#[test]
fn shard_grid_is_byte_identical_to_batch() {
    let config = AnalysisConfig::default();
    for seed in [11u64, 42, 77] {
        for preset in ["clean", "mild", "moderate"] {
            let mut params = ScenarioParams::tiny(seed);
            params.chaos = match preset {
                "mild" => ChaosConfig::mild(seed * 31),
                "moderate" => ChaosConfig::moderate(seed * 31),
                _ => ChaosConfig::default(),
            };
            let data = run(&params);
            let expected = batch_json(&data, &config);
            for shards in SHARD_COUNTS {
                let got = cluster_json(&data, &config, shards, 64);
                assert_eq!(
                    expected, got,
                    "cluster diverged from batch: seed {seed}, preset {preset}, {shards} shards"
                );
            }
        }
    }
}

/// Quarantine horizons interact with the cluster exactly as with one
/// process: the admission decision is per-item and rides with the event
/// to whichever shard receives it.
#[test]
fn quarantined_cluster_stays_byte_identical() {
    for seed in [13u64, 59] {
        let mut params = ScenarioParams::tiny(seed);
        params.chaos = ChaosConfig::mild(seed * 17);
        let data = run(&params);
        let events = scenario_event_stream(&data);
        let config = AnalysisConfig {
            quarantine_horizon: Some(events[events.len() / 2].at()),
            ..AnalysisConfig::default()
        };
        let batch = Analysis::run(&data, config.clone());
        assert!(
            batch.report.robustness.total_quarantined() > 0,
            "seed {seed}: horizon must actually divert events"
        );
        let expected = serde_json::to_string(&batch.output).unwrap();
        for shards in [1u32, 3, 7] {
            assert_eq!(
                expected,
                cluster_json(&data, &config, shards, 16),
                "quarantine×cluster: seed {seed}, {shards} shards"
            );
        }
    }
}

/// The shard worker's micro-batch size is pure mechanics: any chunking
/// of any shard's substream produces the same bytes.
#[test]
fn shard_chunk_size_is_invisible() {
    let data = run(&ScenarioParams::tiny(42));
    let config = AnalysisConfig::default();
    let expected = batch_json(&data, &config);
    for chunk in [1usize, 7, 1024, usize::MAX] {
        assert_eq!(
            expected,
            cluster_json(&data, &config, 4, chunk),
            "chunk {chunk}"
        );
    }
}

/// The merged report's accounting is exact: per-shard event counts sum
/// to the stream, headline counters equal the single-process ones, and
/// the skew/min/max fields describe the actual partition.
#[test]
fn shard_counters_describe_the_actual_partition() {
    let data = run(&ScenarioParams::tiny(42));
    let events = scenario_event_stream(&data);
    let batch = Analysis::run(&data, AnalysisConfig::default());
    for shards in SHARD_COUNTS {
        let result = run_cluster(&data, &events, &ClusterConfig::new(shards)).unwrap();
        assert_eq!(
            result.output.counters, batch.report.counters,
            "{shards} shards"
        );
        assert_eq!(
            result.report.counters, batch.report.counters,
            "{shards} shards"
        );
        let c = result
            .report
            .cluster
            .as_ref()
            .expect("cluster section present");
        assert_eq!(c.shards, shards);
        assert_eq!(c.events_per_shard.len(), shards as usize);
        assert_eq!(
            c.events_per_shard.iter().sum::<u64>(),
            events.len() as u64,
            "events unaccounted for at {shards} shards"
        );
        assert_eq!(
            c.max_shard_events,
            *c.events_per_shard.iter().max().unwrap()
        );
        assert_eq!(
            c.min_shard_events,
            *c.events_per_shard.iter().min().unwrap()
        );
        assert_eq!(
            c.recovery_events, 0,
            "healthy run must record no recoveries"
        );
        assert_eq!(result.shard_reports.len(), shards as usize);
        // Each shard saw a nonempty slice of work only if it was routed
        // events; the streaming section must agree with the partition.
        for (i, r) in result.shard_reports.iter().enumerate() {
            let s = r
                .streaming
                .as_ref()
                .expect("shards run the streaming driver");
            assert_eq!(s.events_ingested, c.events_per_shard[i], "shard {i}");
        }
    }
}

/// The merged counters also agree with the checked-in golden tables —
/// pinned bytes on disk, not a value computed in this process — so the
/// cluster cannot drift in lockstep with a broken batch pipeline without
/// failing CI.
#[test]
fn cluster_counters_match_golden_tables_without_reblessing() {
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for (name, seed) in [("tiny_seed42_tables", 42u64), ("tiny_seed7_tables", 7u64)] {
        let blessed: Value = serde_json::from_str(
            &std::fs::read_to_string(golden_dir.join(format!("{name}.json")))
                .expect("golden present"),
        )
        .expect("golden is valid JSON");
        let data = run(&ScenarioParams::tiny(seed));
        let events = scenario_event_stream(&data);
        for shards in [1u32, 4, 16] {
            let result = run_cluster(&data, &events, &ClusterConfig::new(shards)).unwrap();
            assert_eq!(
                blessed["counters"],
                serde_json::to_value(&result.report.counters).unwrap(),
                "cluster counters drifted from golden `{name}` at {shards} shards"
            );
        }
    }
}

/// Invalid inputs are rejected up front, before any shard thread spawns:
/// the cluster refuses exactly what the single-process drivers refuse.
#[test]
fn cluster_validates_like_the_single_process_drivers() {
    let data = run(&ScenarioParams::tiny(42));
    let events = scenario_event_stream(&data);
    let cfg = ClusterConfig {
        shards: 4,
        analysis: AnalysisConfig {
            match_window: faultline_topology::time::Duration::ZERO,
            ..AnalysisConfig::default()
        },
        chunk: 64,
    };
    assert!(run_cluster(&data, &events, &cfg).is_err());
    // Zero shards is clamped, not rejected — a degenerate cluster is the
    // single process.
    let degenerate = run_cluster(&data, &events, &ClusterConfig::new(0)).unwrap();
    assert_eq!(degenerate.report.cluster.unwrap().shards, 1);
}
