//! Live-reshard harness: grow a running cluster N → N+1 mid-stream and
//! prove the two properties that make jump-hash resharding safe to do
//! live:
//!
//! 1. **Minimal movement** — exactly the links `shard_of_link`
//!    reassigns migrate, every one of them lands on the new shard, and
//!    the ledger matches an independent recomputation link by link;
//! 2. **Byte-identity** — the merged output after the mid-stream grow
//!    equals a from-scratch (N+1)-shard run *and* the single-process
//!    batch answer, for splits at the stream's ends and middle alike.

use faultline_core::cluster::{
    run_cluster, run_reshard_cluster, run_reshard_cluster_subprocess, shard_of_link, ClusterConfig,
    SubprocessOptions,
};
use faultline_core::linktable::{from_scenario, LinkIx};
use faultline_core::transport::ScenarioSpec;
use faultline_core::{scenario_event_stream, Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::ChaosConfig;
use std::path::PathBuf;

/// The links jump-hash reassigns when a cluster grows from `n` to
/// `n + 1` shards — recomputed here independently of the runtime's own
/// migration planning.
fn predicted_moves(data: &faultline_sim::ScenarioData, n: u32) -> Vec<LinkIx> {
    let table = from_scenario(data);
    table
        .iter()
        .filter(|&ix| shard_of_link(&table, ix, n) != shard_of_link(&table, ix, n + 1))
        .collect()
}

/// The pinned grid: shard counts × split points covering "reshard
/// before anything", "reshard mid-stream", "reshard at the last event",
/// and "reshard after everything". Every cell is byte-identical to both
/// references and moves exactly the predicted links.
#[test]
fn reshard_grid_is_byte_identical_and_moves_exactly_the_predicted_links() {
    let config = AnalysisConfig::default();
    let mut params = ScenarioParams::tiny(42);
    params.chaos = ChaosConfig::mild(42 * 31);
    let data = run(&params);
    let events = scenario_event_stream(&data);
    let batch = {
        let analysis = Analysis::run(&data, config.clone());
        serde_json::to_string(&analysis.output).unwrap()
    };
    for n in [1u32, 2, 3, 6] {
        let predicted = predicted_moves(&data, n);
        let scratch = {
            let cfg = ClusterConfig {
                shards: n + 1,
                analysis: config.clone(),
                chunk: 128,
            };
            let result = run_cluster(&data, &events, &cfg).expect("from-scratch N+1 run");
            serde_json::to_string(&result.output).unwrap()
        };
        assert_eq!(batch, scratch, "the N+1 reference itself must match batch");
        for split in [
            0,
            events.len() / 3,
            events.len() / 2,
            events.len() - 1,
            events.len(),
        ] {
            let cfg = ClusterConfig {
                shards: n,
                analysis: config.clone(),
                chunk: 128,
            };
            let grown = run_reshard_cluster(&data, &events, &cfg, split).expect("reshard run");
            assert_eq!(
                batch,
                serde_json::to_string(&grown.result.output).unwrap(),
                "reshard {n} -> {} at split {split} diverged",
                n + 1
            );
            assert_eq!(grown.reshard.from_shards, n);
            assert_eq!(grown.reshard.to_shards, n + 1);
            assert_eq!(grown.reshard.split_at, split);
            let mut moved = grown.reshard.moved_links.clone();
            moved.sort();
            let mut expected_moves = predicted.clone();
            expected_moves.sort();
            assert_eq!(
                moved,
                expected_moves,
                "reshard {n} -> {} moved links != jump-hash prediction",
                n + 1
            );
            let table = from_scenario(&data);
            for &link in &grown.reshard.moved_links {
                assert_eq!(
                    shard_of_link(&table, link, n + 1),
                    n,
                    "every moved link lands on the new shard"
                );
            }
            // Only links whose lanes had opened ship state; the rest
            // start fresh on the new worker.
            assert!(grown.reshard.lanes_moved <= grown.reshard.moved_links.len() as u64);
            let t = grown.result.report.transport.expect("transport ledger");
            assert_eq!(t.lanes_migrated, grown.reshard.lanes_moved);
            assert_eq!(t.workers_spawned, u64::from(n) + 1, "N at start + 1 grown");
            if split == 0 {
                assert_eq!(
                    grown.reshard.lanes_moved, 0,
                    "nothing has happened yet, so no lane holds state"
                );
            }
        }
    }
}

/// The same contract across process boundaries: one subprocess reshard
/// where the migrated lanes genuinely travel as hashed frames between
/// three OS processes, byte-identical to batch and matching the
/// jump-hash prediction.
#[test]
fn subprocess_reshard_is_byte_identical() {
    let params = ScenarioParams::tiny(11);
    let data = run(&params);
    let events = scenario_event_stream(&data);
    let batch = {
        let analysis = Analysis::run(&data, AnalysisConfig::default());
        serde_json::to_string(&analysis.output).unwrap()
    };
    let opts = SubprocessOptions {
        worker_bin: PathBuf::from(env!("CARGO_BIN_EXE_faultline-shard-worker")),
        scenario: ScenarioSpec::Params(Box::new(params)),
    };
    let n = 2u32;
    let split = events.len() / 2;
    let cfg = ClusterConfig {
        shards: n,
        chunk: 256,
        ..ClusterConfig::new(n)
    };
    let grown =
        run_reshard_cluster_subprocess(&data, &events, &cfg, split, &opts).expect("reshard");
    assert_eq!(
        batch,
        serde_json::to_string(&grown.result.output).unwrap(),
        "subprocess reshard diverged from batch"
    );
    let mut moved = grown.reshard.moved_links.clone();
    moved.sort();
    let mut predicted = predicted_moves(&data, n);
    predicted.sort();
    assert_eq!(moved, predicted);
    let t = grown.result.report.transport.expect("transport ledger");
    assert_eq!(t.lanes_migrated, grown.reshard.lanes_moved);
    assert!(
        t.bytes_sent > 0,
        "migrated lanes really crossed the wire: {t:?}"
    );
}
