//! Multi-process cluster harness: the same differential contracts the
//! in-process cluster carries (`tests/cluster_equivalence.rs`,
//! `tests/cluster_recovery.rs`), now with every worker a genuine
//! `faultline-shard-worker` subprocess speaking hashed frames over
//! stdio. Nothing about the contract softens across the process
//! boundary:
//!
//! 1. the merged subprocess-cluster output is byte-identical to the
//!    single-process batch answer across shard counts, seeds, and chaos
//!    presets;
//! 2. a deterministic worker abort and a real `SIGKILL` of a worker
//!    process both recover through the shard's own durable state, and
//!    the merged answer is still byte-identical;
//! 3. a dead worker on a *non-durable* cluster is a typed error, not a
//!    silent partial answer.

use faultline_core::cluster::{
    partition_events, run_cluster_subprocess, run_durable_cluster_subprocess, ClusterConfig,
    SubprocessOptions,
};
use faultline_core::linktable::from_scenario;
use faultline_core::recovery::DurabilityPolicy;
use faultline_core::transport::{ScenarioSpec, ShardTransport, SubprocessTransport, WorkerSpec};
use faultline_core::{scenario_event_stream, Analysis, AnalysisConfig};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::{shard_kill_seeded, ChaosConfig, ShardKill};
use std::fs;
use std::path::{Path, PathBuf};

/// The worker binary under test — built by cargo alongside this harness.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_faultline-shard-worker"))
}

/// Self-cleaning scratch directory (no tempfile crate in this offline
/// workspace).
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("faultline-subproc-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn tight_policy() -> DurabilityPolicy {
    DurabilityPolicy {
        checkpoint_interval: 7,
        segment_max_records: 16,
        retain_checkpoints: 2,
        ..DurabilityPolicy::default()
    }
}

/// Each worker materializes its own copy of the scenario from the same
/// seeded parameters the dispatcher used — nothing is shared but the
/// spec.
fn opts_for(params: &ScenarioParams) -> SubprocessOptions {
    SubprocessOptions {
        worker_bin: worker_bin(),
        scenario: ScenarioSpec::Params(Box::new(params.clone())),
    }
}

/// The pinned subprocess grid: shard counts × seeds × chaos presets,
/// every merged answer byte-identical to batch, with real frames on a
/// real wire (the transport ledger must show bytes moving).
#[test]
fn subprocess_grid_is_byte_identical_to_batch() {
    let config = AnalysisConfig::default();
    for seed in [11u64, 42] {
        for preset in ["clean", "mild"] {
            let mut params = ScenarioParams::tiny(seed);
            params.chaos = match preset {
                "mild" => ChaosConfig::mild(seed * 31),
                _ => ChaosConfig::default(),
            };
            let data = run(&params);
            let events = scenario_event_stream(&data);
            let expected = {
                let batch = Analysis::run(&data, config.clone());
                serde_json::to_string(&batch.output).unwrap()
            };
            for shards in [1u32, 2, 4, 7] {
                let cfg = ClusterConfig {
                    shards,
                    analysis: config.clone(),
                    chunk: 256,
                };
                let result = run_cluster_subprocess(&data, &events, &cfg, &opts_for(&params))
                    .expect("subprocess cluster run");
                assert_eq!(
                    expected,
                    serde_json::to_string(&result.output).unwrap(),
                    "subprocess cluster diverged from batch: seed {seed}, preset {preset}, {shards} shards"
                );
                let t = result.report.transport.expect("transport ledger present");
                assert_eq!(t.workers_spawned, u64::from(shards));
                assert_eq!(t.workers_killed, 0);
                assert!(t.frames_sent > 0 && t.frames_received > 0);
                assert!(
                    t.bytes_sent > 0 && t.bytes_received > 0,
                    "subprocess frames really serialize: {t:?}"
                );
            }
        }
    }
}

/// A deterministic worker abort (the subprocess consumes exactly
/// `after_events` of its substream, then exits without flushing): the
/// supervisor respawns the process, recovery resumes at exactly the
/// kill boundary — journal-before-ingest holds across the process
/// boundary — and the merged answer is byte-identical to batch.
#[test]
fn aborted_subprocess_worker_recovers_byte_identical() {
    let params = ScenarioParams::tiny(42);
    let data = run(&params);
    let events = scenario_event_stream(&data);
    let expected = {
        let batch = Analysis::run(&data, AnalysisConfig::default());
        serde_json::to_string(&batch.output).unwrap()
    };
    let cfg = ClusterConfig::new(4);
    let table = from_scenario(&data);
    let shard_events: Vec<u64> = partition_events(&table, &events, cfg.shards)
        .iter()
        .map(|s| s.len() as u64)
        .collect();
    let kill = shard_kill_seeded(42, &shard_events).expect("a killable shard");

    let tmp = TempDir::new("abort");
    let run_result = run_durable_cluster_subprocess(
        tmp.path(),
        &data,
        &events,
        &cfg,
        &tight_policy(),
        &opts_for(&params),
        &[kill],
        &[],
    )
    .expect("durable subprocess cluster");

    assert_eq!(
        expected,
        serde_json::to_string(&run_result.result.output).unwrap(),
        "post-recovery merged output diverged from batch"
    );
    assert_eq!(run_result.recoveries.len(), 1);
    assert_eq!(run_result.recoveries[0].shard, kill.shard);
    assert_eq!(
        run_result.recoveries[0].report.resumed_at_seq, kill.after_events,
        "journal-before-ingest: a worker abort loses nothing, even across a process boundary"
    );
    for (shard, &restores) in run_result.shard_restores.iter().enumerate() {
        let expected_restores = u64::from(shard as u32 == kill.shard);
        assert_eq!(restores, expected_restores, "shard {shard} restores");
    }
    let t = run_result.result.report.transport.expect("ledger");
    assert_eq!(t.worker_restarts, 1, "exactly the dead worker respawned");
}

/// A real `SIGKILL` of a worker process mid-run: the process gets no
/// chance to flush buffers or say goodbye, so recovery resumes at
/// whatever its shard directory durably holds (at most the kill
/// boundary) — and the merged answer is still byte-identical to batch.
#[test]
fn sigkilled_subprocess_worker_recovers_byte_identical() {
    let params = ScenarioParams::tiny(11);
    let data = run(&params);
    let events = scenario_event_stream(&data);
    let expected = {
        let batch = Analysis::run(&data, AnalysisConfig::default());
        serde_json::to_string(&batch.output).unwrap()
    };
    let cfg = ClusterConfig {
        chunk: 32,
        ..ClusterConfig::new(3)
    };
    let table = from_scenario(&data);
    let shard_events: Vec<u64> = partition_events(&table, &events, cfg.shards)
        .iter()
        .map(|s| s.len() as u64)
        .collect();
    let victim = (0..shard_events.len())
        .max_by_key(|&i| shard_events[i])
        .unwrap() as u32;
    let hard_kill = ShardKill {
        shard: victim,
        after_events: shard_events[victim as usize] / 2,
    };

    let tmp = TempDir::new("sigkill");
    let run_result = run_durable_cluster_subprocess(
        tmp.path(),
        &data,
        &events,
        &cfg,
        &tight_policy(),
        &opts_for(&params),
        &[],
        &[hard_kill],
    )
    .expect("durable subprocess cluster with a SIGKILLed worker");

    assert_eq!(
        expected,
        serde_json::to_string(&run_result.result.output).unwrap(),
        "post-SIGKILL merged output diverged from batch"
    );
    assert_eq!(run_result.recoveries.len(), 1);
    assert_eq!(run_result.recoveries[0].shard, victim);
    assert!(
        run_result.recoveries[0].report.resumed_at_seq <= hard_kill.after_events,
        "a SIGKILLed worker resumes from its durable state, never past the kill"
    );
    assert_eq!(run_result.shard_restores[victim as usize], 1);
    let t = run_result.result.report.transport.expect("ledger");
    assert_eq!(t.workers_killed, 1);
    assert_eq!(t.worker_restarts, 1);
}

/// Worker death on a non-durable cluster: the transport reports the
/// loss as a typed worker-gone error (EOF on the pipe), never a hang or
/// a partial answer.
#[test]
fn dead_worker_on_a_nondurable_cluster_is_a_typed_error() {
    let params = ScenarioParams::tiny(7);
    let data = run(&params);
    let specs: Vec<WorkerSpec> = (0..2)
        .map(|shard| {
            WorkerSpec::new(
                shard,
                2,
                AnalysisConfig::default(),
                ScenarioSpec::Params(Box::new(params.clone())),
            )
        })
        .collect();
    let mut transport =
        SubprocessTransport::start(worker_bin(), &specs).expect("spawn subprocess workers");
    // Both workers come up and say Ready.
    for worker in 0..2 {
        let msg = transport.recv(worker).expect("ready frame");
        assert_eq!(msg.kind(), "ready");
    }
    // SIGKILL worker 0; the next receive must be a typed loss.
    transport.kill(0).expect("kill worker 0");
    let err = transport.recv(0).expect_err("a dead worker cannot answer");
    assert!(err.is_worker_loss(), "unexpected error class: {err}");
    assert_eq!(err.worker(), Some(0));
    // The surviving worker is unaffected.
    transport
        .send(1, faultline_core::ShardMsg::Flush)
        .expect("surviving worker still reachable");
    let msg = transport.recv(1).expect("surviving worker flushes");
    assert_eq!(msg.kind(), "flushed");
    drop(data);
}

/// A worker binary that does not exist is a spawn error, not a panic.
#[test]
fn missing_worker_binary_is_a_spawn_error() {
    let params = ScenarioParams::tiny(3);
    let data = run(&params);
    let events = scenario_event_stream(&data);
    let opts = SubprocessOptions {
        worker_bin: PathBuf::from("/nonexistent/faultline-shard-worker"),
        scenario: ScenarioSpec::Params(Box::new(params)),
    };
    match run_cluster_subprocess(&data, &events, &ClusterConfig::new(2), &opts) {
        Ok(_) => panic!("spawning a missing binary must fail"),
        Err(err) => assert!(
            matches!(err, faultline_core::TransportError::Spawn { .. }),
            "unexpected error class: {err}"
        ),
    }
}
