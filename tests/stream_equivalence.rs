//! Differential harness: both drivers of the shared kernel must be
//! **byte-identical**.
//!
//! For every scenario, the comparable surface (`StreamOutput`) of a
//! [`StreamAnalysis`] replay — under any chunking of the event stream,
//! any ambiguity strategy, any quarantine horizon, any chaos preset, and
//! any thread count — must serialize to exactly the same JSON as the
//! `output` of [`Analysis::run`] on the same data. Both paths execute
//! the same per-link state machines in `faultline_core::kernel`; this
//! grid is the permanent regression guard proving the two *drivers*
//! (batch watermark-jumps-to-end vs. incremental watermarks) cannot
//! drift apart. A deterministic grid pins the corner chunkings (one
//! event at a time, a prime micro-batch size, one all-encompassing
//! batch) across several seeds; property tests then randomize seed,
//! scale, chunk pattern, strategy, and parallelism.

use faultline_core::{
    scenario_event_stream, AmbiguityStrategy, Analysis, AnalysisConfig, ParallelismConfig,
    StreamAnalysis,
};
use faultline_sim::scenario::{run, ScenarioParams};
use faultline_sim::{ChaosConfig, ScenarioData};
use faultline_topology::time::Timestamp;
use proptest::prelude::*;

/// How the event stream is fed to the engine.
#[derive(Debug, Clone, Copy)]
enum Chunking {
    /// `ingest` per event — no batching at all.
    OneAtATime,
    /// `ingest_batch` with fixed-size micro-batches.
    Fixed(usize),
    /// One `ingest_batch` covering the whole stream.
    All,
}

fn batch_json(data: &ScenarioData, config: &AnalysisConfig) -> String {
    let analysis = Analysis::run(data, config.clone());
    serde_json::to_string(&analysis.output).unwrap()
}

fn stream_json(data: &ScenarioData, config: &AnalysisConfig, chunking: Chunking) -> String {
    let events = scenario_event_stream(data);
    let mut stream = StreamAnalysis::new(data, config.clone());
    match chunking {
        Chunking::OneAtATime => {
            for e in &events {
                stream.ingest(e);
            }
        }
        Chunking::Fixed(n) => {
            for c in events.chunks(n.max(1)) {
                stream.ingest_batch(c);
            }
        }
        Chunking::All => {
            stream.ingest_batch(&events);
        }
    }
    serde_json::to_string(&stream.flush().output).unwrap()
}

/// The pinned grid: ≥3 seeds × ≥3 chunkings, including the two corner
/// cases (chunk = 1 via `ingest`, chunk = the whole stream).
#[test]
fn grid_of_seeds_and_chunkings_is_byte_identical() {
    let config = AnalysisConfig::default();
    for seed in [11u64, 42, 77] {
        let data = run(&ScenarioParams::tiny(seed));
        let expected = batch_json(&data, &config);
        for chunking in [Chunking::OneAtATime, Chunking::Fixed(7), Chunking::All] {
            let got = stream_json(&data, &config, chunking);
            assert_eq!(
                expected, got,
                "stream output diverged from batch: seed {seed}, {chunking:?}"
            );
        }
    }
}

/// A mid-period event time, used as a quarantine horizon that diverts a
/// real, nonzero share of both sources.
fn mid_horizon(data: &ScenarioData) -> Timestamp {
    let events = scenario_event_stream(data);
    events[events.len() / 2].at()
}

/// The seeds×chunkings grid again, with `quarantine_horizon` set: the
/// admission decision is per-item on both drivers, so diverting a big
/// slice of the archive must not open any gap between them.
#[test]
fn quarantine_grid_is_byte_identical() {
    for seed in [11u64, 42, 77] {
        let data = run(&ScenarioParams::tiny(seed));
        let config = AnalysisConfig {
            quarantine_horizon: Some(mid_horizon(&data)),
            ..AnalysisConfig::default()
        };
        let batch = Analysis::run(&data, config.clone());
        assert!(
            batch.report.robustness.total_quarantined() > 0,
            "seed {seed}: horizon must actually divert events"
        );
        let expected = serde_json::to_string(&batch.output).unwrap();
        for chunking in [Chunking::OneAtATime, Chunking::Fixed(7), Chunking::All] {
            let got = stream_json(&data, &config, chunking);
            assert_eq!(expected, got, "quarantined: seed {seed}, {chunking:?}");
        }
    }
}

/// The grid under the mild chaos preset: mangled archives (skewed
/// stamps, malformed lines, duplicates) flow through both drivers of
/// the kernel identically.
#[test]
fn mild_chaos_grid_is_byte_identical() {
    for seed in [11u64, 42, 77] {
        let mut params = ScenarioParams::tiny(seed);
        params.chaos = ChaosConfig::mild(seed * 31);
        let data = run(&params);
        assert!(data.chaos.is_some(), "seed {seed}: chaos must have run");
        let config = AnalysisConfig::default();
        let expected = batch_json(&data, &config);
        for chunking in [Chunking::OneAtATime, Chunking::Fixed(7), Chunking::All] {
            let got = stream_json(&data, &config, chunking);
            assert_eq!(expected, got, "chaotic: seed {seed}, {chunking:?}");
        }
    }
}

/// Quarantine × chaos combined — the configuration the chaos harness
/// recommends for adversarial archives. Both adversity mechanisms at
/// once still cannot separate the two drivers.
#[test]
fn quarantine_and_chaos_combined_stay_byte_identical() {
    for seed in [13u64, 59] {
        let mut params = ScenarioParams::tiny(seed);
        params.chaos = ChaosConfig::mild(seed * 17);
        let data = run(&params);
        let config = AnalysisConfig {
            quarantine_horizon: Some(mid_horizon(&data)),
            ..AnalysisConfig::default()
        };
        let batch = Analysis::run(&data, config.clone());
        assert!(
            batch.report.robustness.total_quarantined() > 0,
            "seed {seed}"
        );
        let expected = serde_json::to_string(&batch.output).unwrap();
        for chunking in [Chunking::OneAtATime, Chunking::Fixed(13), Chunking::All] {
            let got = stream_json(&data, &config, chunking);
            assert_eq!(expected, got, "quarantine×chaos: seed {seed}, {chunking:?}");
        }
    }
}

/// Quarantine × parallelism: the original quarantine grids above only
/// ever ran serial lanes, so a fan-out that (say) applied the horizon
/// after chunk-splitting, or merged quarantine counts in lane-completion
/// order, would have slipped through. Cross the horizon with every
/// thread count and awkward chunk sizes; the admission decision is
/// per-item and lanes are per-link, so the output — and the quarantine
/// accounting — must be identical on every axis.
#[test]
fn quarantine_grid_crosses_thread_counts() {
    for seed in [11u64, 42, 77] {
        let data = run(&ScenarioParams::tiny(seed));
        let serial = AnalysisConfig {
            quarantine_horizon: Some(mid_horizon(&data)),
            parallelism: ParallelismConfig::SERIAL,
            ..AnalysisConfig::default()
        };
        let baseline = Analysis::run(&data, serial.clone());
        assert!(
            baseline.report.robustness.total_quarantined() > 0,
            "seed {seed}: horizon must actually divert events"
        );
        let expected = serde_json::to_string(&baseline.output).unwrap();
        for threads in [2usize, 4, 8] {
            for chunk_size in [1usize, 7, 16] {
                let config = AnalysisConfig {
                    parallelism: ParallelismConfig {
                        threads,
                        chunk_size,
                    },
                    ..serial.clone()
                };
                let batch = Analysis::run(&data, config.clone());
                assert_eq!(
                    expected,
                    serde_json::to_string(&batch.output).unwrap(),
                    "parallel batch drifted: seed {seed}, threads {threads}, chunk {chunk_size}"
                );
                assert_eq!(
                    baseline.report.robustness, batch.report.robustness,
                    "quarantine accounting drifted: seed {seed}, threads {threads}"
                );
                for chunking in [Chunking::OneAtATime, Chunking::Fixed(13), Chunking::All] {
                    let got = stream_json(&data, &config, chunking);
                    assert_eq!(
                        expected, got,
                        "quarantine×threads: seed {seed}, threads {threads}, {chunking:?}"
                    );
                }
            }
        }
    }
}

/// The full adversity stack — chaos preset + quarantine horizon +
/// parallel lanes — at once. This is the configuration a production
/// deployment actually runs; none of the three mechanisms may interact.
#[test]
fn quarantine_chaos_and_threads_combined_stay_byte_identical() {
    for seed in [13u64, 59] {
        let mut params = ScenarioParams::tiny(seed);
        params.chaos = ChaosConfig::mild(seed * 17);
        let data = run(&params);
        let serial = AnalysisConfig {
            quarantine_horizon: Some(mid_horizon(&data)),
            parallelism: ParallelismConfig::SERIAL,
            ..AnalysisConfig::default()
        };
        let baseline = Analysis::run(&data, serial.clone());
        assert!(baseline.report.robustness.total_quarantined() > 0);
        let expected = serde_json::to_string(&baseline.output).unwrap();
        for threads in [2usize, 8] {
            let config = AnalysisConfig {
                parallelism: ParallelismConfig {
                    threads,
                    ..ParallelismConfig::default()
                },
                ..serial.clone()
            };
            assert_eq!(expected, batch_json(&data, &config), "threads {threads}");
            for chunking in [Chunking::OneAtATime, Chunking::Fixed(31)] {
                let got = stream_json(&data, &config, chunking);
                assert_eq!(
                    expected, got,
                    "quarantine×chaos×threads: seed {seed}, threads {threads}, {chunking:?}"
                );
            }
        }
    }
}

/// Chunk-size boundaries around typical per-link burst sizes.
#[test]
fn chunk_boundaries_do_not_leak_state() {
    let data = run(&ScenarioParams::tiny(58));
    let config = AnalysisConfig::default();
    let expected = batch_json(&data, &config);
    for n in [1usize, 2, 3, 64, 1024] {
        assert_eq!(
            expected,
            stream_json(&data, &config, Chunking::Fixed(n)),
            "chunk size {n}"
        );
    }
}

/// A scaled-up (non-tiny) scenario keeps the equivalence: more links,
/// more interleaving, more quiet-gap segment closes.
#[test]
fn scaled_scenario_stays_equivalent() {
    let data = run(&ScenarioParams::sized(19, 0.25, 30.0));
    let config = AnalysisConfig::default();
    let expected = batch_json(&data, &config);
    assert_eq!(expected, stream_json(&data, &config, Chunking::Fixed(257)));
}

/// Serial and parallel lane processing agree with the batch pipeline
/// (and therefore with each other).
#[test]
fn thread_count_is_invisible_in_output() {
    let data = run(&ScenarioParams::tiny(83));
    for threads in [1usize, 2, 8] {
        let config = AnalysisConfig {
            parallelism: ParallelismConfig {
                threads,
                ..ParallelismConfig::default()
            },
            ..AnalysisConfig::default()
        };
        let expected = batch_json(&data, &config);
        assert_eq!(
            expected,
            stream_json(&data, &config, Chunking::Fixed(31)),
            "threads {threads}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random seed × random chunk size × random strategy × random thread
    /// count: streaming replay is always byte-identical to batch.
    #[test]
    fn random_replays_equal_batch(
        seed in 0u64..10_000,
        chunk in 1usize..512,
        strategy_pick in 0u8..3,
        threads in 1usize..5,
    ) {
        let strategy = match strategy_pick {
            0 => AmbiguityStrategy::PreviousState,
            1 => AmbiguityStrategy::AssumeDown,
            _ => AmbiguityStrategy::AssumeUp,
        };
        let config = AnalysisConfig {
            strategy,
            parallelism: ParallelismConfig { threads, ..ParallelismConfig::default() },
            ..AnalysisConfig::default()
        };
        let data = run(&ScenarioParams::tiny(seed));
        let expected = batch_json(&data, &config);
        prop_assert_eq!(expected, stream_json(&data, &config, Chunking::Fixed(chunk)));
    }

    /// Irregular chunking: split the stream at random points (including
    /// empty micro-batches) — boundaries carry no state.
    #[test]
    fn random_irregular_chunking_equals_batch(
        seed in 0u64..10_000,
        cuts in proptest::collection::vec(0.0f64..1.0, 0..12),
    ) {
        let config = AnalysisConfig::default();
        let data = run(&ScenarioParams::tiny(seed));
        let expected = batch_json(&data, &config);

        let events = scenario_event_stream(&data);
        let mut idx: Vec<usize> = cuts
            .iter()
            .map(|c| (c * events.len() as f64) as usize)
            .collect();
        idx.push(0);
        idx.push(events.len());
        idx.sort_unstable();

        let mut stream = StreamAnalysis::new(&data, config);
        for w in idx.windows(2) {
            stream.ingest_batch(&events[w[0]..w[1]]);
        }
        let got = serde_json::to_string(&stream.flush().output).unwrap();
        prop_assert_eq!(expected, got);
    }
}
