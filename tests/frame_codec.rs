//! Chaos corpus for the shard-transport frame codec.
//!
//! The wire between a dispatcher and its workers carries every message
//! of the cluster protocol as a length-prefixed, FNV-hashed frame
//! (`faultline_core::transport`). The contract under test mirrors the
//! syslog parser's fuzz corpus (`crates/syslog/tests/fuzz_parse.rs`):
//!
//! 1. real protocol messages — including a live lane migration exported
//!    from a running [`StreamAnalysis`] — round-trip byte-exactly;
//! 2. every truncation of a real frame, every seeded bit flip, and
//!    arbitrary garbage bytes decode to a *typed* [`FrameError`], never
//!    a panic and never a silently wrong message;
//! 3. frames are self-delimiting: two frames written back to back read
//!    back as exactly those two messages.

use faultline_core::transport::{read_frame, write_frame, ScenarioSpec, ShardMsg, WorkerSpec};
use faultline_core::{
    scenario_event_stream, AnalysisConfig, FrameError, LaneMigration, StreamAnalysis,
};
use faultline_sim::chaos::{frame_cut_seeded, frame_flip_seeded};
use faultline_sim::scenario::{run, ScenarioParams};
use proptest::prelude::*;

/// A corpus of genuine protocol messages, including a lane migration
/// exported from a real mid-stream analysis (the heaviest, most
/// structurally interesting payload the wire ever carries).
fn corpus() -> Vec<ShardMsg> {
    let data = run(&ScenarioParams::tiny(42));
    let events = scenario_event_stream(&data);
    let mut analysis = StreamAnalysis::new(&data, AnalysisConfig::default());
    analysis.ingest_batch(&events[..events.len() / 2]);
    let links: Vec<_> = faultline_core::linktable::from_scenario(&data)
        .iter()
        .take(5)
        .collect();
    let migration = analysis.export_lanes(&links);
    assert!(migration.lane_count() > 0, "corpus migration carries lanes");

    vec![
        ShardMsg::Hello(Box::new(WorkerSpec::new(
            2,
            7,
            AnalysisConfig::default(),
            ScenarioSpec::Params(Box::new(ScenarioParams::tiny(3))),
        ))),
        ShardMsg::Ready(Default::default()),
        ShardMsg::Events(events[..64].to_vec()),
        ShardMsg::Events(Vec::new()),
        ShardMsg::ExportLanes(links),
        ShardMsg::LaneMigrate(migration),
        ShardMsg::LaneMigrate(LaneMigration::default()),
        ShardMsg::Flush,
        ShardMsg::Fatal {
            detail: "shard 3: journal directory vanished".to_string(),
        },
    ]
}

fn encode(msg: &ShardMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    let n = write_frame(&mut buf, msg).expect("corpus messages encode");
    assert_eq!(
        n as usize,
        buf.len(),
        "write_frame reports the bytes written"
    );
    buf
}

#[test]
fn corpus_round_trips_byte_exactly() {
    for msg in corpus() {
        let buf = encode(&msg);
        let (back, read) = read_frame(&mut buf.as_slice()).expect("intact frame decodes");
        assert_eq!(
            read as usize,
            buf.len(),
            "read_frame consumes the whole frame"
        );
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&msg).unwrap(),
            "round-trip is exact for {}",
            msg.kind()
        );
    }
}

#[test]
fn frames_are_self_delimiting() {
    let msgs = corpus();
    let mut stream = Vec::new();
    for msg in &msgs {
        write_frame(&mut stream, msg).unwrap();
    }
    let mut reader = stream.as_slice();
    for msg in &msgs {
        let (back, _) = read_frame(&mut reader).expect("each frame in the stream decodes");
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(msg).unwrap()
        );
    }
    assert!(
        matches!(read_frame(&mut reader), Err(FrameError::Closed)),
        "a cleanly exhausted stream reads as closed, not torn"
    );
}

#[test]
fn every_truncation_is_a_typed_error() {
    for msg in corpus() {
        let buf = encode(&msg);
        for cut in 0..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Err(FrameError::Closed) => assert_eq!(cut, 0, "only the empty prefix is closed"),
                Err(
                    FrameError::Torn { .. }
                    | FrameError::HashMismatch { .. }
                    | FrameError::Malformed { .. },
                ) => {}
                Err(other) => panic!("cut at {cut}: unexpected error class {other}"),
                Ok(_) => panic!("cut at {cut}: truncated frame decoded"),
            }
        }
    }
}

#[test]
fn seeded_torn_writes_and_bit_flips_never_pass() {
    for (i, msg) in corpus().into_iter().enumerate() {
        let buf = encode(&msg);
        for seed in 0..64u64 {
            let seed = seed ^ ((i as u64) << 32);
            // A torn write: the pipe died mid-frame.
            let cut = frame_cut_seeded(seed, buf.len()).unwrap();
            assert!(
                read_frame(&mut &buf[..cut]).is_err(),
                "seed {seed}: torn frame at {cut} must not decode"
            );
            // In-flight corruption: one bit flips somewhere in the frame.
            let (byte, bit) = frame_flip_seeded(seed, buf.len()).unwrap();
            let mut flipped = buf.clone();
            flipped[byte] ^= 1 << bit;
            match read_frame(&mut flipped.as_slice()) {
                Err(_) => {}
                // A flip inside the length field can shrink the frame to
                // a shorter, still-hash-checked prefix — which can only
                // decode by finding a hash collision.
                Ok(_) => panic!("seed {seed}: flipped bit {bit} of byte {byte} slipped through"),
            }
        }
    }
}

#[test]
fn header_field_damage_maps_to_its_own_error() {
    let buf = encode(&ShardMsg::Flush);

    let mut bad_magic = buf.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        read_frame(&mut bad_magic.as_slice()),
        Err(FrameError::BadMagic { .. })
    ));

    let mut bad_version = buf.clone();
    bad_version[4] = 0xEE;
    assert!(matches!(
        read_frame(&mut bad_version.as_slice()),
        Err(FrameError::UnsupportedVersion { found: 0x00EE, .. })
    ));

    let mut bad_len = buf.clone();
    bad_len[9] = 0xFF;
    assert!(matches!(
        read_frame(&mut bad_len.as_slice()),
        Err(FrameError::TooLarge { .. })
    ));

    let mut bad_payload = buf.clone();
    let last = bad_payload.len() - 1;
    bad_payload[last] ^= 0x01;
    assert!(matches!(
        read_frame(&mut bad_payload.as_slice()),
        Err(FrameError::HashMismatch { .. })
    ));
}

proptest! {
    /// Totality over garbage: arbitrary bytes — valid header or not —
    /// decode to a typed error or a message, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_frame(&mut bytes.as_slice());
    }

    /// Totality with a plausible preamble: garbage that *starts* like a
    /// real frame (magic + version intact) exercises the length/hash
    /// arms instead of bailing at the magic check.
    #[test]
    fn plausible_preambles_never_panic(tail in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut framed = Vec::from(faultline_core::FRAME_MAGIC);
        framed.extend_from_slice(&faultline_core::WIRE_VERSION.to_le_bytes());
        framed.extend_from_slice(&tail);
        let _ = read_frame(&mut framed.as_slice());
    }
}
