//! Property tests for the cluster partitioner (`faultline-core::cluster`).
//!
//! The sharded runtime's correctness rests on three partitioner
//! properties, pinned here over random topologies:
//!
//! 1. **Total and deterministic**: every link maps to exactly one shard
//!    for every cluster size, and repeated evaluation agrees — there is
//!    no coordination step, so agreement must be intrinsic.
//! 2. **Bounded skew**: the consistent hash spreads links close to
//!    uniformly; the busiest shard stays within a statistical bound of
//!    the mean.
//! 3. **Minimal resharding**: growing N → N+1 shards moves only the keys
//!    that land on the *new* shard — the jump-consistent-hash contract —
//!    and their number stays near the expected `links / (N + 1)`.

use faultline_core::cluster::{partition_events, shard_of_key, shard_of_link};
use faultline_core::linktable::from_scenario;
use faultline_core::scenario_event_stream;
use faultline_sim::scenario::{run, ScenarioParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every link maps to exactly one in-range shard for every cluster
    /// size, and the mapping is a pure function of the key.
    #[test]
    fn every_link_maps_to_exactly_one_shard(seed in 0u64..10_000) {
        let data = run(&ScenarioParams::tiny(seed));
        let table = from_scenario(&data);
        for shards in [1u32, 2, 3, 4, 7, 16, 64] {
            for ix in table.iter() {
                let s = shard_of_link(&table, ix, shards);
                prop_assert!(s < shards, "shard {s} out of range for N={shards}");
                prop_assert_eq!(s, shard_of_link(&table, ix, shards));
                prop_assert_eq!(s, shard_of_key(table.shard_key(ix), shards));
            }
        }
    }

    /// Link distribution stays within a statistical skew bound: the
    /// busiest shard holds at most mean + 5σ + 3 links, where σ is the
    /// binomial standard deviation of uniform assignment. (The +3 slack
    /// keeps tiny topologies, where σ is fractional, out of false
    /// positives; a systematic hot shard still fails by a wide margin.)
    #[test]
    fn link_distribution_is_balanced(seed in 0u64..10_000) {
        let data = run(&ScenarioParams::tiny(seed));
        let table = from_scenario(&data);
        let links = table.len() as f64;
        prop_assert!(links > 0.0);
        for shards in [2u32, 4, 8] {
            let mut counts = vec![0u64; shards as usize];
            for ix in table.iter() {
                counts[shard_of_link(&table, ix, shards) as usize] += 1;
            }
            let p = 1.0 / f64::from(shards);
            let mean = links * p;
            let sigma = (links * p * (1.0 - p)).sqrt();
            let bound = mean + 5.0 * sigma + 3.0;
            let max = *counts.iter().max().unwrap() as f64;
            prop_assert!(
                max <= bound,
                "N={shards}: busiest shard {max} links, bound {bound:.1} (mean {mean:.1})"
            );
        }
    }

    /// Growing the cluster N → N+1 moves only keys that land on the new
    /// shard N (no key migrates between surviving shards), and about
    /// 1/(N+1) of keys move.
    #[test]
    fn resharding_moves_only_its_fair_share(seed in 0u64..10_000) {
        let data = run(&ScenarioParams::tiny(seed));
        let table = from_scenario(&data);
        let links = table.iter().count();
        prop_assert!(links > 0);
        for shards in [1u32, 2, 3, 4, 7, 15] {
            let mut moved = 0usize;
            for ix in table.iter() {
                let before = shard_of_link(&table, ix, shards);
                let after = shard_of_link(&table, ix, shards + 1);
                if after != before {
                    prop_assert_eq!(
                        after, shards,
                        "link moved {} -> {} when adding shard {}",
                        before, after, shards
                    );
                    moved += 1;
                }
            }
            // Expected moved = links/(N+1); allow generous binomial slack
            // so small topologies stay stable while an everything-moves
            // rehash (the modulo-hash failure mode) still fails.
            let expect = links as f64 / f64::from(shards + 1);
            let sigma = (links as f64 * (1.0 / f64::from(shards + 1))
                * (1.0 - 1.0 / f64::from(shards + 1)))
            .sqrt();
            let bound = expect + 5.0 * sigma + 3.0;
            prop_assert!(
                (moved as f64) <= bound,
                "N={shards}: {moved} of {links} links moved, expected ~{expect:.1} (bound {bound:.1})"
            );
        }
    }

    /// The event partitioner routes every event to exactly one shard and
    /// preserves per-shard time order — the stream-splitting contract the
    /// equivalence proof rests on.
    #[test]
    fn event_partition_is_a_total_ordered_split(seed in 0u64..10_000) {
        let data = run(&ScenarioParams::tiny(seed));
        let table = from_scenario(&data);
        let events = scenario_event_stream(&data);
        for shards in [1u32, 3, 7] {
            let routed = partition_events(&table, &events, shards);
            prop_assert_eq!(routed.len(), shards as usize);
            let total: usize = routed.iter().map(Vec::len).sum();
            prop_assert_eq!(total, events.len(), "events lost or duplicated");
            for (i, shard) in routed.iter().enumerate() {
                prop_assert!(
                    shard.windows(2).all(|w| w[0].at() <= w[1].at()),
                    "shard {i} substream out of order"
                );
            }
        }
    }
}

/// Parallel links (multi-link adjacencies) must co-locate: IS-IS
/// reachability events resolve only to the endpoint *pair*, so the
/// cluster can route them only if every member link lives on the same
/// shard. Group topology links by their router pair and check every
/// group lands whole.
#[test]
fn parallel_links_share_a_shard() {
    use std::collections::HashMap;
    for seed in [7u64, 42, 1001] {
        let data = run(&ScenarioParams::tiny(seed));
        let table = from_scenario(&data);
        let mut by_pair: HashMap<(u32, u32), Vec<_>> = HashMap::new();
        for link in data.topology.links() {
            let (lo, hi) = if link.a.router.0 <= link.b.router.0 {
                (link.a.router.0, link.b.router.0)
            } else {
                (link.b.router.0, link.a.router.0)
            };
            if let Some(ix) = table.by_subnet(link.subnet) {
                by_pair.entry((lo, hi)).or_default().push(ix);
            }
        }
        let mut multilink_groups = 0;
        for shards in [2u32, 3, 5, 16] {
            for members in by_pair.values().filter(|m| m.len() > 1) {
                multilink_groups += 1;
                let first = shard_of_link(&table, members[0], shards);
                for &m in members.iter() {
                    assert_eq!(
                        shard_of_link(&table, m, shards),
                        first,
                        "multi-link members split across shards (N={shards})"
                    );
                }
            }
        }
        assert_eq!(
            multilink_groups / 4,
            table.multi_link_pairs(),
            "test should exercise every multi-link adjacency the table knows"
        );
    }
}
