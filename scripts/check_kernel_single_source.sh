#!/usr/bin/env bash
# Duplication tripwire for the "one kernel, two drivers" refactor.
#
# The per-link state machines (dedup, both-ends merge, reconstruction,
# sanitization, flap tracking, segment close) live in
# crates/core/src/kernel.rs and NOWHERE else. Before the refactor,
# analysis.rs and streaming.rs each carried a copy of this logic and the
# two were kept in sync only by the differential harness; this script
# fails CI the moment a duplicate implementation (or one of the retired
# compatibility shims) creeps back in.
#
# Usage: scripts/check_kernel_single_source.sh   (run from anywhere)
set -euo pipefail
cd "$(dirname "$0")/.."

KERNEL=crates/core/src/kernel.rs
fail=0

# Rust sources outside the kernel module.
non_kernel_sources() {
    find crates src -name '*.rs' ! -path "$KERNEL" -print
}

# 1. Retired duplicate symbols must not resurface anywhere. Each of
#    these was a second implementation (or bridge) of kernel semantics:
#    - StreamOutput::of_batch   batch→stream output bridge, deleted when
#                               batch started producing StreamOutput itself
#    - *_par                    per-stage parallel twins, replaced by the
#                               single lane fan-out in Kernel::apply_grouped
#    - Lane::sanitize_isis etc. streaming.rs's private copy of the lane
#                               machinery, moved wholesale into LinkLane
retired=(
    'fn of_batch'
    'fn isis_link_transitions_par'
    'fn dedup_syslog_par'
    'fn reconstruct_par'
    'fn match_failures_par'
    'fn sanitize_isis'
)
for sym in "${retired[@]}"; do
    if hits=$(non_kernel_sources | xargs grep -n -F "$sym" 2>/dev/null) && [ -n "$hits" ]; then
        echo "TRIPWIRE: retired symbol '$sym' resurfaced outside $KERNEL:" >&2
        echo "$hits" >&2
        fail=1
    fi
done

# 2. The kernel machines must be defined exactly once, in the kernel.
machines=(
    'struct LinkLane'
    'struct DedupState'
    'struct MergeState'
    'struct ReconLane'
    'fn overlaps_offline'
)
for sym in "${machines[@]}"; do
    if ! grep -q -F "$sym" "$KERNEL"; then
        echo "TRIPWIRE: '$sym' missing from $KERNEL (was it moved? update this script and ARCHITECTURE.md together)" >&2
        fail=1
    fi
    if hits=$(non_kernel_sources | xargs grep -n -F "$sym" 2>/dev/null) && [ -n "$hits" ]; then
        echo "TRIPWIRE: '$sym' redefined outside $KERNEL:" >&2
        echo "$hits" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "kernel single-source check FAILED — pipeline semantics must live only in $KERNEL" >&2
    exit 1
fi
echo "kernel single-source check passed: state machines exist only in $KERNEL ✓"
