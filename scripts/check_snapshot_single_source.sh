#!/usr/bin/env bash
# Single-source tripwire for the durable snapshot format.
#
# Every byte that reaches a checkpoint, delta, or journal file — magic
# strings, version stamps, header layout, FNV hashing, atomic
# write-temp-then-rename — is produced and parsed in
# crates/core/src/recovery.rs and NOWHERE else. The moment a second
# writer (or a hand-rolled header parser) appears in another module, two
# format definitions can drift apart and a checkpoint written by one
# path becomes unreadable by the other. This script fails CI when any
# format-owning token shows up in crate sources outside recovery.rs.
#
# Top-level tests/ are deliberately out of scope: the fault-injection
# harnesses mangle snapshot headers on purpose, and reading the format
# is not the same as owning it.
#
# Usage: scripts/check_snapshot_single_source.sh   (run from anywhere)
set -euo pipefail
cd "$(dirname "$0")/.."

RECOVERY=crates/core/src/recovery.rs
fail=0

# Crate sources outside the recovery module (top-level tests/ excluded
# on purpose — see header).
non_recovery_sources() {
    find crates src -name '*.rs' ! -path "$RECOVERY" -print
}

# Format-owning tokens: file magics, the header hash fields, the hash
# implementation, and the two snapshot writers.
tokens=(
    'faultline-checkpoint'
    'faultline-delta'
    'payload_fnv'
    'parent_fnv'
    'fn fnv1a64'
    'fn write_checkpoint_file'
    'fn write_delta_file'
    'fn write_snapshot_atomic'
)
for tok in "${tokens[@]}"; do
    if ! grep -q -F "$tok" "$RECOVERY"; then
        echo "TRIPWIRE: '$tok' missing from $RECOVERY (was it moved? update this script and ARCHITECTURE.md together)" >&2
        fail=1
    fi
    if hits=$(non_recovery_sources | xargs grep -n -F "$tok" 2>/dev/null) && [ -n "$hits" ]; then
        echo "TRIPWIRE: snapshot-format token '$tok' leaked outside $RECOVERY:" >&2
        echo "$hits" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "snapshot single-source check FAILED — the durable format must live only in $RECOVERY" >&2
    exit 1
fi
echo "snapshot single-source check passed: the durable format lives only in $RECOVERY ✓"
