#!/usr/bin/env bash
# Headline regression gate for the bench documents.
#
# Compares a headline metric of freshly written BENCH documents against
# their committed baselines and fails when it drops more than the
# tolerance (default 10%). Four headlines are gated:
#
#   results/BENCH_pipeline.json  ingest_events_per_sec
#                                (cargo run --release -p faultline-bench
#                                 --bin pipeline_report)
#   results/BENCH_cluster.json   ingest_events_per_sec
#                                (cargo run --release -p faultline-bench
#                                 --bin cluster_replay)
#   results/BENCH_recovery.json  delta_size_ratio — how many times
#                                smaller a delta snapshot is than a full
#                                one (cargo run --release -p
#                                 faultline-bench --bin recovery_replay;
#                                 the bin also enforces the absolute
#                                 >= 5x floor before writing the JSON)
#   results/BENCH_capacity.json  deterministic_breaking_point_offered_per_tick
#                                — the highest offered rate (simulated
#                                clock, so machine-independent) the
#                                admission-controlled pipeline sustains
#                                within SLO (cargo run --release -p
#                                 faultline-loadgen --bin
#                                 faultline-loadgen -- --deterministic)
#
# CI runs this after the benches so a hot-path (or merge-path, or
# snapshot-format) regression fails the build with both numbers in the
# log.
#
# Re-blessing a baseline (after an intentional change, measured on the
# same class of machine):
#
#   cargo run --release -p faultline-bench --bin pipeline_report
#   cp results/BENCH_pipeline.json results/BENCH_pipeline.baseline.json
#   cargo run --release -p faultline-bench --bin cluster_replay
#   cp results/BENCH_cluster.json results/BENCH_cluster.baseline.json
#   cargo run --release -p faultline-bench --bin recovery_replay
#   cp results/BENCH_recovery.json results/BENCH_recovery.baseline.json
#   cargo run --release -p faultline-loadgen --bin faultline-loadgen
#   cp results/BENCH_capacity.json results/BENCH_capacity.baseline.json
#   git add results/*.baseline.json   # commit with the why
#
# The capacity headline is exact (simulated clock), so any change to it
# is a real behaviour change in admission/shedding, not machine noise —
# but the same 10% tolerance applies for uniformity.
#
# Usage: scripts/check_bench_regression.sh [fresh.json] [baseline.json] [metric] [unit]
#   With explicit arguments, gates exactly that pair on that headline
#   metric (default ingest_events_per_sec). With no arguments, gates
#   BENCH_pipeline always, and BENCH_cluster / BENCH_recovery when their
#   fresh documents exist (those jobs produce them separately).
# Env:   BENCH_TOLERANCE=0.10   fractional allowed drop
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE=${BENCH_TOLERANCE:-0.10}

gate() {
    local fresh=$1 baseline=$2 metric=${3:-ingest_events_per_sec} unit=${4:-events/s}
    for f in "$fresh" "$baseline"; do
        if [ ! -f "$f" ]; then
            echo "check_bench_regression: missing $f" >&2
            echo "(run the matching faultline-bench binary, see header)" >&2
            return 1
        fi
    done
    python3 - "$fresh" "$baseline" "$TOLERANCE" "$metric" "$unit" <<'EOF'
import json, sys

fresh_path, base_path = sys.argv[1], sys.argv[2]
tol, metric, unit = float(sys.argv[3]), sys.argv[4], sys.argv[5]
fresh = json.load(open(fresh_path))["headline"][metric]
base = json.load(open(base_path))["headline"][metric]
floor = base * (1.0 - tol)
print(f"baseline: {base:,.1f} {unit} ({base_path})")
print(f"fresh:    {fresh:,.1f} {unit} ({fresh_path})")
print(f"floor:    {floor:,.1f} {unit} (tolerance -{tol:.0%})")
if fresh < floor:
    drop = 1.0 - fresh / base
    print(
        f"BENCH REGRESSION: headline {metric} dropped {drop:.1%} "
        f"(allowed {tol:.0%}) — see PERFORMANCE.md for the re-bless flow "
        f"if this change is intentional",
        file=sys.stderr,
    )
    sys.exit(1)
print("bench regression gate passed \N{CHECK MARK}")
EOF
}

if [ $# -gt 0 ]; then
    gate "$1" "${2:-results/BENCH_pipeline.baseline.json}" "${3:-ingest_events_per_sec}" "${4:-events/s}"
    exit $?
fi

gate results/BENCH_pipeline.json results/BENCH_pipeline.baseline.json

if [ -f results/BENCH_cluster.json ]; then
    gate results/BENCH_cluster.json results/BENCH_cluster.baseline.json
else
    echo "check_bench_regression: results/BENCH_cluster.json not present, skipping cluster gate"
fi

if [ -f results/BENCH_recovery.json ]; then
    gate results/BENCH_recovery.json results/BENCH_recovery.baseline.json delta_size_ratio "x smaller"
else
    echo "check_bench_regression: results/BENCH_recovery.json not present, skipping recovery gate"
fi

if [ -f results/BENCH_capacity.json ]; then
    gate results/BENCH_capacity.json results/BENCH_capacity.baseline.json \
        deterministic_breaking_point_offered_per_tick "events/tick"
else
    echo "check_bench_regression: results/BENCH_capacity.json not present, skipping capacity gate"
fi
