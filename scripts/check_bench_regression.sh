#!/usr/bin/env bash
# Throughput regression gate for the analysis pipeline.
#
# Compares the headline ingest rate of a freshly written
# results/BENCH_pipeline.json (produced by `cargo run --release -p
# faultline-bench --bin pipeline_report`) against the committed
# results/BENCH_pipeline.baseline.json and fails when throughput drops
# more than the tolerance (default 10%). CI runs this after the bench so
# a hot-path regression fails the build with both numbers in the log.
#
# Re-blessing the baseline (after an intentional change, measured on the
# same class of machine):
#
#   cargo run --release -p faultline-bench --bin pipeline_report
#   cp results/BENCH_pipeline.json results/BENCH_pipeline.baseline.json
#   git add results/BENCH_pipeline.baseline.json   # commit with the why
#
# Usage: scripts/check_bench_regression.sh [fresh.json] [baseline.json]
# Env:   BENCH_TOLERANCE=0.10   fractional allowed drop
set -euo pipefail
cd "$(dirname "$0")/.."

FRESH=${1:-results/BENCH_pipeline.json}
BASELINE=${2:-results/BENCH_pipeline.baseline.json}
TOLERANCE=${BENCH_TOLERANCE:-0.10}

for f in "$FRESH" "$BASELINE"; do
    if [ ! -f "$f" ]; then
        echo "check_bench_regression: missing $f" >&2
        echo "(run: cargo run --release -p faultline-bench --bin pipeline_report)" >&2
        exit 1
    fi
done

python3 - "$FRESH" "$BASELINE" "$TOLERANCE" <<'EOF'
import json, sys

fresh_path, base_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
fresh = json.load(open(fresh_path))["headline"]["ingest_events_per_sec"]
base = json.load(open(base_path))["headline"]["ingest_events_per_sec"]
floor = base * (1.0 - tol)
print(f"baseline: {base:,.0f} events/s ({base_path})")
print(f"fresh:    {fresh:,.0f} events/s ({fresh_path})")
print(f"floor:    {floor:,.0f} events/s (tolerance -{tol:.0%})")
if fresh < floor:
    drop = 1.0 - fresh / base
    print(
        f"BENCH REGRESSION: headline ingest dropped {drop:.1%} "
        f"(allowed {tol:.0%}) — see PERFORMANCE.md for the re-bless flow "
        f"if this change is intentional",
        file=sys.stderr,
    )
    sys.exit(1)
print("bench regression gate passed \N{CHECK MARK}")
EOF
