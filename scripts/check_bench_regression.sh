#!/usr/bin/env bash
# Throughput regression gate for the analysis pipeline.
#
# Compares the headline ingest rate of freshly written BENCH documents
# against their committed baselines and fails when throughput drops more
# than the tolerance (default 10%). Two headlines are gated:
#
#   results/BENCH_pipeline.json  (cargo run --release -p faultline-bench
#                                 --bin pipeline_report)
#   results/BENCH_cluster.json   (cargo run --release -p faultline-bench
#                                 --bin cluster_replay)
#
# CI runs this after the benches so a hot-path (or merge-path) regression
# fails the build with both numbers in the log.
#
# Re-blessing a baseline (after an intentional change, measured on the
# same class of machine):
#
#   cargo run --release -p faultline-bench --bin pipeline_report
#   cp results/BENCH_pipeline.json results/BENCH_pipeline.baseline.json
#   cargo run --release -p faultline-bench --bin cluster_replay
#   cp results/BENCH_cluster.json results/BENCH_cluster.baseline.json
#   git add results/*.baseline.json   # commit with the why
#
# Usage: scripts/check_bench_regression.sh [fresh.json] [baseline.json]
#   With explicit arguments, gates exactly that pair (the historical
#   single-pair interface). With no arguments, gates BENCH_pipeline
#   always and BENCH_cluster when its fresh document exists (the cluster
#   job produces it separately from the bench job).
# Env:   BENCH_TOLERANCE=0.10   fractional allowed drop
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE=${BENCH_TOLERANCE:-0.10}

gate() {
    local fresh=$1 baseline=$2
    for f in "$fresh" "$baseline"; do
        if [ ! -f "$f" ]; then
            echo "check_bench_regression: missing $f" >&2
            echo "(run the matching faultline-bench binary, see header)" >&2
            return 1
        fi
    done
    python3 - "$fresh" "$baseline" "$TOLERANCE" <<'EOF'
import json, sys

fresh_path, base_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
fresh = json.load(open(fresh_path))["headline"]["ingest_events_per_sec"]
base = json.load(open(base_path))["headline"]["ingest_events_per_sec"]
floor = base * (1.0 - tol)
print(f"baseline: {base:,.0f} events/s ({base_path})")
print(f"fresh:    {fresh:,.0f} events/s ({fresh_path})")
print(f"floor:    {floor:,.0f} events/s (tolerance -{tol:.0%})")
if fresh < floor:
    drop = 1.0 - fresh / base
    print(
        f"BENCH REGRESSION: headline ingest dropped {drop:.1%} "
        f"(allowed {tol:.0%}) — see PERFORMANCE.md for the re-bless flow "
        f"if this change is intentional",
        file=sys.stderr,
    )
    sys.exit(1)
print("bench regression gate passed \N{CHECK MARK}")
EOF
}

if [ $# -gt 0 ]; then
    gate "$1" "${2:-results/BENCH_pipeline.baseline.json}"
    exit $?
fi

gate results/BENCH_pipeline.json results/BENCH_pipeline.baseline.json

if [ -f results/BENCH_cluster.json ]; then
    gate results/BENCH_cluster.json results/BENCH_cluster.baseline.json
else
    echo "check_bench_regression: results/BENCH_cluster.json not present, skipping cluster gate"
fi
